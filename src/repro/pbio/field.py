"""Field declarations, mirroring PBIO's ``IOField`` arrays.

An :class:`IOField` is what application code (or xml2wire) hands to
format registration: name, type string, per-element size, and byte offset
within the native structure — the exact quadruple of the paper's C
``IOField`` initializers:

.. code-block:: c

    { "fltNum", "integer", sizeof(int), IOOffset(asdOffptr, fltNum) }

Sizes and offsets describe the *declared* architecture's layout; they are
supplied by the caller because in C only the compiler knows them.  When
formats are built from a :class:`~repro.arch.layout.StructLayout` (as
xml2wire does), they are computed rather than hand-written, but the
registration interface is the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatRegistrationError
from repro.pbio.types import ParsedFieldType, parse_field_type


@dataclass(frozen=True)
class IOField:
    """One field of a message format declaration.

    Parameters
    ----------
    name:
        Field name (must be unique within the format).
    type:
        PBIO type string: ``"integer"``, ``"string"``, ``"float[3]"``,
        ``"integer[eta_count]"``, or the name of a previously registered
        format for nesting.
    size:
        Per-element size in bytes on the declaring architecture
        (``sizeof`` of the element type).  For strings and dynamic
        arrays, the size of the *pointer*.
    offset:
        Byte offset of the field within the native structure
        (``offsetof``).
    """

    name: str
    type: str
    size: int
    offset: int

    def __post_init__(self) -> None:
        if not self.name:
            raise FormatRegistrationError("field name may not be empty")
        if self.size <= 0:
            raise FormatRegistrationError(
                f"field {self.name!r}: size must be positive, got {self.size}"
            )
        if self.offset < 0:
            raise FormatRegistrationError(
                f"field {self.name!r}: offset must be non-negative, got {self.offset}"
            )
        parse_field_type(self.type)  # validates the grammar eagerly

    @property
    def parsed_type(self) -> ParsedFieldType:
        return parse_field_type(self.type)
