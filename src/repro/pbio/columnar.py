"""Columnar bulk batches: N same-format records as per-field columns.

The per-record NDR path pays full encode/frame/dispatch per message.
For bulk streams the next order of magnitude comes from batching: one
batch message carries N same-format records laid out *by column*, so
each field of the whole batch is one contiguous block handled by one
vectorized operation (``struct.pack`` with a repeat count, or a single
numpy ``frombuffer``/``tobytes``), and a receiver that wants one column
touches only that block — the paper's "touch only the bytes you need",
amortized over a batch.

Batch payload layout (PROTOCOL §14)::

    u32  count      record count N (big-endian, like the message header)
    u32  heap_off   byte offset of the variable-data heap (big-endian)
    [ one column block per field, declaration order, each aligned ]
    [ heap: variable data (string bodies, dynamic-array rows)     ]

Column blocks and heap data are in the *sender's* byte order, exactly
like per-record NDR payloads.  Fixed-size fields (scalars, static
arrays, char buffers) occupy ``N * row_bytes`` packed element blocks.
Strings and dynamic arrays store one u32 heap offset per row (0 = NULL
string / empty array — offset 0 falls inside the prelude, so it is
reserved, mirroring the per-record pointer convention); their bodies
pack contiguously in the heap, one region per column, in column order.
Dynamic-array element counts come from the format's count field column.

Nested formats have no columnar representation (their fields would need
recursive column splitting); :func:`get_columnar_plan` rejects them with
a typed :class:`~repro.errors.EncodeError`.

numpy is an optional acceleration throughout: every path has a
pure-Python fallback producing byte-identical output (property-tested in
``tests/property/test_columnar_properties.py``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from itertools import chain
from operator import itemgetter

from repro.arch.model import TypeKind
from repro.errors import DecodeError, EncodeError
from repro.pbio.codegen import _read_string
from repro.pbio.encode import _align_up, scalar_code
from repro.pbio.format import CompiledField, IOFormat
from repro.pbio.types import DTYPE_CHARS

#: Batch payload prelude, always big-endian: record count, heap offset.
PRELUDE = struct.Struct(">II")

_OFFSET_CODE = "I"  # heap offsets are u32 in the sender's byte order
_OFFSET_SIZE = 4

#: numpy dtype chars for kinds :data:`DTYPE_CHARS` leaves out.  They are
#: raw-width reads; the python-side value conversion (``bool()``, enum
#: ints) is applied after, identically to the pure path.
_EXTRA_CHARS: dict[tuple[TypeKind, int], str] = {
    (TypeKind.BOOLEAN, 1): "u1",
    (TypeKind.BOOLEAN, 4): "u4",
    (TypeKind.ENUMERATION, 4): "u4",
    (TypeKind.ENUMERATION, 8): "u8",
}


def _numpy_or_none():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def _resolve_numpy(use_numpy, error_cls):
    """Tri-state numpy selection: None = auto, True = require, False = off."""
    if use_numpy is False:
        return None
    numpy = _numpy_or_none()
    if use_numpy is True and numpy is None:
        raise error_cls("use_numpy=True requires numpy, which is not installed")
    return numpy


def _dtype_char(kind: TypeKind | None, size: int) -> str | None:
    char = DTYPE_CHARS.get((kind, size))
    if char is None:
        char = _EXTRA_CHARS.get((kind, size))
    return char


@dataclass(frozen=True)
class Column:
    """One field's column in the batch layout."""

    field: CompiledField
    name: str
    #: scalar | char | bool | array | chararray | count | string | dynamic
    #: (scalar covers enumerations: like the per-record encoder, enum
    #: scalars pack/unpack raw).
    role: str
    code: str  # struct code of one column element, no byte-order prefix
    elem_size: int  # bytes of one column element
    per_row: int  # column elements per record
    alignment: int  # block alignment within the payload
    dtype_char: str | None  # numpy dtype char for the block, if numeric
    # dynamic-array columns only:
    length_field: str | None = None
    heap_elem_code: str = ""
    heap_elem_size: int = 0
    heap_elem_kind: TypeKind | None = None
    heap_alignment: int = 1
    heap_dtype_char: str | None = None
    # count columns only: names of the dynamic fields this one measures
    measures: tuple[str, ...] = ()

    @property
    def row_bytes(self) -> int:
        return self.elem_size * self.per_row


class ColumnarPlan:
    """A compiled columnar batch codec for one :class:`IOFormat`.

    Cached on the format instance by :func:`get_columnar_plan`, like the
    per-record :class:`~repro.pbio.encode.EncodePlan`.
    """

    def __init__(self, fmt: IOFormat) -> None:
        self.format = fmt
        self.arch = fmt.arch
        self.order = "<" if fmt.arch.is_little_endian else ">"
        measured: dict[str, list[str]] = {}
        for cfield in fmt.compiled_fields:
            if cfield.type.is_dynamic_array:
                measured.setdefault(cfield.type.length_field, []).append(
                    cfield.name
                )
        columns: list[Column] = []
        for cfield in fmt.compiled_fields:
            columns.append(self._compile_column(cfield, measured))
        self.columns = columns
        self.by_name = {column.name: column for column in columns}
        self._getters = {column.name: itemgetter(column.name) for column in columns}
        self._layouts: dict[int, tuple[list[int], int]] = {}
        #: columns whose block is decodable without other columns
        self.fixed_columns = [c for c in columns if c.role != "dynamic"]
        self.dynamic_columns = [c for c in columns if c.role == "dynamic"]
        self.var_columns = [c for c in columns if c.role in ("string", "dynamic")]

    def _compile_column(
        self, cfield: CompiledField, measured: dict[str, list[str]]
    ) -> Column:
        fmt = self.format
        context = f"format {fmt.name!r}: field {cfield.name!r}"
        if cfield.nested is not None:
            raise EncodeError(
                f"{context}: columnar batches do not support nested formats"
            )
        if cfield.type.is_dynamic_array:
            return Column(
                field=cfield,
                name=cfield.name,
                role="dynamic",
                code=_OFFSET_CODE,
                elem_size=_OFFSET_SIZE,
                per_row=1,
                alignment=4,
                dtype_char="u4",
                length_field=cfield.type.length_field,
                heap_elem_code=scalar_code(cfield.kind, cfield.size, context=context),
                heap_elem_size=cfield.size,
                heap_elem_kind=cfield.kind,
                heap_alignment=min(cfield.size, 8),
                heap_dtype_char=_dtype_char(cfield.kind, cfield.size),
            )
        if cfield.is_string:
            return Column(
                field=cfield,
                name=cfield.name,
                role="string",
                code=_OFFSET_CODE,
                elem_size=_OFFSET_SIZE,
                per_row=cfield.static_count,
                alignment=4,
                dtype_char="u4",
                heap_alignment=1,
            )
        if cfield.name in fmt.length_field_names:
            return Column(
                field=cfield,
                name=cfield.name,
                role="count",
                code=scalar_code(cfield.kind, cfield.size, context=context),
                elem_size=cfield.size,
                per_row=1,
                alignment=min(cfield.size, 8),
                dtype_char=_dtype_char(cfield.kind, cfield.size),
                measures=tuple(measured.get(cfield.name, ())),
            )
        if cfield.kind == TypeKind.CHAR:
            if cfield.type.is_static_array:
                return Column(
                    field=cfield,
                    name=cfield.name,
                    role="chararray",
                    code=f"{cfield.static_count}s",
                    elem_size=cfield.static_count,
                    per_row=1,
                    alignment=1,
                    dtype_char=None,
                )
            return Column(
                field=cfield,
                name=cfield.name,
                role="char",
                code="c",
                elem_size=1,
                per_row=1,
                alignment=1,
                dtype_char=None,
            )
        code = scalar_code(cfield.kind, cfield.size, context=context)
        if cfield.type.is_static_array:
            return Column(
                field=cfield,
                name=cfield.name,
                role="array",
                code=code,
                elem_size=cfield.size,
                per_row=cfield.static_count,
                alignment=min(cfield.size, 8),
                dtype_char=_dtype_char(cfield.kind, cfield.size),
            )
        role = "bool" if cfield.kind == TypeKind.BOOLEAN else "scalar"
        return Column(
            field=cfield,
            name=cfield.name,
            role=role,
            code=code,
            elem_size=cfield.size,
            per_row=1,
            alignment=min(cfield.size, 8),
            dtype_char=_dtype_char(cfield.kind, cfield.size),
        )

    # -- layout -------------------------------------------------------------

    def layout(self, count: int) -> tuple[list[int], int]:
        """Column block start offsets and the fixed-region end, for N rows."""
        cached = self._layouts.get(count)
        if cached is not None:
            return cached
        starts: list[int] = []
        cursor = PRELUDE.size
        for column in self.columns:
            cursor = _align_up(cursor, column.alignment)
            starts.append(cursor)
            cursor += count * column.row_bytes
        if len(self._layouts) < 4096:  # bounded: batch sizes repeat
            self._layouts[count] = (starts, cursor)
        return starts, cursor

    # -- encoding -----------------------------------------------------------

    def encode_parts(self, records, *, use_numpy=None) -> list[bytes]:
        """Render a batch payload as a list of buffer parts.

        The parts concatenate to the full payload; returning them
        separately lets the transports scatter-gather them onto the wire
        without a join copy.  Raises :class:`~repro.errors.EncodeError`
        for empty batches, missing fields, or count inconsistencies.
        """
        records = records if isinstance(records, (list, tuple)) else list(records)
        count = len(records)
        fmt_name = self.format.name
        if count == 0:
            raise EncodeError(
                f"format {fmt_name!r}: a columnar batch needs at least one record"
            )
        numpy = _resolve_numpy(use_numpy, EncodeError)
        starts, fixed_end = self.layout(count)

        # Pass 1: derive (and cross-check) dynamic-array counts per row.
        dyn_counts: dict[str, list[int]] = {}
        for column in self.dynamic_columns:
            dyn_counts[column.name] = self._dynamic_counts(column, records)
        self._check_counts(records, dyn_counts)

        # Pass 2: lay out the heap and collect per-row offsets for every
        # variable column.  Rows pack contiguously within a column.
        heap_parts: list[bytes] = []
        offsets: dict[str, list[int]] = {}
        cursor = fixed_end
        for column in self.var_columns:
            aligned = _align_up(cursor, column.heap_alignment)
            if aligned != cursor:
                heap_parts.append(b"\x00" * (aligned - cursor))
                cursor = aligned
            if column.role == "string":
                cursor = self._render_string_heap(
                    column, records, heap_parts, offsets, cursor
                )
            else:
                cursor = self._render_dynamic_heap(
                    column, records, dyn_counts[column.name],
                    heap_parts, offsets, cursor, numpy,
                )

        # Pass 3: the fixed region — prelude plus one packed block per
        # column, with alignment padding between blocks.
        parts: list[bytes] = [PRELUDE.pack(count, fixed_end)]
        cursor = PRELUDE.size
        for column, start in zip(self.columns, starts):
            if start != cursor:
                parts.append(b"\x00" * (start - cursor))
                cursor = start
            block = self._render_block(
                column, records, dyn_counts, offsets, numpy
            )
            parts.append(block)
            cursor += len(block)
        parts.extend(heap_parts)
        return parts

    def encode(self, records, *, use_numpy=None) -> bytes:
        """The batch payload as one bytes object (joins the parts)."""
        return b"".join(self.encode_parts(records, use_numpy=use_numpy))

    def _field_value(self, record: dict, name: str, row: int):
        try:
            return record[name]
        except (KeyError, TypeError):
            raise EncodeError(
                f"format {self.format.name!r}: batch record {row} is missing "
                f"field {name!r}"
            ) from None

    def _column_values(self, records, name: str) -> list:
        """Every record's value for ``name``, in row order.

        The C-level ``map(itemgetter, ...)`` is the hot path; on any
        lookup failure the per-row fallback re-walks the records to
        name the offending row in the error.
        """
        try:
            return list(map(self._getters[name], records))
        except (KeyError, TypeError):
            return [
                self._field_value(record, name, row)
                for row, record in enumerate(records)
            ]

    def _dynamic_counts(self, column: Column, records) -> list[int]:
        values = self._column_values(records, column.name)
        try:
            return list(map(len, values))
        except TypeError:
            return [
                self._dynamic_count(column, record, row)
                for row, record in enumerate(records)
            ]

    def _dynamic_count(self, column: Column, record: dict, row: int) -> int:
        value = self._field_value(record, column.name, row)
        if value is None:
            return 0
        try:
            return len(value)
        except TypeError:
            raise EncodeError(
                f"format {self.format.name!r}: batch record {row} field "
                f"{column.name!r} expects a sequence, got {type(value).__name__}"
            ) from None

    def _check_counts(self, records, dyn_counts: dict[str, list[int]]) -> None:
        """Mirror the per-record encoder's count-field cross-checks."""
        for column in self.columns:
            if column.role != "count" or not column.measures:
                continue
            first = dyn_counts[column.measures[0]]
            for other in column.measures[1:]:
                lengths = dyn_counts[other]
                if lengths != first:
                    row = next(
                        i for i, (a, b) in enumerate(zip(first, lengths))
                        if a != b
                    )
                    raise EncodeError(
                        f"format {self.format.name!r}: batch record {row}: "
                        f"arrays sharing count field {column.name!r} have "
                        f"differing lengths "
                        f"{[dyn_counts[name][row] for name in column.measures]}"
                    )
            name = column.name
            explicits = [record.get(name) for record in records]
            if explicits == first:  # the common case, one C-level compare
                continue
            for row, (explicit, length) in enumerate(zip(explicits, first)):
                if explicit is not None and explicit != length:
                    raise EncodeError(
                        f"format {self.format.name!r}: batch record {row}: "
                        f"count field {name!r} is {explicit} but the "
                        f"array has {length} elements"
                    )

    def _render_string_heap(
        self, column, records, heap_parts, offsets, cursor
    ) -> int:
        if column.per_row == 1:
            values = self._column_values(records, column.name)
            try:
                bodies = [
                    b"" if value is None else value.encode("utf-8") + b"\x00"
                    for value in values
                ]
            except AttributeError:
                bodies = None  # a non-string value: take the slow path
            if bodies is not None:
                column_offsets = []
                append = column_offsets.append
                for body in bodies:
                    if body:
                        append(cursor)
                        cursor += len(body)
                    else:
                        append(0)
                heap_parts.append(b"".join(bodies))
                offsets[column.name] = column_offsets
                return cursor
        column_offsets = []
        fmt_name = self.format.name
        for row, record in enumerate(records):
            value = self._field_value(record, column.name, row)
            elements = [value] if column.per_row == 1 else value
            if column.per_row > 1:
                if not isinstance(value, (list, tuple)) or len(value) != column.per_row:
                    raise EncodeError(
                        f"format {fmt_name!r}: batch record {row} field "
                        f"{column.name!r} expects {column.per_row} strings"
                    )
                elements = value
            for element in elements:
                if element is None:
                    column_offsets.append(0)
                    continue
                if not isinstance(element, str):
                    raise EncodeError(
                        f"format {fmt_name!r}: batch record {row} field "
                        f"{column.name!r} expects a string, got "
                        f"{type(element).__name__}"
                    )
                body = element.encode("utf-8") + b"\x00"
                column_offsets.append(cursor)
                heap_parts.append(body)
                cursor += len(body)
        offsets[column.name] = column_offsets
        return cursor

    def _render_dynamic_heap(
        self, column, records, counts, heap_parts, offsets, cursor, numpy
    ) -> int:
        values = self._column_values(records, column.name)
        elem_size = column.heap_elem_size
        first = counts[0]
        if first and counts.count(first) == len(counts):
            # Uniform batch (the common bulk-stream shape): the offsets
            # are an arithmetic progression, built at C speed.
            row_bytes = first * elem_size
            stop = cursor + row_bytes * len(counts)
            column_offsets = list(range(cursor, stop, row_bytes))
            cursor = stop
            flat = values
        else:
            column_offsets = []
            append = column_offsets.append
            flat = []
            keep = flat.append
            for n, value in zip(counts, values):
                if n == 0:
                    append(0)
                    continue
                append(cursor)
                cursor += n * elem_size
                keep(value)
        offsets[column.name] = column_offsets
        if not flat:
            return cursor
        if (
            numpy is not None
            and column.heap_dtype_char is not None
            and (
                # Float conversion is bit-exact from Python floats and
                # ndarrays alike; integer columns take the vectorized
                # route only for ndarray rows (list ints must go through
                # struct.pack so out-of-range values raise, not wrap).
                column.heap_elem_kind == TypeKind.FLOAT
                or all(hasattr(value, "dtype") for value in flat)
            )
        ):
            dtype = numpy.dtype(self.order + column.heap_dtype_char)
            try:
                stacked = (
                    flat[0] if len(flat) == 1 else numpy.concatenate(flat)
                )
                converted = numpy.ascontiguousarray(stacked).astype(
                    dtype, copy=False
                )
                # The buffer rides the iovec as-is — no tobytes copy.
                block = memoryview(converted).cast("B")
            except (TypeError, ValueError):
                block = None  # non-numeric element: the scalar path
                # below raises the typed error naming the column
            if block is not None:
                heap_parts.append(block)
                return cursor
        if column.heap_elem_kind in (
            TypeKind.CHAR, TypeKind.BOOLEAN, TypeKind.ENUMERATION
        ):
            converted = [
                self._convert_element(column, element)
                for value in flat
                for element in value
            ]
        else:
            # Plain numerics need no per-element conversion: struct.pack
            # validates the types itself.
            converted = list(chain.from_iterable(flat))
        try:
            heap_parts.append(
                struct.pack(
                    f"{self.order}{len(converted)}{column.heap_elem_code}",
                    *converted,
                )
            )
        except struct.error as exc:
            raise EncodeError(
                f"format {self.format.name!r}: bad element in batch column "
                f"{column.name!r}: {exc}"
            ) from exc
        return cursor

    def _convert_element(self, column: Column, value):
        """Element conversion matching ``EncodePlan._convert_scalar``."""
        kind = column.heap_elem_kind
        if kind == TypeKind.CHAR:
            if isinstance(value, str):
                encoded = value.encode("utf-8")[:1]
                return encoded or b"\x00"
            if isinstance(value, int):
                return bytes([value])
            if isinstance(value, bytes):
                return value[:1] or b"\x00"
            raise EncodeError(
                f"format {self.format.name!r}: char element in batch column "
                f"{column.name!r} expects a 1-character string"
            )
        if kind == TypeKind.BOOLEAN:
            return 1 if value else 0
        if kind == TypeKind.ENUMERATION:
            return int(value)
        return value

    def _render_block(
        self, column, records, dyn_counts, offsets, numpy
    ) -> bytes:
        fmt_name = self.format.name
        role = column.role
        if role in ("string", "dynamic"):
            return self._pack_numeric(column, offsets[column.name], numpy)
        if role == "count":
            if column.measures:
                values = dyn_counts[column.measures[0]]
            else:
                values = [
                    int(record.get(column.name) or 0) for record in records
                ]
            return self._pack_numeric(column, values, numpy)
        if role == "char":
            rendered = []
            for row, record in enumerate(records):
                value = self._field_value(record, column.name, row)
                if isinstance(value, str):
                    encoded = value.encode("utf-8")[:1] or b"\x00"
                elif isinstance(value, bytes):
                    encoded = value[:1] or b"\x00"
                elif isinstance(value, int):
                    encoded = bytes([value])
                else:
                    raise EncodeError(
                        f"format {fmt_name!r}: batch record {row} char field "
                        f"{column.name!r} expects a 1-character string"
                    )
                rendered.append(encoded)
            return b"".join(rendered)
        if role == "chararray":
            rendered = []
            width = column.elem_size
            for row, record in enumerate(records):
                value = self._field_value(record, column.name, row)
                if isinstance(value, str):
                    raw = value.encode("utf-8")[:width]
                elif isinstance(value, bytes):
                    raw = value[:width]
                else:
                    raise EncodeError(
                        f"format {fmt_name!r}: batch record {row} char array "
                        f"{column.name!r} expects str or bytes"
                    )
                rendered.append(raw.ljust(width, b"\x00"))
            return b"".join(rendered)
        if role == "array":
            per = column.per_row
            flat: list = []
            extend = flat.extend
            for row, value in enumerate(
                self._column_values(records, column.name)
            ):
                try:
                    length = len(value)
                except TypeError:
                    raise EncodeError(
                        f"format {fmt_name!r}: batch record {row} field "
                        f"{column.name!r} expects a sequence of {per}"
                    ) from None
                if length != per:
                    raise EncodeError(
                        f"format {fmt_name!r}: batch record {row} field "
                        f"{column.name!r} expects exactly {per} "
                        f"elements, got {length}"
                    )
                extend(value)
            return self._pack_numeric(column, flat, numpy)
        # scalar (including enumerations) and bool
        values = self._column_values(records, column.name)
        if role == "bool":
            values = [1 if value else 0 for value in values]
        return self._pack_numeric(column, values, numpy)

    def _pack_numeric(self, column: Column, values, numpy) -> bytes:
        # ndarray input converts vectorized; plain Python lists go
        # through struct.pack, which is both faster at batch sizes and
        # stricter (out-of-range or mistyped values raise instead of
        # wrapping), matching the per-record encoder.
        if (
            numpy is not None
            and column.dtype_char is not None
            and hasattr(values, "dtype")
        ):
            try:
                return numpy.ascontiguousarray(values).astype(
                    numpy.dtype(self.order + column.dtype_char), copy=False
                ).tobytes()
            except (OverflowError, TypeError, ValueError) as exc:
                raise EncodeError(
                    f"format {self.format.name!r}: cannot pack batch column "
                    f"{column.name!r}: {exc}"
                ) from exc
        try:
            return struct.pack(
                f"{self.order}{len(values)}{column.code}", *values
            )
        except struct.error as exc:
            raise EncodeError(
                f"format {self.format.name!r}: cannot pack batch column "
                f"{column.name!r}: {exc}"
            ) from exc

    # -- decoding -----------------------------------------------------------

    def parse_prelude(self, payload) -> tuple[int, int, list[int]]:
        """Validate a batch payload's prelude; returns (N, heap_off, starts).

        Raises :class:`~repro.errors.DecodeError` with batch context for
        truncated or inconsistent payloads, before any column is read.
        """
        fmt_name = self.format.name
        if len(payload) < PRELUDE.size:
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: payload of "
                f"{len(payload)} bytes is shorter than the prelude"
            )
        count, heap_off = PRELUDE.unpack_from(payload, 0)
        if count == 0:
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: record count is zero"
            )
        # Bound N before computing the layout: a corrupt count must not
        # trigger a giant allocation downstream.
        min_row = sum(column.row_bytes for column in self.columns)
        if min_row and count > len(payload) // min_row + 1:
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: record count "
                f"{count} is impossible for a {len(payload)}-byte payload"
            )
        starts, fixed_end = self.layout(count)
        if heap_off != fixed_end:
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: heap offset "
                f"{heap_off} does not match the {count}-record fixed region "
                f"({fixed_end} bytes)"
            )
        if fixed_end > len(payload):
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: {count}-record "
                f"fixed region ({fixed_end} bytes) exceeds the "
                f"{len(payload)}-byte payload"
            )
        return count, heap_off, starts

    def decode_records(self, payload, *, use_numpy=None) -> list[dict]:
        """Decode a batch payload back to N record dicts.

        Value representation matches the per-record converters field for
        field: NULL strings decode to ``None``, empty dynamic arrays to
        ``[]``, chars to 1-character strings, booleans to ``bool``.
        """
        numpy = _resolve_numpy(use_numpy, DecodeError)
        count, heap_off, starts = self.parse_prelude(payload)
        columns: dict[str, list] = {}
        raw_counts: dict[str, tuple] = {}
        for column, start in zip(self.columns, starts):
            if column.role == "dynamic":
                continue
            values, raw = self._decode_fixed_column(
                column, payload, start, count, heap_off, numpy
            )
            columns[column.name] = values
            if column.role == "count":
                raw_counts[column.name] = raw
        for column, start in zip(self.columns, starts):
            if column.role != "dynamic":
                continue
            columns[column.name] = self._decode_dynamic_column(
                column, payload, start, count, heap_off, raw_counts, numpy
            )
        names = [column.name for column in self.columns]
        rows: list[dict] = [{} for _ in range(count)]
        for name in names:
            values = columns[name]
            for row, value in zip(rows, values):
                row[name] = value
        return rows

    def _raw_numeric(self, column, payload, start, total, numpy):
        """The column block as ``total`` raw numeric python values."""
        if numpy is not None and column.dtype_char is not None:
            return numpy.frombuffer(
                payload,
                dtype=numpy.dtype(self.order + column.dtype_char),
                count=total,
                offset=start,
            ).tolist()
        return struct.unpack_from(
            f"{self.order}{total}{column.code}", payload, start
        )

    def _decode_fixed_column(
        self, column, payload, start, count, heap_off, numpy
    ):
        fmt_name = self.format.name
        role = column.role
        try:
            if role in ("scalar", "count"):
                raw = self._raw_numeric(column, payload, start, count, numpy)
                return list(raw), raw
            if role == "bool":
                raw = self._raw_numeric(column, payload, start, count, numpy)
                return [bool(value) for value in raw], raw
            if role == "array":
                total = count * column.per_row
                raw = self._raw_numeric(column, payload, start, total, numpy)
                per = column.per_row
                return (
                    [list(raw[i * per:(i + 1) * per]) for i in range(count)],
                    raw,
                )
            if role == "char":
                block = bytes(payload[start:start + count])
                if len(block) != count:
                    raise ValueError("char column extends past the payload")
                return (
                    [block[i:i + 1].decode("latin-1") for i in range(count)],
                    block,
                )
            if role == "chararray":
                width = column.elem_size
                block = bytes(payload[start:start + count * width])
                if len(block) != count * width:
                    raise ValueError("char-array column extends past the payload")
                return (
                    [
                        block[i * width:(i + 1) * width]
                        .split(b"\x00", 1)[0]
                        .decode("utf-8")
                        for i in range(count)
                    ],
                    block,
                )
            # strings: offsets into the heap, 0 = NULL
            total = count * column.per_row
            raw = self._raw_numeric(column, payload, start, total, numpy)
            strings = [
                self._decode_string(column, payload, offset, heap_off)
                for offset in raw
            ]
            if column.per_row == 1:
                return strings, raw
            per = column.per_row
            return (
                [strings[i * per:(i + 1) * per] for i in range(count)],
                raw,
            )
        except (struct.error, ValueError, IndexError) as exc:
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: corrupt column "
                f"{column.name!r}: {exc}"
            ) from exc

    def _decode_string(self, column, payload, offset, heap_off):
        if offset == 0:
            return None
        if offset < heap_off or offset >= len(payload):
            raise ValueError(
                f"string offset {offset} outside the heap "
                f"[{heap_off}, {len(payload)})"
            )
        return _read_string(payload, offset)

    def _decode_dynamic_column(
        self, column, payload, start, count, heap_off, raw_counts, numpy
    ):
        fmt_name = self.format.name
        try:
            offsets = self._raw_numeric(column, payload, start, count, numpy)
            counts = raw_counts.get(column.length_field)
            if counts is None:
                raise ValueError(
                    f"count field {column.length_field!r} missing from the batch"
                )
            size = column.heap_elem_size
            limit = len(payload)
            for row in range(count):
                offset, n = offsets[row], counts[row]
                if offset == 0:
                    if n != 0:
                        raise ValueError(
                            f"row {row}: count {n} with a NULL heap offset"
                        )
                    continue
                if n < 0 or offset < heap_off or offset + n * size > limit:
                    raise ValueError(
                        f"row {row}: {n} element(s) at offset {offset} "
                        f"escape the heap [{heap_off}, {limit})"
                    )
            if numpy is not None and column.heap_dtype_char is not None:
                vectorized = self._split_contiguous(
                    column, payload, offsets, counts, numpy
                )
                if vectorized is not None:
                    return vectorized
            order = self.order
            code = column.heap_elem_code
            return [
                list(
                    struct.unpack_from(
                        f"{order}{counts[row]}{code}", payload, offsets[row]
                    )
                )
                if offsets[row]
                else []
                for row in range(count)
            ]
        except (struct.error, ValueError, IndexError) as exc:
            raise DecodeError(
                f"columnar batch for format {fmt_name!r}: corrupt column "
                f"{column.name!r}: {exc}"
            ) from exc

    def _split_contiguous(self, column, payload, offsets, counts, numpy):
        """One ``frombuffer`` + list splits when the rows pack contiguously
        (which this encoder always produces); None forces the row-by-row
        fallback for payloads from other writers."""
        size = column.heap_elem_size
        region_start = None
        cursor = None
        total = 0
        for offset, n in zip(offsets, counts):
            if offset == 0:
                continue
            if region_start is None:
                region_start = cursor = offset
            if offset != cursor:
                return None
            cursor += n * size
            total += n
        if region_start is None:
            return [[] for _ in offsets]
        flat = numpy.frombuffer(
            payload,
            dtype=numpy.dtype(self.order + column.heap_dtype_char),
            count=total,
            offset=region_start,
        ).tolist()
        rows: list[list] = []
        position = 0
        for offset, n in zip(offsets, counts):
            if offset == 0:
                rows.append([])
            else:
                rows.append(flat[position:position + n])
                position += n
        return rows


def get_columnar_plan(fmt: IOFormat) -> ColumnarPlan:
    """Return (building if necessary) the cached columnar plan for ``fmt``."""
    plan = getattr(fmt, "_columnar_plan", None)
    if plan is None:
        plan = ColumnarPlan(fmt)
        fmt._columnar_plan = plan  # type: ignore[attr-defined]
    return plan


def encode_batch_payload(fmt: IOFormat, records, *, use_numpy=None) -> bytes:
    """The columnar batch payload (no message header) for ``records``."""
    return get_columnar_plan(fmt).encode(records, use_numpy=use_numpy)


def decode_batch_payload(fmt: IOFormat, payload, *, use_numpy=None) -> list[dict]:
    """Decode a columnar batch payload against the wire format ``fmt``."""
    return get_columnar_plan(fmt).decode_records(payload, use_numpy=use_numpy)


class ColumnBatchView:
    """Lazy, column-oriented access to one batch payload.

    The receive-side analogue of :class:`~repro.pbio.RecordView` for
    batches: nothing is materialized up front.  :meth:`column` hands out
    a zero-copy read-only ``ndarray`` aliasing the payload (numpy
    required — the sender's byte order rides in the dtype);
    :meth:`row` materializes one record on demand; iterating the view
    (or :meth:`materialize`) yields all records via the batch decoder.
    The payload buffer must outlive the view and every array it hands
    out (PROTOCOL §12 ownership rules apply to batch frames too).
    """

    def __init__(self, fmt: IOFormat, payload, *, use_numpy=None) -> None:
        self.format = fmt
        self.plan = get_columnar_plan(fmt)
        self._payload = payload
        self._use_numpy = use_numpy
        self._numpy = None if use_numpy is False else _numpy_or_none()
        count, heap_off, starts = self.plan.parse_prelude(payload)
        self._count = count
        self._heap_off = heap_off
        self._starts = dict(zip((c.name for c in self.plan.columns), starts))
        self._records: list[dict] | None = None

    def _require_numpy(self):
        """numpy, or the typed error column access raises without it."""
        numpy = self._numpy
        if numpy is None:
            if self._use_numpy is False:
                raise DecodeError(
                    "column access needs numpy, but the view was created "
                    "with use_numpy=False"
                )
            raise DecodeError(
                "use_numpy=True requires numpy, which is not installed"
            )
        return numpy

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Records in the batch."""
        return self._count

    def column(self, name: str):
        """A zero-copy ``ndarray`` over a fixed-width numeric column.

        Shape is ``(N,)`` for scalars and ``(N, k)`` for static arrays;
        string and dynamic-array columns yield their u32 heap-offset
        blocks (use :meth:`strings` / :meth:`dynamic_column` for
        values).  Raises :class:`~repro.errors.DecodeError` for char
        columns (no numeric dtype) or when numpy is unavailable.
        """
        numpy = self._require_numpy()
        column = self._column(name)
        if column.dtype_char is None:
            raise DecodeError(
                f"column {name!r} of format {self.format.name!r} has no "
                f"numeric dtype; use row access instead"
            )
        array = numpy.frombuffer(
            self._payload,
            dtype=numpy.dtype(self.plan.order + column.dtype_char),
            count=self._count * column.per_row,
            offset=self._starts[name],
        )
        if column.per_row > 1:
            array = array.reshape(self._count, column.per_row)
        return array

    def strings(self, name: str) -> list:
        """All values of a string column (``None`` for NULL offsets)."""
        column = self._column(name)
        if column.role != "string":
            raise DecodeError(
                f"column {name!r} of format {self.format.name!r} is not a "
                f"string column"
            )
        values, _ = self.plan._decode_fixed_column(
            column, self._payload, self._starts[name], self._count,
            self._heap_off, None,
        )
        return values

    def dynamic_column(self, name: str):
        """(flat values ndarray, counts ndarray) for a dynamic-array column.

        Zero-copy over the column's packed heap region; requires numpy
        and a contiguously packed column (always true for batches this
        codec encoded).  Raises :class:`~repro.errors.DecodeError`
        otherwise.
        """
        numpy = self._require_numpy()
        column = self._column(name)
        if column.role != "dynamic":
            raise DecodeError(
                f"column {name!r} of format {self.format.name!r} is not a "
                f"dynamic-array column"
            )
        counts = self.column(column.length_field)
        offsets = self.column(name)
        total = int(counts.sum())
        size = column.heap_elem_size
        nonzero = offsets[offsets != 0]
        if len(nonzero) == 0:
            return (
                numpy.empty(
                    0, dtype=numpy.dtype(self.plan.order + column.heap_dtype_char)
                ),
                counts,
            )
        region_start = int(nonzero[0])
        if region_start + total * size > len(self._payload):
            raise DecodeError(
                f"columnar batch for format {self.format.name!r}: column "
                f"{name!r} heap region escapes the payload"
            )
        expected = region_start + numpy.concatenate(
            ([0], numpy.cumsum(counts.astype(numpy.int64)) * size)
        )[:-1]
        if not numpy.array_equal(
            offsets.astype(numpy.int64)[counts != 0], expected[counts != 0]
        ):
            raise DecodeError(
                f"columnar batch for format {self.format.name!r}: column "
                f"{name!r} is not contiguously packed; use row access"
            )
        flat = numpy.frombuffer(
            self._payload,
            dtype=numpy.dtype(self.plan.order + column.heap_dtype_char),
            count=total,
            offset=region_start,
        )
        return flat, counts

    def row(self, index: int) -> dict:
        """Materialize one record (lazily decodes the whole batch once)."""
        if not -self._count <= index < self._count:
            raise IndexError(index)
        return self.materialize()[index]

    def materialize(self) -> list[dict]:
        """All records, decoded once and cached on the view."""
        if self._records is None:
            self._records = self.plan.decode_records(
                self._payload, use_numpy=self._use_numpy
            )
        return self._records

    def __iter__(self):
        return iter(self.materialize())

    def __getitem__(self, index: int) -> dict:
        return self.row(index)

    def _column(self, name: str) -> Column:
        try:
            return self.plan.by_name[name]
        except KeyError:
            raise DecodeError(
                f"format {self.format.name!r} has no column {name!r}"
            ) from None
