"""NDR encoding: records to wire payloads in the sender's native layout.

The payload produced for a record is:

.. code-block:: text

    [ base record: record_length bytes, the struct exactly as it would  ]
    [ sit in the sender's memory, with pointer slots holding offsets    ]
    [ variable section: string bodies and dynamic-array bodies,         ]
    [ each aligned, in field order                                      ]

Pointer slots hold byte offsets *from the start of the payload* (offset 0
would fall inside the base record, so 0 is reserved for NULL).  This is
PBIO's trick for making native data position-independent: on the sender
the "copy" from memory is the encode, on a homogeneous receiver the
payload can be used in place.

Encoding is driven by a precompiled :class:`EncodePlan`: one
:class:`struct.Struct` whose format string covers the entire fixed region
(pad bytes standing in for compiler padding), plus an ordered list of
variable-section items.  Compiling the plan once per format and packing
the whole base record in a single call is the sender-side analogue of
PBIO's "move data directly out of memory" — per-field interpretation is
paid at format registration, not per message.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from time import perf_counter

from repro.arch.model import TypeKind
from repro.errors import EncodeError
from repro.obs import metrics as _metrics
from repro.obs.instr import SAMPLE_MASK, pbio_handles
from repro.obs.metrics import get_registry
from repro.pbio.format import CompiledField, IOFormat


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


#: (kind, size) -> struct code, byte-order-free.
_CODES: dict[tuple[TypeKind, int], str] = {
    (TypeKind.SIGNED_INT, 1): "b",
    (TypeKind.SIGNED_INT, 2): "h",
    (TypeKind.SIGNED_INT, 4): "i",
    (TypeKind.SIGNED_INT, 8): "q",
    (TypeKind.UNSIGNED_INT, 1): "B",
    (TypeKind.UNSIGNED_INT, 2): "H",
    (TypeKind.UNSIGNED_INT, 4): "I",
    (TypeKind.UNSIGNED_INT, 8): "Q",
    (TypeKind.FLOAT, 4): "f",
    (TypeKind.FLOAT, 8): "d",
    (TypeKind.BOOLEAN, 1): "B",
    (TypeKind.BOOLEAN, 4): "I",
    (TypeKind.ENUMERATION, 4): "I",
    (TypeKind.ENUMERATION, 8): "Q",
    (TypeKind.CHAR, 1): "c",
}


def ndarray_wire_bytes(array, dtype_str: str) -> bytes:
    """Vectorized wire bytes for a numpy array (one conversion/copy).

    ``dtype_str`` is the wire dtype (byte order included).  Imported
    lazily so numpy stays an optional acceleration.
    """
    import numpy

    return numpy.asarray(array).astype(numpy.dtype(dtype_str), copy=False).tobytes()


def scalar_code(kind: TypeKind, size: int, *, context: str) -> str:
    """The struct-module code for a scalar, without byte-order prefix."""
    try:
        return _CODES[(kind, size)]
    except KeyError:
        raise EncodeError(
            f"{context}: no wire representation for {kind.value} of {size} bytes"
        ) from None


@dataclass(frozen=True)
class _FixedLeaf:
    """One slot (or contiguous array of slots) in the base record.

    ``path`` addresses the value inside the (possibly nested) record
    dict; ``role`` selects the value extraction strategy.
    """

    path: tuple[str, ...]
    offset: int
    code: str  # struct code(s) for this leaf, no prefix
    role: str  # scalar | char | bool | array | chararray | string_ptr | dyn_ptr | count
    count: int = 1
    # for role == "count": paths of the arrays this field measures
    measures: tuple[tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class _VarItem:
    """One variable-section item: a string or a dynamic array."""

    path: tuple[str, ...]
    kind: str  # "string" | "array"
    element_code: str = ""
    element_size: int = 0
    element_kind: TypeKind | None = None
    alignment: int = 4
    # static arrays of strings produce one _VarItem per element:
    element_index: int | None = None


class EncodePlan:
    """A compiled encoder for one :class:`IOFormat`.

    Plans are cached on the format instance by :func:`get_encode_plan`;
    building one walks the format tree once and is part of the
    registration cost the paper's Table 1 measures.
    """

    def __init__(self, fmt: IOFormat) -> None:
        self.format = fmt
        self.arch = fmt.arch
        leaves: list[_FixedLeaf] = []
        var_items: list[_VarItem] = []
        self._flatten(fmt, 0, (), leaves, var_items)
        leaves.sort(key=lambda leaf: leaf.offset)
        self.leaves = leaves
        self.var_items = var_items
        self.fixed_struct = struct.Struct(self._build_format_string(leaves))

    # -- plan construction --------------------------------------------------

    def _flatten(
        self,
        fmt: IOFormat,
        base: int,
        prefix: tuple[str, ...],
        leaves: list[_FixedLeaf],
        var_items: list[_VarItem],
    ) -> None:
        # Map length-field name -> measured array paths, per instance.
        measured: dict[str, list[tuple[str, ...]]] = {}
        for field in fmt.compiled_fields:
            if field.type.is_dynamic_array:
                measured.setdefault(field.type.length_field, []).append(
                    prefix + (field.name,)
                )
        for field in fmt.compiled_fields:
            path = prefix + (field.name,)
            offset = base + field.offset
            if field.nested is not None:
                stride = field.nested.record_length
                for index in range(field.static_count):
                    element_path = path if field.static_count == 1 else path + (str(index),)
                    self._flatten(
                        field.nested, offset + index * stride, element_path,
                        leaves, var_items,
                    )
                continue
            if field.type.is_dynamic_array:
                code = self.arch.struct_code(TypeKind.POINTER, self.arch.pointer_size)[1:]
                leaves.append(_FixedLeaf(path, offset, code, "dyn_ptr"))
                var_items.append(
                    _VarItem(
                        path=path,
                        kind="array",
                        element_code=scalar_code(
                            field.kind, field.size, context=f"field {field.name}"
                        ),
                        element_size=field.size,
                        element_kind=field.kind,
                        alignment=min(field.size, 8),
                    )
                )
                continue
            if field.is_string:
                code = self.arch.struct_code(TypeKind.POINTER, self.arch.pointer_size)[1:]
                for index in range(field.static_count):
                    element_path = path if field.static_count == 1 else path + (str(index),)
                    leaves.append(
                        _FixedLeaf(
                            element_path,
                            offset + index * self.arch.pointer_size,
                            code,
                            "string_ptr",
                        )
                    )
                    var_items.append(
                        _VarItem(path=element_path, kind="string", alignment=4)
                    )
                continue
            # Primitive scalar or static primitive array.
            role = "scalar"
            if field.kind == TypeKind.CHAR:
                role = "char"
            elif field.kind == TypeKind.BOOLEAN:
                role = "bool"
            if field.name in fmt.length_field_names:
                leaves.append(
                    _FixedLeaf(
                        path,
                        offset,
                        scalar_code(field.kind, field.size, context=f"field {field.name}"),
                        "count",
                        measures=tuple(measured.get(field.name, ())),
                    )
                )
                continue
            if field.type.is_static_array:
                if field.kind == TypeKind.CHAR:
                    leaves.append(
                        _FixedLeaf(
                            path, offset, f"{field.static_count}s", "chararray",
                            count=field.static_count,
                        )
                    )
                else:
                    code = scalar_code(
                        field.kind, field.size, context=f"field {field.name}"
                    )
                    leaves.append(
                        _FixedLeaf(
                            path, offset, code * field.static_count, "array",
                            count=field.static_count,
                        )
                    )
                continue
            leaves.append(
                _FixedLeaf(
                    path,
                    offset,
                    scalar_code(field.kind, field.size, context=f"field {field.name}"),
                    role,
                )
            )

    def _build_format_string(self, leaves: list[_FixedLeaf]) -> str:
        prefix = "<" if self.arch.is_little_endian else ">"
        parts = [prefix]
        cursor = 0
        for leaf in leaves:
            if leaf.offset < cursor:
                raise EncodeError(
                    f"format {self.format.name!r}: overlapping fields at offset "
                    f"{leaf.offset} (field path {'.'.join(leaf.path)})"
                )
            if leaf.offset > cursor:
                parts.append(f"{leaf.offset - cursor}x")
            parts.append(leaf.code)
            cursor = leaf.offset + struct.calcsize(prefix + leaf.code)
        if cursor > self.format.record_length:
            raise EncodeError(
                f"format {self.format.name!r}: fields extend past record length"
            )
        if cursor < self.format.record_length:
            parts.append(f"{self.format.record_length - cursor}x")
        return "".join(parts)

    # -- encoding -------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        """Encode ``record`` to an NDR payload.

        Raises :class:`~repro.errors.EncodeError` for missing fields,
        type mismatches, or count-field inconsistencies.
        """
        pointer_values: dict[tuple[str, ...], int] = {}
        var_parts: list[bytes] = []
        cursor = self.format.record_length
        for item in self.var_items:
            data, is_null = self._render_var_item(item, record)
            if is_null:
                pointer_values[item.path] = 0
                continue
            aligned = _align_up(cursor, item.alignment)
            if aligned != cursor:
                var_parts.append(b"\x00" * (aligned - cursor))
                cursor = aligned
            pointer_values[item.path] = cursor
            var_parts.append(data)
            cursor += len(data)
        values = [
            self._leaf_value(leaf, record, pointer_values) for leaf in self.leaves
        ]
        try:
            fixed = self.fixed_struct.pack(*[v for vs in values for v in vs])
        except struct.error as exc:
            raise EncodeError(
                f"format {self.format.name!r}: cannot pack record: {exc}"
            ) from exc
        return fixed + b"".join(var_parts)

    def encode_into(self, record: dict, buffer, offset: int = 0) -> int:
        """Encode ``record`` into ``buffer`` at ``offset``; returns length.

        Byte-identical output to :meth:`encode`, written in place with
        ``pack_into`` on a caller-supplied writable buffer (typically a
        pooled ``bytearray`` — see :mod:`repro.wire.bufpool`), so the
        steady-state sender allocates no payload bytes.

        If the buffer cannot hold the payload an
        :class:`~repro.errors.EncodeError` is raised *before anything is
        written*, carrying the required size as its ``needed`` attribute
        so callers can re-acquire and retry.
        """
        pointer_values: dict[tuple[str, ...], int] = {}
        var_parts: list[bytes] = []
        cursor = self.format.record_length
        for item in self.var_items:
            data, is_null = self._render_var_item(item, record)
            if is_null:
                pointer_values[item.path] = 0
                continue
            aligned = _align_up(cursor, item.alignment)
            if aligned != cursor:
                var_parts.append(b"\x00" * (aligned - cursor))
                cursor = aligned
            pointer_values[item.path] = cursor
            var_parts.append(data)
            cursor += len(data)
        total = cursor
        if len(buffer) - offset < total:
            error = EncodeError(
                f"format {self.format.name!r}: buffer has "
                f"{len(buffer) - offset} bytes free, payload needs {total}"
            )
            error.needed = total  # type: ignore[attr-defined]
            raise error
        values = [
            self._leaf_value(leaf, record, pointer_values) for leaf in self.leaves
        ]
        try:
            self.fixed_struct.pack_into(
                buffer, offset, *[v for vs in values for v in vs]
            )
        except struct.error as exc:
            raise EncodeError(
                f"format {self.format.name!r}: cannot pack record: {exc}"
            ) from exc
        position = offset + self.format.record_length
        # A memoryview assignment is a straight memcpy; bytearray slice
        # assignment would materialize a temporary copy of each part.
        target = memoryview(buffer)
        for part in var_parts:
            end = position + len(part)
            target[position:end] = part
            position = end
        return total

    def encoded_size(self, record: dict) -> int:
        """Size in bytes of the payload :meth:`encode` would produce."""
        return len(self.encode(record))

    # -- value extraction -------------------------------------------------------

    def _lookup(self, record: dict, path: tuple[str, ...]):
        value = record
        for part in path:
            if isinstance(value, dict):
                if part not in value:
                    raise EncodeError(
                        f"format {self.format.name!r}: record is missing field "
                        f"{'.'.join(path)!r}"
                    )
                value = value[part]
            elif isinstance(value, (list, tuple)) and part.isdigit():
                index = int(part)
                if index >= len(value):
                    raise EncodeError(
                        f"format {self.format.name!r}: array for "
                        f"{'.'.join(path)!r} is too short"
                    )
                value = value[index]
            else:
                raise EncodeError(
                    f"format {self.format.name!r}: expected a dict/list at "
                    f"{'.'.join(path)!r}"
                )
        return value

    def _render_var_item(self, item: _VarItem, record: dict) -> tuple[bytes, bool]:
        value = self._lookup(record, item.path)
        if item.kind == "string":
            if value is None:
                return b"", True
            if not isinstance(value, str):
                raise EncodeError(
                    f"format {self.format.name!r}: field {'.'.join(item.path)!r} "
                    f"expects a string, got {type(value).__name__}"
                )
            return value.encode("utf-8") + b"\x00", False
        # Dynamic array.
        if value is None or (hasattr(value, "__len__") and len(value) == 0):
            return b"", True
        try:
            count = len(value)
        except TypeError:
            raise EncodeError(
                f"format {self.format.name!r}: field {'.'.join(item.path)!r} "
                f"expects a sequence, got {type(value).__name__}"
            ) from None
        order = "<" if self.arch.is_little_endian else ">"
        if hasattr(value, "dtype"):
            # numpy fast path: one vectorized conversion, no per-element
            # Python work (the bulk scientific-data case).
            from repro.pbio.types import DTYPE_CHARS

            char = DTYPE_CHARS.get((item.element_kind, item.element_size))
            if char is not None:
                return ndarray_wire_bytes(value, order + char), False
        converted = [self._convert_scalar(item.element_kind, v, item.path) for v in value]
        try:
            return struct.pack(f"{order}{count}{item.element_code}", *converted), False
        except struct.error as exc:
            raise EncodeError(
                f"format {self.format.name!r}: bad element in "
                f"{'.'.join(item.path)!r}: {exc}"
            ) from exc

    def _convert_scalar(self, kind: TypeKind | None, value, path: tuple[str, ...]):
        if kind == TypeKind.CHAR:
            if isinstance(value, str):
                encoded = value.encode("utf-8")[:1]
                return encoded or b"\x00"
            if isinstance(value, int):
                return bytes([value])
            if isinstance(value, bytes):
                return value[:1] or b"\x00"
            raise EncodeError(
                f"format {self.format.name!r}: char field {'.'.join(path)!r} "
                f"expects a 1-character string"
            )
        if kind == TypeKind.BOOLEAN:
            return 1 if value else 0
        if kind == TypeKind.ENUMERATION:
            return int(value)
        return value

    def _leaf_value(
        self,
        leaf: _FixedLeaf,
        record: dict,
        pointers: dict[tuple[str, ...], int],
    ) -> tuple:
        if leaf.role in ("string_ptr", "dyn_ptr"):
            return (pointers[leaf.path],)
        if leaf.role == "count":
            return (self._count_value(leaf, record),)
        value = self._lookup(record, leaf.path)
        if leaf.role == "scalar":
            return (value,)
        if leaf.role == "char":
            return (self._convert_scalar(TypeKind.CHAR, value, leaf.path),)
        if leaf.role == "bool":
            return (1 if value else 0,)
        if leaf.role == "chararray":
            if isinstance(value, str):
                return (value.encode("utf-8")[: leaf.count],)
            if isinstance(value, bytes):
                return (value[: leaf.count],)
            raise EncodeError(
                f"format {self.format.name!r}: char array "
                f"{'.'.join(leaf.path)!r} expects str or bytes"
            )
        # role == "array": a static primitive array.
        if not isinstance(value, (list, tuple)):
            raise EncodeError(
                f"format {self.format.name!r}: field {'.'.join(leaf.path)!r} "
                f"expects a sequence of {leaf.count}"
            )
        if len(value) != leaf.count:
            raise EncodeError(
                f"format {self.format.name!r}: field {'.'.join(leaf.path)!r} "
                f"expects exactly {leaf.count} elements, got {len(value)}"
            )
        return tuple(value)

    def _count_value(self, leaf: _FixedLeaf, record: dict) -> int:
        """Derive (and cross-check) a dynamic-array count field's value."""
        lengths = []
        for array_path in leaf.measures:
            value = self._lookup(record, array_path)
            lengths.append(0 if value is None else len(value))
        explicit = None
        try:
            explicit = self._lookup(record, leaf.path)
        except EncodeError:
            pass  # counts may be omitted from records; they are derived
        if lengths and len(set(lengths)) > 1:
            raise EncodeError(
                f"format {self.format.name!r}: arrays sharing count field "
                f"{'.'.join(leaf.path)!r} have differing lengths {lengths}"
            )
        derived = lengths[0] if lengths else 0
        if explicit is not None and lengths and explicit != derived:
            raise EncodeError(
                f"format {self.format.name!r}: count field "
                f"{'.'.join(leaf.path)!r} is {explicit} but the array has "
                f"{derived} elements"
            )
        if not lengths:
            return int(explicit or 0)
        return derived


def get_encode_plan(fmt: IOFormat) -> EncodePlan:
    """Return (building if necessary) the cached plan for ``fmt``."""
    plan = getattr(fmt, "_encode_plan", None)
    if plan is None:
        plan = EncodePlan(fmt)
        fmt._encode_plan = plan  # type: ignore[attr-defined]
    return plan


def get_generated_encoder(fmt: IOFormat):
    """Return (building if necessary) the cached generated encoder.

    The encoder is the sender-side analogue of the generated converter:
    specialized Python source compiled at first use (see
    :mod:`repro.pbio.codegen`).  It produces byte-identical output to
    :meth:`EncodePlan.encode` and raises the same errors (by falling
    back to the plan for diagnostics).
    """
    encoder = getattr(fmt, "_generated_encoder", None)
    if encoder is None:
        from repro.pbio.codegen import make_generated_encoder

        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "pbio_codegen_total", "converter/encoder cache events",
                ("kind", "event"),
            ).labels("encoder", "miss").inc()
        encoder = make_generated_encoder(fmt)
        fmt._generated_encoder = encoder  # type: ignore[attr-defined]
    return encoder


def get_generated_encode_into(fmt: IOFormat):
    """Return (building if necessary) the cached generated in-place encoder.

    The ``encode_into`` counterpart of :func:`get_generated_encoder`:
    byte-identical to :meth:`EncodePlan.encode_into` (including the
    capacity :class:`EncodeError` carrying ``.needed``), with the plan
    walk compiled away so the zero-copy sender allocates only the
    variable-section parts it must render.
    """
    encoder = getattr(fmt, "_generated_encode_into", None)
    if encoder is None:
        from repro.pbio.codegen import make_generated_encoder_into

        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "pbio_codegen_total", "converter/encoder cache events",
                ("kind", "event"),
            ).labels("encode_into", "miss").inc()
        encoder = make_generated_encoder_into(fmt)
        fmt._generated_encode_into = encoder  # type: ignore[attr-defined]
    return encoder


# Shared sampling tick for encode-duration observations; racy updates
# only jitter the sampling phase, never the exact operation counters.
_encode_tick = [0]


def encode_record(fmt: IOFormat, record: dict, *, mode: str = "generated") -> bytes:
    """Encode ``record`` per ``fmt``.

    ``mode`` selects the generated encoder (default) or the plan-walking
    ``"interpreted"`` encoder kept for the sender-side ablation.
    """
    if mode == "generated":
        encoder = get_generated_encoder(fmt)
    elif mode == "interpreted":
        encoder = get_encode_plan(fmt).encode
    else:
        raise EncodeError(f"unknown encode mode {mode!r}")
    # Read the default-registry global directly: the function call that
    # get_registry() costs is measurable inside the <5 % overhead budget.
    registry = _metrics._default_registry
    if not registry.enabled:
        return encoder(record)
    # Inline fast path of pbio_handles: one getattr, no call.
    handles = getattr(fmt, "_obs_pbio", None)
    if handles is None or handles.registry is not registry:
        handles = pbio_handles(fmt, registry)
    _encode_tick[0] += 1
    if _encode_tick[0] & SAMPLE_MASK:
        payload = encoder(record)
        handles.encode_inc()
        return payload
    started = perf_counter()
    payload = encoder(record)
    handles.encode_observe(perf_counter() - started)
    handles.encode_inc()
    return payload
