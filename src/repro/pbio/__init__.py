"""PBIO — the binary communication mechanism (substrate S4).

A reimplementation of the Georgia Tech PBIO library (Eisenhauer & Daley,
HCW 2000) that the paper uses as its wire engine.  The defining idea is
NDR — *Natural Data Representation*: a sender transmits records in its own
native memory layout (byte order, sizes, alignment and all), preceded once
per connection by compact format metadata.  Receivers interpret or convert
incoming records using routines *generated at run time* and specialized to
the exact (wire format, native format) pair, so:

- homogeneous exchanges degenerate to trivial unpacking of native bytes
  (the "move data directly out of memory onto the medium" case), and
- heterogeneous exchanges pay exactly one conversion, on the receiving
  side ("receiver makes right"), with no canonical intermediate format.

Public surface:

- :class:`~repro.pbio.field.IOField` — one field declaration, mirroring
  the paper's ``IOField`` C arrays (name, type string, size, offset).
- :class:`~repro.pbio.format.IOFormat` — a registered format bound to an
  architecture model; knows its own wire metadata representation.
- :class:`~repro.pbio.context.IOContext` — registration, encode, decode,
  format-id resolution and converter caching.
- :class:`~repro.pbio.context.DecodedRecord` — a decoded message.
- :mod:`~repro.pbio.evolution` — restricted format evolution (field
  addition/removal tolerance by name matching), compiled projections,
  the :class:`~repro.pbio.evolution.Compatibility` lattice and the
  :class:`~repro.pbio.evolution.FormatLineage` registry.
- :mod:`~repro.pbio.lru` — the shared bounded LRU behind the converter,
  format-server and metadata-client caches (PROTOCOL §16).
- :mod:`~repro.pbio.fmserver` — an in-process format server mapping
  format ids to metadata, PBIO's out-of-band resolution path.
- :mod:`~repro.pbio.columnar` — the columnar bulk batch codec
  (:class:`~repro.pbio.columnar.ColumnBatchView`,
  :class:`~repro.pbio.context.DecodedBatch`): N same-format records as
  per-field column blocks on one ``KIND_BATCH`` message.
"""

from repro.pbio.field import IOField
from repro.pbio.format import IOFormat, format_from_layout
from repro.pbio.columnar import (
    ColumnBatchView,
    ColumnarPlan,
    decode_batch_payload,
    encode_batch_payload,
    get_columnar_plan,
)
from repro.pbio.context import DecodedBatch, DecodedRecord, IOContext
from repro.pbio.decode import ConverterCache
from repro.pbio.evolution import (
    Compatibility,
    FormatLineage,
    compare_formats,
    formats_compatible,
    make_projection,
)
from repro.pbio.fmserver import FormatServer
from repro.pbio.lru import BoundedLRU
from repro.pbio.view import RecordView, view_message
from repro.pbio.iofile import IOFileReader, IOFileWriter, dump_records, load_records

__all__ = [
    "BoundedLRU",
    "Compatibility",
    "ConverterCache",
    "FormatLineage",
    "compare_formats",
    "formats_compatible",
    "make_projection",
    "IOFileReader",
    "IOFileWriter",
    "dump_records",
    "load_records",
    "IOField",
    "IOFormat",
    "format_from_layout",
    "ColumnBatchView",
    "ColumnarPlan",
    "DecodedBatch",
    "DecodedRecord",
    "IOContext",
    "FormatServer",
    "RecordView",
    "decode_batch_payload",
    "encode_batch_payload",
    "get_columnar_plan",
    "view_message",
]
