"""PBIO's primitive type vocabulary and field-type string grammar.

PBIO field types are strings like ``"integer"``, ``"string"``,
``"integer[5]"`` (static array) or ``"integer[eta_count]"`` (array sized
at run time by the ``eta_count`` field) — exactly the notation of the
paper's Figures 5, 8 and 11.  A type may also name another registered
format, giving composition by nesting.

PBIO deliberately separates field *type* (the marshaling technique) from
field *size* (supplied separately by the application, typically via
``sizeof``), so ``"integer"`` covers C ``short``/``int``/``long`` alike.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.arch.model import TypeKind
from repro.errors import FormatRegistrationError

#: PBIO base type names → marshaling kind.
PBIO_KINDS: dict[str, TypeKind] = {
    "integer": TypeKind.SIGNED_INT,
    "unsigned integer": TypeKind.UNSIGNED_INT,
    "unsigned": TypeKind.UNSIGNED_INT,
    "float": TypeKind.FLOAT,
    "double": TypeKind.FLOAT,
    "char": TypeKind.CHAR,
    "boolean": TypeKind.BOOLEAN,
    "enumeration": TypeKind.ENUMERATION,
    "string": TypeKind.POINTER,
}

_ARRAY_RE = re.compile(r"^(?P<base>[^\[\]]+?)\s*\[(?P<dim>[^\[\]]*)\]$")

#: numpy dtype characters for bulk numeric kinds (no byte-order prefix);
#: shared by the bulk array helpers and the encoder's ndarray fast path.
DTYPE_CHARS: dict[tuple[TypeKind, int], str] = {
    (TypeKind.SIGNED_INT, 1): "i1",
    (TypeKind.SIGNED_INT, 2): "i2",
    (TypeKind.SIGNED_INT, 4): "i4",
    (TypeKind.SIGNED_INT, 8): "i8",
    (TypeKind.UNSIGNED_INT, 1): "u1",
    (TypeKind.UNSIGNED_INT, 2): "u2",
    (TypeKind.UNSIGNED_INT, 4): "u4",
    (TypeKind.UNSIGNED_INT, 8): "u8",
    (TypeKind.FLOAT, 4): "f4",
    (TypeKind.FLOAT, 8): "f8",
}


@dataclass(frozen=True)
class ParsedFieldType:
    """A decomposed PBIO field type string.

    Exactly one of the following shapes holds:

    - plain scalar: ``count`` and ``length_field`` are both ``None``;
    - static array: ``count`` is set;
    - dynamic array: ``length_field`` names the sibling count field.

    ``base`` is either a PBIO primitive name (present in
    :data:`PBIO_KINDS`) or the name of another registered format.
    """

    base: str
    count: int | None = None
    length_field: str | None = None

    @property
    def is_static_array(self) -> bool:
        return self.count is not None

    @property
    def is_dynamic_array(self) -> bool:
        return self.length_field is not None

    @property
    def is_scalar(self) -> bool:
        return self.count is None and self.length_field is None

    @property
    def is_string(self) -> bool:
        return self.base == "string"

    @property
    def is_primitive(self) -> bool:
        return self.base in PBIO_KINDS

    def render(self) -> str:
        """Reassemble the canonical type string."""
        if self.count is not None:
            return f"{self.base}[{self.count}]"
        if self.length_field is not None:
            return f"{self.base}[{self.length_field}]"
        return self.base


def parse_field_type(type_string: str) -> ParsedFieldType:
    """Parse a PBIO field type string.

    Raises :class:`~repro.errors.FormatRegistrationError` on malformed
    strings (empty dimensions, nested brackets, ...).
    """
    text = type_string.strip()
    match = _ARRAY_RE.match(text)
    if match is None:
        if "[" in text or "]" in text:
            raise FormatRegistrationError(f"malformed field type {type_string!r}")
        if not text:
            raise FormatRegistrationError("empty field type")
        return ParsedFieldType(base=text)
    base = match.group("base").strip()
    dim = match.group("dim").strip()
    if not base or not dim:
        raise FormatRegistrationError(f"malformed field type {type_string!r}")
    if dim.isdigit():
        count = int(dim)
        if count <= 0:
            raise FormatRegistrationError(
                f"static array size must be positive in {type_string!r}"
            )
        return ParsedFieldType(base=base, count=count)
    if not dim.replace("_", "").isalnum() or dim[0].isdigit():
        raise FormatRegistrationError(
            f"array dimension {dim!r} is neither a size nor a field name"
        )
    return ParsedFieldType(base=base, length_field=dim)


def kind_of(base: str) -> TypeKind:
    """Marshaling kind of a PBIO primitive base type name."""
    try:
        return PBIO_KINDS[base]
    except KeyError:
        raise FormatRegistrationError(f"{base!r} is not a PBIO primitive type") from None
