"""Bulk numeric arrays: zero-copy NDR access via numpy.

The paper's motivating workloads move "scientific or engineering data"
— large numeric arrays — where NDR's promise is strongest: the wire
holds the sender's native array bytes, so a receiver can use them *in
place*.  In Python that promise is redeemable through numpy:

- :func:`array_view` returns an ``ndarray`` that aliases the payload
  buffer directly — no copy, no conversion, regardless of the sender's
  byte order (numpy dtypes carry endianness, so a big-endian wire array
  is usable on a little-endian host as-is, converting lazily per
  access);
- :func:`native_copy` materializes a host-native copy when downstream
  code needs one (one vectorized byteswap — still no per-element
  Python work);
- :func:`pack_array` converts a numpy array to wire bytes for the
  encoder (a plain ``tobytes`` when dtype and byte order already match,
  i.e. homogeneous send is one memcpy, exactly PBIO's story).

numpy is an *optional* acceleration: nothing in the core library
imports it; records built from plain lists behave identically.  The
encoder accepts numpy arrays for dynamic-array fields transparently
(they satisfy the sequence protocol); use :func:`pack_array` +
:class:`~repro.pbio.RecordView` for the zero-copy fast path measured in
``benchmarks/test_bulk_numpy.py``.
"""

from __future__ import annotations

from repro.errors import DecodeError
from repro.pbio.format import CompiledField, IOFormat
from repro.pbio.types import DTYPE_CHARS as _DTYPE_CHARS
from repro.pbio.view import RecordView


def _numpy():
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy present in CI env
        raise DecodeError(
            "bulk array access requires numpy, which is not installed"
        ) from exc
    return numpy


def wire_dtype(fmt: IOFormat, field: CompiledField):
    """The numpy dtype of ``field``'s elements *as they sit on the wire*
    (sender byte order included)."""
    numpy = _numpy()
    try:
        char = _DTYPE_CHARS[(field.kind, field.size)]
    except KeyError:
        raise DecodeError(
            f"field {field.name!r} is not a bulk numeric type"
        ) from None
    prefix = "<" if fmt.arch.is_little_endian else ">"
    return numpy.dtype(prefix + char)


def array_view(view: RecordView, field_name: str):
    """A zero-copy ``ndarray`` over an array field of an NDR payload.

    Works for dynamic arrays (via the pointer and count fields) and
    static arrays (in the base record).  The array is read-only — it
    aliases the receive buffer.
    """
    numpy = _numpy()
    fmt = view.format
    field = fmt.field(field_name)
    payload = view._payload  # intentional: views exist to alias this
    dtype = wire_dtype(fmt, field)
    if field.type.is_dynamic_array:
        pointer = view._read_pointer(view._base + field.offset)
        if pointer == 0:
            return numpy.empty(0, dtype=dtype)
        count_field = fmt.field(field.type.length_field)
        count = view._read_scalar(count_field, view._base + count_field.offset)
        end = pointer + count * field.size
        if end > len(payload):
            raise DecodeError(
                f"array field {field_name!r} extends past the payload"
            )
        array = numpy.frombuffer(payload, dtype=dtype, count=count, offset=pointer)
    elif field.type.is_static_array:
        array = numpy.frombuffer(
            payload,
            dtype=dtype,
            count=field.static_count,
            offset=view._base + field.offset,
        )
    else:
        raise DecodeError(f"field {field_name!r} is not an array")
    # frombuffer over immutable bytes is already read-only.
    return array


def native_copy(array):
    """A host-native-byte-order copy of a (possibly foreign-order) view."""
    numpy = _numpy()
    native = array.dtype.newbyteorder("=")
    return numpy.ascontiguousarray(array.astype(native, copy=True))


def pack_array(fmt: IOFormat, field_name: str, values) -> bytes:
    """Convert a numpy array to this field's wire representation.

    When the array's dtype already matches the wire dtype (homogeneous
    send), this is a single buffer copy; otherwise one vectorized
    conversion.  The result can be passed in a record dict in place of a
    list — the encoder accepts any sequence — but for bulk paths prefer
    building payloads with lists of one ``pack_array`` result is not
    needed: simply pass the ndarray; this helper exists for pre-staging
    benchmarks and for writing raw array sections to files.
    """
    numpy = _numpy()
    field = fmt.field(field_name)
    dtype = wire_dtype(fmt, field)
    array = numpy.asarray(values)
    if array.dtype != dtype:
        array = array.astype(dtype)
    return array.tobytes()
