"""PBIO data files: self-describing binary record archives.

PBIO "provides facilities for encoding application data structures so
that they may be transmitted in binary form over computer networks **or
written to data files** in a heterogeneous computing environment"
(Eisenhauer & Daley, quoted in the paper's §4.1.2).  A PBIO file is the
connection protocol persisted: format-metadata messages and data
messages in one stream, so a file written on a SPARC is fully
interpretable years later on any machine — the metadata travels with
the data.

File layout::

    8 bytes   magic "PBIOFILE"
    then framed messages (u32 length prefix + message), where each
    message is a standard context message (kind 2 format metadata or
    kind 1 data).  Metadata for a format always precedes its first data
    record, exactly like a connection.

:class:`IOFileWriter` appends records (pushing metadata on first use per
format); :class:`IOFileReader` iterates decoded records, learning
formats as they appear, and supports ``expect=`` projection for reading
old archives with evolved formats.
"""

from __future__ import annotations

import os
from typing import BinaryIO, Iterator

from repro.errors import DecodeError, WireError
from repro.pbio.context import (
    HEADER_SIZE,
    KIND_DATA,
    KIND_FORMAT,
    DecodedRecord,
    IOContext,
)
from repro.pbio.format import IOFormat
from repro.wire.framing import frame, read_frame

MAGIC = b"PBIOFILE"


class IOFileWriter:
    """Write records (with embedded metadata) to a binary file.

    Parameters
    ----------
    target:
        A path or a writable binary file object.
    context:
        The encoding endpoint; its architecture is the file's NDR
        layout.  Formats must be registered with it before writing.
    """

    def __init__(self, target: str | os.PathLike | BinaryIO, context: IOContext) -> None:
        if hasattr(target, "write"):
            self._file: BinaryIO = target  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(target, "wb")
            self._owns_file = True
        self.context = context
        self._announced: set[bytes] = set()
        self.records_written = 0
        self._file.write(MAGIC)

    def write(self, fmt: IOFormat | str, record: dict) -> None:
        """Append one record, preceding it with metadata on first use."""
        if isinstance(fmt, str):
            fmt = self.context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            self._file.write(frame(self.context.format_message(fmt)))
            self._announced.add(fmt.format_id)
        self._file.write(frame(self.context.encode(fmt, record)))
        self.records_written += 1

    def close(self) -> None:
        """Flush (and close, if this writer opened the file)."""
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()

    def __enter__(self) -> "IOFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class IOFileReader:
    """Iterate decoded records from a PBIO file, on any architecture.

    The reader's context is independent of the writer's: formats are
    learned from the in-file metadata, and conversion happens exactly
    as it would on a network receive.
    """

    def __init__(
        self,
        source: str | os.PathLike | BinaryIO,
        context: IOContext | None = None,
    ) -> None:
        if hasattr(source, "read"):
            self._file: BinaryIO = source  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(source, "rb")
            self._owns_file = True
        self.context = context if context is not None else IOContext()
        magic = self._file.read(len(MAGIC))
        if magic != MAGIC:
            raise DecodeError(
                f"not a PBIO file: expected {MAGIC!r} magic, found {magic!r}"
            )
        self.records_read = 0

    def records(
        self, *, expect: str | None = None, mode: str = "generated"
    ) -> Iterator[DecodedRecord]:
        """Yield every data record in file order.

        ``expect`` projects records onto a format registered in the
        reader's context (reading old archives with new code, or vice
        versa).
        """
        from repro.errors import ChannelClosedError

        while True:
            try:
                message = read_frame(self._file.read)
            except ChannelClosedError:
                return  # clean end of file at a record boundary
            except WireError as exc:
                raise DecodeError(f"truncated PBIO file: {exc}") from exc
            kind, _, _, length, _ = IOContext.parse_header(message)
            if kind == KIND_FORMAT:
                self.context.learn_format(message[HEADER_SIZE : HEADER_SIZE + length])
                continue
            if kind != KIND_DATA:
                raise DecodeError(f"unexpected message kind {kind} in PBIO file")
            self.records_read += 1
            yield self.context.decode(message, expect=expect, mode=mode)

    def close(self) -> None:
        """Close the underlying file if this reader opened it."""
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "IOFileReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def dump_records(
    path: str | os.PathLike,
    context: IOContext,
    fmt: IOFormat | str,
    records: Iterator[dict] | list[dict],
) -> int:
    """Write an iterable of same-format records; returns the count."""
    with IOFileWriter(path, context) as writer:
        for record in records:
            writer.write(fmt, record)
        return writer.records_written


def load_records(
    path: str | os.PathLike,
    context: IOContext | None = None,
    *,
    expect: str | None = None,
) -> list[DecodedRecord]:
    """Read every record of a PBIO file into a list."""
    with IOFileReader(path, context) as reader:
        return list(reader.records(expect=expect))
