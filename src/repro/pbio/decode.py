"""Decoding NDR payloads: converter selection and bounded caching.

Decoding is driven entirely by the *wire* format's metadata (which
arrived once, out-of-band or in-band); the receiver picks a converter:

- **generated** (default): the dynamically generated routine from
  :mod:`~repro.pbio.codegen`, built on first use per wire format and
  cached — PBIO's "custom routines created on-the-fly";
- **interpreted**: the per-record metadata-walking fallback, kept for
  the A1 ablation and as an executable specification of the wire format.

If the receiver's *native* format differs from the wire format (format
evolution: the sender added or removed fields), the generated path
compiles a **fused** decode+project converter — the wire record decodes
straight into the receiver's native shape with no intermediate
wire-shaped dict — while the interpreted path composes the interpreted
converter with the interpreted projection (the executable
specification the fused routine must match).

The cache is *instance-based* (PROTOCOL §16): converters are compiled
only for the (wire format id, native format id) pairs traffic actually
presents, and a bounded, thread-safe LRU (:class:`~repro.pbio.lru.BoundedLRU`)
guarantees that pairs traffic no longer touches cannot hold compiled
code forever.  Content-addressed format ids make the entries survive
re-registration of identical metadata for free.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DecodeError
from repro.obs.metrics import get_registry
from repro.pbio.codegen import (
    make_fused_converter,
    make_generated_converter,
    make_interpreted_converter,
)
from repro.pbio.evolution import make_interpreted_projection
from repro.pbio.format import IOFormat
from repro.pbio.lru import BoundedLRU

Converter = Callable[[bytes], dict]

_MODES = ("generated", "interpreted")

#: Default bound on live converters per cache.  Each entry is one
#: compiled function (a few KB); 1024 pairs comfortably covers a server
#: speaking to a heterogeneous fleet while capping a 10k-format churn.
DEFAULT_CONVERTER_CAPACITY = 1024


class ConverterCache:
    """Bounded cache of converters keyed by (wire id, target id, mode).

    One instance lives in each :class:`~repro.pbio.context.IOContext`
    by default; sharing one cache across contexts is safe (converters
    are pure functions) and supported — pass the same instance to
    several contexts to share compiled pairs across connections.

    ``use_fused`` is the tri-state codegen switch for the evolved-record
    path: ``None`` (default) fuses decode+project in generated mode and
    falls back to compose-then-project if fusion fails; ``True`` forces
    fusion (errors propagate); ``False`` keeps the two-step path.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CONVERTER_CAPACITY,
        *,
        name: str = "converter",
        use_fused: bool | None = None,
    ) -> None:
        self._converters: BoundedLRU = BoundedLRU(capacity, name=name)
        self.use_fused = use_fused
        self.builds = 0  # observable for amortization experiments

    @property
    def hits(self) -> int:
        """Cache hits (also exported as ``pbio_converter_cache_hits``)."""
        return self._converters.hits

    @property
    def capacity(self) -> int:
        return self._converters.capacity

    def __len__(self) -> int:
        return len(self._converters)

    def stats(self) -> dict:
        """LRU counters plus build count in one reportable dict."""
        return {**self._converters.stats(), "builds": self.builds}

    def invalidate(self, format_id: bytes) -> None:
        """Drop every cached converter involving ``format_id``.

        Only needed when a format *name* is rebound to different
        metadata — content-addressed ids mean identical re-registration
        never requires invalidation.
        """
        for key in self._converters.keys():
            if key[0] == format_id or key[1] == format_id:
                self._converters.pop(key)

    def lookup(
        self,
        wire_format: IOFormat,
        target_format: IOFormat | None = None,
        mode: str = "generated",
    ) -> Converter:
        """Return a converter, building and caching it on first miss."""
        if mode not in _MODES:
            raise DecodeError(f"unknown conversion mode {mode!r}; use one of {_MODES}")
        key = (
            wire_format.format_id,
            target_format.format_id if target_format is not None else None,
            mode,
        )
        converter = self._converters.get(key)
        if converter is not None:
            return converter
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "pbio_codegen_total", "converter/encoder cache events",
                ("kind", "event"),
            ).labels("converter", "miss").inc()
        converter = self._build(wire_format, target_format, mode)
        self._converters.put(key, converter)
        self.builds += 1
        return converter

    def _build(
        self, wire_format: IOFormat, target_format: IOFormat | None, mode: str
    ) -> Converter:
        needs_projection = (
            target_format is not None
            and target_format.format_id != wire_format.format_id
        )
        if mode == "generated":
            if needs_projection and self.use_fused is not False:
                try:
                    return make_fused_converter(wire_format, target_format)
                except Exception:
                    if self.use_fused:
                        raise
                    # fall through to the two-step composed path
            base = make_generated_converter(wire_format)
        else:
            base = make_interpreted_converter(wire_format)
        if not needs_projection:
            return base
        project = make_interpreted_projection(wire_format, target_format)

        def convert_and_project(payload: bytes) -> dict:
            return project(base(payload))

        return convert_and_project


def decode_payload(
    wire_format: IOFormat,
    payload: bytes,
    *,
    target_format: IOFormat | None = None,
    mode: str = "generated",
    cache: ConverterCache | None = None,
) -> dict:
    """Decode one NDR payload.

    Standalone convenience for tests and tools; applications normally go
    through :meth:`IOContext.decode <repro.pbio.context.IOContext.decode>`,
    which manages the cache and format resolution.
    """
    if len(payload) < wire_format.record_length:
        raise DecodeError(
            f"payload of {len(payload)} bytes is shorter than the "
            f"{wire_format.record_length}-byte base record of "
            f"{wire_format.name!r}"
        )
    owner = cache if cache is not None else ConverterCache()
    converter = owner.lookup(wire_format, target_format, mode)
    try:
        # Converters accept any buffer (bytes/bytearray/memoryview) —
        # views from the zero-copy receive path pass through uncopied.
        return converter(payload)
    except (IndexError, ValueError) as exc:
        raise DecodeError(
            f"corrupt payload for format {wire_format.name!r}: {exc}"
        ) from exc
