"""Decoding NDR payloads: converter selection and caching.

Decoding is driven entirely by the *wire* format's metadata (which
arrived once, out-of-band or in-band); the receiver picks a converter:

- **generated** (default): the dynamically generated routine from
  :mod:`~repro.pbio.codegen`, built on first use per wire format and
  cached — PBIO's "custom routines created on-the-fly";
- **interpreted**: the per-record metadata-walking fallback, kept for
  the A1 ablation and as an executable specification of the wire format.

If the receiver's *native* format differs from the wire format (format
evolution: the sender added or removed fields), the decoded record is
projected onto the native format by :mod:`~repro.pbio.evolution`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import DecodeError
from repro.obs.metrics import get_registry
from repro.pbio.codegen import make_generated_converter, make_interpreted_converter
from repro.pbio.evolution import make_projection
from repro.pbio.format import IOFormat

Converter = Callable[[bytes], dict]

_MODES = ("generated", "interpreted")


class ConverterCache:
    """Cache of converters keyed by (wire format, target format, mode).

    One instance lives in each :class:`~repro.pbio.context.IOContext`;
    sharing converters across contexts would be safe (they are pure
    functions) but PBIO scopes conversion state per context, and so do
    we.
    """

    def __init__(self) -> None:
        self._converters: dict[tuple[bytes, bytes | None, str], Converter] = {}
        self.builds = 0  # observable for amortization experiments
        self.hits = 0  # cache hits; kept as a plain int so the per-decode
        # hot path never touches the registry (misses, being rare, do)

    def lookup(
        self,
        wire_format: IOFormat,
        target_format: IOFormat | None = None,
        mode: str = "generated",
    ) -> Converter:
        """Return a converter, building and caching it on first use."""
        if mode not in _MODES:
            raise DecodeError(f"unknown conversion mode {mode!r}; use one of {_MODES}")
        key = (
            wire_format.format_id,
            target_format.format_id if target_format is not None else None,
            mode,
        )
        converter = self._converters.get(key)
        if converter is not None:
            self.hits += 1
            return converter
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "pbio_codegen_total", "converter/encoder cache events",
                ("kind", "event"),
            ).labels("converter", "miss").inc()
        converter = self._build(wire_format, target_format, mode)
        self._converters[key] = converter
        self.builds += 1
        return converter

    def _build(
        self, wire_format: IOFormat, target_format: IOFormat | None, mode: str
    ) -> Converter:
        if mode == "generated":
            base = make_generated_converter(wire_format)
        else:
            base = make_interpreted_converter(wire_format)
        if target_format is None or target_format.format_id == wire_format.format_id:
            return base
        project = make_projection(wire_format, target_format)

        def convert_and_project(payload: bytes) -> dict:
            return project(base(payload))

        return convert_and_project


def decode_payload(
    wire_format: IOFormat,
    payload: bytes,
    *,
    target_format: IOFormat | None = None,
    mode: str = "generated",
    cache: ConverterCache | None = None,
) -> dict:
    """Decode one NDR payload.

    Standalone convenience for tests and tools; applications normally go
    through :meth:`IOContext.decode <repro.pbio.context.IOContext.decode>`,
    which manages the cache and format resolution.
    """
    if len(payload) < wire_format.record_length:
        raise DecodeError(
            f"payload of {len(payload)} bytes is shorter than the "
            f"{wire_format.record_length}-byte base record of "
            f"{wire_format.name!r}"
        )
    owner = cache if cache is not None else ConverterCache()
    converter = owner.lookup(wire_format, target_format, mode)
    try:
        # Converters accept any buffer (bytes/bytearray/memoryview) —
        # views from the zero-copy receive path pass through uncopied.
        return converter(payload)
    except (IndexError, ValueError) as exc:
        raise DecodeError(
            f"corrupt payload for format {wire_format.name!r}: {exc}"
        ) from exc
