"""Restricted format evolution: field addition/removal tolerance.

PBIO "does support a form of restricted evolution in message formats in
which elements may be added to message formats without causing receivers
of previous versions of the message to fail" (paper §6).  The mechanism
is name matching: a decoded wire record is *projected* onto the
receiver's native format —

- fields present in both keep the wire value (recursively for nested
  formats matched by name);
- fields only in the wire format are dropped;
- fields only in the native format get a type-appropriate default
  (``0`` for numbers, ``None`` for strings, ``[]`` for dynamic arrays,
  zeroed elements for static arrays, recursively defaulted dicts for
  nested formats).

This is a *binding*-level feature, not a discovery feature — the paper
§3.3 is explicit on that point: both format versions have already been
discovered by the time a mismatch can be observed.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.model import TypeKind
from repro.pbio.format import CompiledField, IOFormat

Projection = Callable[[dict], dict]


def default_value(field: CompiledField):
    """The default a receiver sees for a field the sender never set."""
    if field.nested is not None:
        nested_default = default_record(field.nested)
        if field.static_count > 1:
            return [default_record(field.nested) for _ in range(field.static_count)]
        return nested_default
    if field.type.is_dynamic_array:
        return []
    if field.is_string:
        if field.static_count > 1:
            return [None] * field.static_count
        return None
    if field.kind == TypeKind.CHAR:
        if field.type.is_static_array:
            return ""
        return "\x00"
    if field.kind == TypeKind.BOOLEAN:
        return False
    scalar_default = 0 if field.kind != TypeKind.FLOAT else 0.0
    if field.type.is_static_array:
        return [scalar_default] * field.static_count
    return scalar_default


def default_record(fmt: IOFormat) -> dict:
    """A fully defaulted record for ``fmt``."""
    return {field.name: default_value(field) for field in fmt.compiled_fields}


def make_projection(wire_format: IOFormat, target_format: IOFormat) -> Projection:
    """Build a projection from wire-format records onto ``target_format``.

    The projection plan is computed once (here); applying it per record
    is a flat loop over the target's fields.
    """
    plan: list[tuple[str, str, object]] = []  # (name, action, extra)
    wire_fields = {field.name: field for field in wire_format.compiled_fields}
    for target_field in target_format.compiled_fields:
        wire_field = wire_fields.get(target_field.name)
        if wire_field is None:
            plan.append((target_field.name, "default", default_value(target_field)))
        elif (
            target_field.nested is not None
            and wire_field.nested is not None
            and target_field.static_count == wire_field.static_count
        ):
            nested_projection = make_projection(wire_field.nested, target_field.nested)
            if target_field.static_count > 1:
                plan.append((target_field.name, "nested_list", nested_projection))
            else:
                plan.append((target_field.name, "nested", nested_projection))
        elif target_field.nested is not None or wire_field.nested is not None:
            # Nested on one side only: the shapes are incompatible, treat
            # as unknown and default (matching PBIO's drop semantics).
            plan.append((target_field.name, "default", default_value(target_field)))
        else:
            plan.append((target_field.name, "copy", None))

    def project(record: dict) -> dict:
        result: dict = {}
        for name, action, extra in plan:
            if action == "copy":
                result[name] = record[name]
            elif action == "default":
                # Copy mutable defaults so callers can't alias them.
                result[name] = list(extra) if isinstance(extra, list) else (
                    dict(extra) if isinstance(extra, dict) else extra
                )
            elif action == "nested":
                result[name] = extra(record[name])
            else:  # nested_list
                result[name] = [extra(element) for element in record[name]]
        return result

    return project


def formats_compatible(wire_format: IOFormat, target_format: IOFormat) -> bool:
    """True if every target field is either matched by name or defaulted.

    Always true under PBIO's evolution rules (projection cannot fail),
    so this reports whether the projection is the identity — useful for
    logging format drift.
    """
    wire_names = set(wire_format.field_names())
    target_names = set(target_format.field_names())
    return wire_names == target_names
