"""Format evolution: lazy instance-based binding and format lineage.

PBIO "does support a form of restricted evolution in message formats in
which elements may be added to message formats without causing receivers
of previous versions of the message to fail" (paper §6).  The mechanism
is name matching: a decoded wire record is *projected* onto the
receiver's native format —

- fields present in both keep the wire value (recursively for nested
  formats matched by name);
- fields only in the wire format are dropped;
- fields only in the native format get a type-appropriate default
  (``0`` for numbers, ``None`` for strings, ``[]`` for dynamic arrays,
  zeroed elements for static arrays, recursively defaulted dicts for
  nested formats).

This module grew three layers on that base (PROTOCOL §16):

- **compiled projections** — :func:`make_projection` compiles the
  projection plan to a flat generated function (every default baked in
  as a literal, every copy a direct subscript), with the interpreted
  closure kept as a value-identical fallback behind the tri-state
  ``use_codegen`` switch;
- **a typed compatibility lattice** — :func:`compare_formats` classifies
  a (wire, native) pair as :class:`Compatibility` ``IDENTITY`` (wire
  bytes are native bytes), ``EQUIVALENT`` (decode needed, projection
  not), or ``PROJECTION`` (field sets, order or types differ); under
  PBIO's rules every pair is *compatible* — projection cannot fail —
  so the lattice answers "how much work", not "whether";
- **a format-lineage registry** — :class:`FormatLineage` links format
  versions into ancestry chains (auto-linked by name in registration
  order, or explicitly via ``parent=``), so the metadata plane can
  answer ``GET /lineage/<id>`` and compatibility queries and receivers
  can pick a converter without downloading every ancestor schema.

This is a *binding*-level feature, not a discovery feature — the paper
§3.3 is explicit on that point: both format versions have already been
discovered by the time a mismatch can be observed.
"""

from __future__ import annotations

import copy
import json
import threading
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.arch.model import TypeKind
from repro.errors import ConversionError, DecodeError
from repro.pbio.format import CompiledField, IOFormat

Projection = Callable[[dict], dict]


def default_value(field: CompiledField):
    """The default a receiver sees for a field the sender never set."""
    if field.nested is not None:
        nested_default = default_record(field.nested)
        if field.static_count > 1:
            return [default_record(field.nested) for _ in range(field.static_count)]
        return nested_default
    if field.type.is_dynamic_array:
        return []
    if field.is_string:
        if field.static_count > 1:
            return [None] * field.static_count
        return None
    if field.kind == TypeKind.CHAR:
        if field.type.is_static_array:
            return ""
        return "\x00"
    if field.kind == TypeKind.BOOLEAN:
        return False
    scalar_default = 0 if field.kind != TypeKind.FLOAT else 0.0
    if field.type.is_static_array:
        return [scalar_default] * field.static_count
    return scalar_default


def default_record(fmt: IOFormat) -> dict:
    """A fully defaulted record for ``fmt``."""
    return {field.name: default_value(field) for field in fmt.compiled_fields}


# -- projection plans ----------------------------------------------------------


def _plan_steps(
    wire_format: IOFormat, target_format: IOFormat
) -> list[tuple[str, str, object]]:
    """The projection plan: one (name, action, extra) step per target field.

    Actions: ``copy`` (wire value kept), ``default`` (extra is the
    default value), ``nested`` / ``nested_list`` (extra is the
    (wire, target) nested format pair).
    """
    steps: list[tuple[str, str, object]] = []
    wire_fields = {field.name: field for field in wire_format.compiled_fields}
    for target_field in target_format.compiled_fields:
        wire_field = wire_fields.get(target_field.name)
        if wire_field is None:
            steps.append((target_field.name, "default", default_value(target_field)))
        elif (
            target_field.nested is not None
            and wire_field.nested is not None
            and target_field.static_count == wire_field.static_count
        ):
            pair = (wire_field.nested, target_field.nested)
            if target_field.static_count > 1:
                steps.append((target_field.name, "nested_list", pair))
            else:
                steps.append((target_field.name, "nested", pair))
        elif target_field.nested is not None or wire_field.nested is not None:
            # Nested on one side only: the shapes are incompatible, treat
            # as unknown and default (matching PBIO's drop semantics).
            steps.append((target_field.name, "default", default_value(target_field)))
        else:
            steps.append((target_field.name, "copy", None))
    return steps


def make_interpreted_projection(
    wire_format: IOFormat, target_format: IOFormat
) -> Projection:
    """The metadata-walking projection: a flat loop over the plan steps.

    Kept as the executable specification the compiled projection must
    match value-for-value (including freshness of mutable defaults —
    every projected record owns its default lists and dicts outright).
    """
    plan: list[tuple[str, str, object]] = []
    for name, action, extra in _plan_steps(wire_format, target_format):
        if action in ("nested", "nested_list"):
            extra = make_interpreted_projection(*extra)
        plan.append((name, action, extra))

    def project(record: dict) -> dict:
        result: dict = {}
        for name, action, extra in plan:
            if action == "copy":
                result[name] = record[name]
            elif action == "default":
                # Deep-copy mutable defaults so records never alias
                # each other (or the plan) through a defaulted field.
                result[name] = (
                    copy.deepcopy(extra)
                    if isinstance(extra, (list, dict))
                    else extra
                )
            elif action == "nested":
                result[name] = extra(record[name])
            else:  # nested_list
                result[name] = [extra(element) for element in record[name]]
        return result

    return project


def generate_projection_source(
    wire_format: IOFormat,
    target_format: IOFormat,
    function_name: str = "project",
) -> str:
    """Python source of a compiled projection for the (wire, target) pair.

    The generated function is a single dict display: copies are direct
    subscripts, defaults are literals (list/dict literals construct
    fresh objects per call, so nothing aliases), nested formats inline
    recursively, nested static arrays become list comprehensions.
    Exposed separately so tests and ``pbdump --lineage`` can inspect it.
    """
    body = _emit_projection(wire_format, target_format, "record", depth=0, indent=2)
    return f"def {function_name}(record):\n    return {body}\n"


def _emit_projection(
    wire_format: IOFormat,
    target_format: IOFormat,
    base: str,
    depth: int,
    indent: int,
) -> str:
    pad = " " * ((indent - 1) * 4)
    inner = " " * (indent * 4)
    entries: list[str] = []
    for name, action, extra in _plan_steps(wire_format, target_format):
        if action == "copy":
            value = f"{base}[{name!r}]"
        elif action == "default":
            value = repr(extra)
        elif action == "nested":
            value = _emit_projection(
                *extra, f"{base}[{name!r}]", depth, indent + 1
            )
        else:  # nested_list
            var = f"_e{depth}"
            element = _emit_projection(*extra, var, depth + 1, indent + 1)
            value = f"[{element} for {var} in {base}[{name!r}]]"
        entries.append(f"{inner}{name!r}: {value},")
    return "{\n" + "\n".join(entries) + f"\n{pad}}}"


def make_compiled_projection(
    wire_format: IOFormat, target_format: IOFormat
) -> Projection:
    """Compile and return the generated projection function."""
    source = generate_projection_source(wire_format, target_format)
    namespace: dict = {}
    try:
        code = compile(
            source,
            f"<pbio projection {wire_format.name} -> {target_format.name}>",
            "exec",
        )
        exec(code, namespace)  # noqa: S102 - this is the DCG mechanism itself
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise ConversionError(
            f"generated projection {wire_format.name!r} -> "
            f"{target_format.name!r} failed to compile: {exc}\n{source}"
        ) from exc
    return namespace["project"]


def make_projection(
    wire_format: IOFormat,
    target_format: IOFormat,
    *,
    use_codegen: bool | None = None,
) -> Projection:
    """Build a projection from wire-format records onto ``target_format``.

    The projection plan is computed once (here); applying it per record
    is flat work over the target's fields.  ``use_codegen`` is the
    tri-state switch of PROTOCOL §16: ``None`` (default) compiles the
    projection and falls back to the interpreted closure if generation
    fails, ``True`` forces compilation (raising
    :class:`~repro.errors.ConversionError` on failure), ``False``
    forces the interpreted closure.  Both paths are value-identical.
    """
    if use_codegen is False:
        return make_interpreted_projection(wire_format, target_format)
    try:
        return make_compiled_projection(wire_format, target_format)
    except ConversionError:
        if use_codegen:
            raise
        return make_interpreted_projection(wire_format, target_format)


def describe_projection(wire_format: IOFormat, target_format: IOFormat) -> list[str]:
    """Human-readable projection plan lines (``pbdump --lineage``).

    One line per target field (``copy`` / ``default`` / ``project``)
    plus one ``drop`` line per wire field the target does not declare —
    the full story of what a receiver does to an evolved record.
    """
    lines: list[str] = []
    for name, action, extra in _plan_steps(wire_format, target_format):
        if action == "copy":
            wire_field = next(
                f for f in wire_format.compiled_fields if f.name == name
            )
            lines.append(f"copy     {name} ({wire_field.type.render()})")
        elif action == "default":
            lines.append(f"default  {name} = {extra!r}")
        else:
            nested_wire, nested_target = extra
            suffix = "[]" if action == "nested_list" else ""
            lines.append(
                f"project  {name}{suffix} ({nested_wire.name} -> "
                f"{nested_target.name})"
            )
            for sub in describe_projection(nested_wire, nested_target):
                lines.append(f"  {sub}")
    target_names = set(target_format.field_names())
    for wire_field in wire_format.compiled_fields:
        if wire_field.name not in target_names:
            lines.append(f"drop     {wire_field.name} ({wire_field.type.render()})")
    return lines


# -- compatibility lattice -----------------------------------------------------


class Compatibility(str, Enum):
    """How much binding work a (wire, native) format pair needs.

    Under PBIO's evolution rules every pair is *compatible* (projection
    cannot fail), so the lattice grades effort, not possibility:

    - ``IDENTITY`` — same fields, order, types, offsets, sizes, record
      length and byte order: the wire bytes *are* native bytes, the
      homogeneous fast path applies.
    - ``EQUIVALENT`` — same fields, order and types but a different
      layout (heterogeneous peers): a decode is needed, a projection is
      not — the decoded record is already target-shaped.
    - ``PROJECTION`` — field sets, order or types differ (evolution):
      the receiver needs a projection (compiled lazily, per observed
      pair).
    """

    IDENTITY = "identity"
    EQUIVALENT = "equivalent"
    PROJECTION = "projection"

    @property
    def compatible(self) -> bool:
        """Always True: PBIO projection handles every declared pair."""
        return True

    @property
    def projection_needed(self) -> bool:
        """True when decode alone does not produce the native shape."""
        return self is Compatibility.PROJECTION


def compare_formats(
    wire_format: IOFormat, target_format: IOFormat
) -> Compatibility:
    """Classify the (wire, target) pair on the :class:`Compatibility` lattice.

    Order-insensitive in what it *tolerates* (any name-matched pair is
    compatible) but alias-aware in what it calls ``IDENTITY``: reordered
    or retyped fields sharing names with the target are precisely the
    case where the old set-equality predicate lied, and they classify as
    ``PROJECTION`` here.  Nested formats are compared recursively; the
    weakest nested relation bounds the whole.
    """
    wire_fields = wire_format.compiled_fields
    target_fields = target_format.compiled_fields
    if wire_format.format_id == target_format.format_id and not any(
        field.nested is not None for field in wire_fields
    ):
        # The id hashes only the format's own block, so id equality is
        # conclusive only for formats without nested dependencies; with
        # nesting, the structural walk below decides.
        return Compatibility.IDENTITY
    if len(wire_fields) != len(target_fields):
        return Compatibility.PROJECTION
    relation = Compatibility.IDENTITY
    for wire_field, target_field in zip(wire_fields, target_fields):
        if wire_field.name != target_field.name:
            return Compatibility.PROJECTION
        if (wire_field.nested is None) != (target_field.nested is None):
            return Compatibility.PROJECTION
        if wire_field.nested is not None:
            # Nested bases are format *names*; the structures decide.
            if (
                wire_field.type.count != target_field.type.count
                or wire_field.type.length_field != target_field.type.length_field
            ):
                return Compatibility.PROJECTION
            nested = compare_formats(wire_field.nested, target_field.nested)
            if nested is Compatibility.PROJECTION:
                return Compatibility.PROJECTION
            if nested is Compatibility.EQUIVALENT:
                relation = Compatibility.EQUIVALENT
        elif wire_field.type.render() != target_field.type.render():
            return Compatibility.PROJECTION
        if (
            wire_field.size != target_field.size
            or wire_field.offset != target_field.offset
        ):
            relation = Compatibility.EQUIVALENT
    if (
        wire_format.record_length != target_format.record_length
        or wire_format.arch.byte_order != target_format.arch.byte_order
    ):
        relation = Compatibility.EQUIVALENT
    return relation


def formats_compatible(wire_format: IOFormat, target_format: IOFormat) -> bool:
    """True if decode alone yields the target shape (no projection needed).

    Always-true *compatibility* is not what this reports — under PBIO's
    evolution rules projection cannot fail — so, as before, it reports
    whether the projection would be the identity, useful for logging
    format drift.  Unlike the old set-equality check it is alias-aware:
    reordered or retyped fields count as drift (``PROJECTION``), while a
    pure layout change (same fields on another architecture) does not.
    """
    return compare_formats(wire_format, target_format) is not Compatibility.PROJECTION


# -- format lineage ------------------------------------------------------------


@dataclass(frozen=True)
class LineageEntry:
    """One registered format version: the format, its parent, its depth."""

    format: IOFormat
    parent: bytes | None
    version: int


class FormatLineage:
    """A versioned registry of format ancestry (thread-safe).

    Formats register with an optional explicit ``parent``; without one,
    a new format auto-links to the current latest version of the same
    *name*, so registration order defines the version chain — exactly
    the order a rolling upgrade produces.  Registration is idempotent
    (content-addressed ids), and ancestry answers are chains of ids, so
    clients resolve "how do I convert?" without fetching every ancestor
    schema (the large-schema-sets lesson).

    :meth:`describe` / :meth:`compatibility` produce the JSON documents
    the metadata plane serves under ``/lineage/`` (PROTOCOL §16), and
    :meth:`documents` renders every ancestry answer as static catalog
    documents — publish those through a
    :class:`~repro.cluster.client.ClusterClient` and the lineage
    replicates like any other catalog state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[bytes, LineageEntry] = {}
        self._latest: dict[str, bytes] = {}

    # -- registration ----------------------------------------------------------

    def register(
        self, fmt: IOFormat, parent: "IOFormat | bytes | None" = None
    ) -> int:
        """Register ``fmt``; returns its version number (1 = a root).

        ``parent`` may be an :class:`IOFormat`, a raw format id, or
        ``None`` (auto-link to the latest registered version of the same
        name).  Re-registering an id is a no-op returning the existing
        version.
        """
        parent_id = parent.format_id if isinstance(parent, IOFormat) else parent
        with self._lock:
            existing = self._entries.get(fmt.format_id)
            if existing is not None:
                return existing.version
            if parent_id is None:
                parent_id = self._latest.get(fmt.name)
            if parent_id == fmt.format_id:
                parent_id = None  # a format cannot be its own ancestor
            parent_entry = (
                self._entries.get(parent_id) if parent_id is not None else None
            )
            version = parent_entry.version + 1 if parent_entry is not None else 1
            self._entries[fmt.format_id] = LineageEntry(
                format=fmt,
                parent=parent_id if parent_entry is not None else None,
                version=version,
            )
            self._latest[fmt.name] = fmt.format_id
            return version

    # -- queries ---------------------------------------------------------------

    def format(self, format_id: bytes) -> IOFormat:
        """The format registered under ``format_id``."""
        with self._lock:
            entry = self._entries.get(format_id)
        if entry is None:
            raise DecodeError(f"lineage has no format {format_id.hex()}")
        return entry.format

    def latest(self, name: str) -> IOFormat | None:
        """The newest registered version of the named lineage, if any."""
        with self._lock:
            format_id = self._latest.get(name)
            entry = self._entries.get(format_id) if format_id else None
        return entry.format if entry is not None else None

    def ancestry(self, format_id: bytes) -> list[bytes]:
        """The ancestry chain, newest first, starting at ``format_id``."""
        chain: list[bytes] = []
        with self._lock:
            cursor: bytes | None = format_id
            while cursor is not None and cursor not in chain:
                entry = self._entries.get(cursor)
                if entry is None:
                    break
                chain.append(cursor)
                cursor = entry.parent
        if not chain:
            raise DecodeError(f"lineage has no format {format_id.hex()}")
        return chain

    def known_ids(self) -> list[bytes]:
        """Every registered format id."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- wire documents (PROTOCOL §16) -----------------------------------------

    def describe(self, format_id: bytes) -> dict:
        """The JSON-able ancestry document for ``GET /lineage/<id>``."""
        chain = self.ancestry(format_id)
        with self._lock:
            entries = [self._entries[fid] for fid in chain]
        head = entries[0]
        return {
            "format": format_id.hex(),
            "name": head.format.name,
            "arch": head.format.arch.name,
            "version": head.version,
            "record_length": head.format.record_length,
            "fields": head.format.field_names(),
            "parent": head.parent.hex() if head.parent else None,
            "ancestors": [
                {
                    "format": fid.hex(),
                    "name": entry.format.name,
                    "version": entry.version,
                }
                for fid, entry in zip(chain[1:], entries[1:])
            ],
        }

    def compatibility(self, wire_id: bytes, native_id: bytes) -> dict:
        """The JSON-able answer for ``GET /lineage/<wire>/compat/<native>``.

        The BSML-style binding check: ``relation`` is the
        :class:`Compatibility` value, with ``compatible`` / ``identity``
        / ``projection_needed`` spelled out so clients need no enum.
        """
        relation = compare_formats(self.format(wire_id), self.format(native_id))
        return {
            "wire": wire_id.hex(),
            "native": native_id.hex(),
            "relation": relation.value,
            "compatible": relation.compatible,
            "identity": relation is Compatibility.IDENTITY,
            "projection_needed": relation.projection_needed,
        }

    def documents(self) -> dict[str, str]:
        """Every ancestry answer as ``{path: json}`` static documents.

        Publishing these through the sharded metadata plane replicates
        lineage exactly like schema documents — replicas then answer
        ``GET /lineage/<id>`` from the replicated static document, no
        local registry required.
        """
        with self._lock:
            ids = list(self._entries)
        return {
            f"/lineage/{fid.hex()}": json.dumps(
                self.describe(fid), sort_keys=True
            )
            for fid in ids
        }
