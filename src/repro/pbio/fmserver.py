"""An in-process format server: format id → format metadata.

PBIO deployments ran a "format server" daemon that handed out format
metadata keyed by format id, so receivers could resolve records whose
formats they had never seen without an in-band handshake.  Our format
ids are content-addressed (see
:attr:`~repro.pbio.format.IOFormat.format_id`), which removes the id
*allocation* role, leaving resolution: this class is a thread-safe id →
metadata registry that any number of contexts may share.

Network-remote resolution uses the same object behind the metadata
server (:mod:`repro.metaserver`); in-band resolution over a connection
uses the format-request message of the channel protocol instead.
"""

from __future__ import annotations

import threading

from repro.errors import DecodeError
from repro.pbio.format import IOFormat
from repro.pbio.lru import BoundedLRU

#: Default bound on parsed-format cache entries.  The raw metadata map
#: stays unbounded (it is the source of truth); only parsed
#: :class:`IOFormat` objects — each carrying compiled plans — are
#: evictable, so cold formats cost bytes, not compiled code.
DEFAULT_DECODE_CAPACITY = 1024


class FormatServer:
    """Thread-safe registry mapping format ids to wire metadata.

    The parsed-format cache is a bounded LRU (``cache="fmserver"`` in
    the ``pbio_converter_cache_*`` metric series): a long-lived server
    fielding thousands of format versions keeps hot parses cached and
    lets cold ones fall off instead of leaking them forever.
    """

    def __init__(self, *, decode_capacity: int = DEFAULT_DECODE_CAPACITY) -> None:
        self._metadata: dict[bytes, bytes] = {}
        self._decoded: BoundedLRU = BoundedLRU(decode_capacity, name="fmserver")
        self._lock = threading.Lock()

    def register(self, fmt: IOFormat) -> bytes:
        """Register ``fmt`` (and its nested dependencies); returns its id.

        Registration is idempotent: content-addressed ids make re-registering
        the same format a no-op.
        """
        metadata = fmt.to_wire_metadata()
        with self._lock:
            self._metadata[fmt.format_id] = metadata
            for nested in fmt.nested_formats():
                self._metadata[nested.format_id] = nested.to_wire_metadata()
        # Invalidation outside the metadata lock: the LRU has its own.
        self._decoded.pop(fmt.format_id)
        for nested in fmt.nested_formats():
            self._decoded.pop(nested.format_id)
        return fmt.format_id

    def resolve(self, format_id: bytes) -> IOFormat:
        """Return the format registered under ``format_id``.

        The decode of the wire metadata is cached: a server fielding many
        resolutions of one hot format parses it once, not per call.  The
        cache entry is invalidated when the id is re-registered.

        Raises :class:`~repro.errors.DecodeError` if the id is unknown —
        callers decide whether to fall back to in-band resolution.
        """
        fmt = self._decoded.get(format_id)
        if fmt is not None:
            return fmt
        with self._lock:
            metadata = self._metadata.get(format_id)
        if metadata is None:
            raise DecodeError(f"format server has no format {format_id.hex()}")
        fmt = IOFormat.from_wire_metadata(metadata)
        self._decoded.put(format_id, fmt)
        return fmt

    def resolve_metadata(self, format_id: bytes) -> bytes:
        """Return the raw metadata bytes for ``format_id``."""
        with self._lock:
            metadata = self._metadata.get(format_id)
        if metadata is None:
            raise DecodeError(f"format server has no format {format_id.hex()}")
        return metadata

    def known_ids(self) -> list[bytes]:
        """Every format id currently registered."""
        with self._lock:
            return list(self._metadata)

    def decode_cache_stats(self) -> dict:
        """LRU counters of the parsed-format cache (PROTOCOL §16)."""
        return self._decoded.stats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metadata)
