"""Registered formats and their wire metadata representation.

An :class:`IOFormat` binds a set of :class:`~repro.pbio.field.IOField`
declarations to an :class:`~repro.arch.model.ArchitectureModel`, resolves
nested format references, and owns the two derived artifacts everything
else consumes:

- a *compiled* view of the fields (:class:`CompiledField`) with parsed
  types and resolved nesting, used by the encoder and the converter
  generator; and
- its *wire metadata*: a compact, architecture-neutral byte serialization
  of the format (name, architecture tag, record length, every field's
  name/type/size/offset, plus transitively nested formats).  This is what
  travels once per (connection, format) so receivers can interpret NDR
  payloads, and it is what the content-addressed 8-byte format id is
  derived from.

The wire metadata block layout (all multi-byte integers big-endian):

.. code-block:: text

    "PBF1"                      magic, 4 bytes
    u16  format_count           dependencies first, root format last
    per format:
      str  name                 (u16 length + UTF-8 bytes)
      str  arch_tag
      u32  record_length
      u16  field_count
      per field:
        str  name
        str  type
        u32  size
        u32  offset
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from functools import cached_property

from repro.arch.layout import StructLayout
from repro.arch.model import ArchitectureModel, TypeKind, make_types
from repro.arch.registry import all_architectures
from repro.errors import DecodeError, FormatRegistrationError
from repro.pbio.field import IOField
from repro.pbio.types import ParsedFieldType, kind_of

_MAGIC = b"PBF1"


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class CompiledField:
    """A fully resolved field: parsed type plus nesting resolution.

    ``kind`` is set for primitive fields; ``nested`` for fields whose
    base type names another format.  ``var_alignment`` is the alignment
    applied to this field's out-of-line data in the variable section.
    """

    name: str
    type: ParsedFieldType
    kind: TypeKind | None
    nested: "IOFormat | None"
    size: int
    offset: int

    @property
    def is_string(self) -> bool:
        return self.kind == TypeKind.POINTER

    @property
    def var_alignment(self) -> int:
        if self.is_string:
            return 4
        return min(self.size, 8) if self.size else 4

    @property
    def static_count(self) -> int:
        return self.type.count or 1


class IOFormat:
    """A registered message format bound to one architecture.

    Construct through :meth:`IOContext.register_format
    <repro.pbio.context.IOContext.register_format>` or
    :func:`format_from_layout`, which handle catalog wiring; direct
    construction requires passing any nested formats in ``catalog``.
    """

    def __init__(
        self,
        name: str,
        fields: list[IOField] | tuple[IOField, ...],
        arch: ArchitectureModel,
        *,
        record_length: int | None = None,
        catalog: dict[str, "IOFormat"] | None = None,
    ) -> None:
        if not name:
            raise FormatRegistrationError("format name may not be empty")
        if not fields:
            raise FormatRegistrationError(f"format {name!r} declares no fields")
        self.name = name
        self.arch = arch
        self.fields: tuple[IOField, ...] = tuple(fields)
        self._compiled = self._compile(catalog or {})
        self.record_length = (
            record_length if record_length is not None else self._infer_record_length()
        )
        self._validate()

    # -- compilation -------------------------------------------------------

    def _compile(self, catalog: dict[str, "IOFormat"]) -> tuple[CompiledField, ...]:
        compiled: list[CompiledField] = []
        seen: set[str] = set()
        for field in self.fields:
            if field.name in seen:
                raise FormatRegistrationError(
                    f"format {self.name!r}: duplicate field {field.name!r}"
                )
            seen.add(field.name)
            parsed = field.parsed_type
            if parsed.is_primitive:
                compiled.append(
                    CompiledField(
                        name=field.name,
                        type=parsed,
                        kind=kind_of(parsed.base),
                        nested=None,
                        size=field.size,
                        offset=field.offset,
                    )
                )
            else:
                nested = catalog.get(parsed.base)
                if nested is None:
                    raise FormatRegistrationError(
                        f"format {self.name!r}: field {field.name!r} references "
                        f"unregistered format {parsed.base!r}"
                    )
                if nested.arch != self.arch:
                    raise FormatRegistrationError(
                        f"format {self.name!r}: nested format {parsed.base!r} was "
                        f"registered for {nested.arch.name}, not {self.arch.name}"
                    )
                compiled.append(
                    CompiledField(
                        name=field.name,
                        type=parsed,
                        kind=None,
                        nested=nested,
                        size=field.size,
                        offset=field.offset,
                    )
                )
        return tuple(compiled)

    def _infer_record_length(self) -> int:
        end = 0
        max_alignment = 1
        for field in self._compiled:
            end = max(end, field.offset + field.size * field.static_count)
            max_alignment = max(max_alignment, min(field.size, 8))
        return _align_up(end, max_alignment)

    def _validate(self) -> None:
        pointer_size = self.arch.pointer_size
        names = {field.name for field in self._compiled}
        for field in self._compiled:
            parsed = field.type
            if parsed.is_dynamic_array:
                if parsed.length_field not in names:
                    raise FormatRegistrationError(
                        f"format {self.name!r}: field {field.name!r} is sized by "
                        f"{parsed.length_field!r}, which is not a field"
                    )
                length = self.field(parsed.length_field)
                if length.kind not in (TypeKind.SIGNED_INT, TypeKind.UNSIGNED_INT):
                    raise FormatRegistrationError(
                        f"format {self.name!r}: length field "
                        f"{parsed.length_field!r} must be an integer"
                    )
                if not length.type.is_scalar:
                    raise FormatRegistrationError(
                        f"format {self.name!r}: length field "
                        f"{parsed.length_field!r} must be a scalar"
                    )
                if field.nested is not None or field.is_string:
                    raise FormatRegistrationError(
                        f"format {self.name!r}: dynamic arrays of "
                        f"{'strings' if field.is_string else 'nested formats'} "
                        f"are not supported (field {field.name!r})"
                    )
            if field.is_string or parsed.is_dynamic_array:
                # The in-record slot is a pointer on the declaring machine.
                declared = field.size
                if parsed.is_dynamic_array:
                    # For dynamic arrays the IOField carries the *element*
                    # size (paper Figure 8); the slot itself is a pointer.
                    continue
                if declared != pointer_size:
                    raise FormatRegistrationError(
                        f"format {self.name!r}: string field {field.name!r} must "
                        f"have pointer size {pointer_size}, got {declared}"
                    )
            end = field.offset + self._slot_size(field) * (
                field.static_count if not parsed.is_dynamic_array else 1
            )
            if end > self.record_length:
                raise FormatRegistrationError(
                    f"format {self.name!r}: field {field.name!r} extends to byte "
                    f"{end}, beyond the record length {self.record_length}"
                )

    def _slot_size(self, field: CompiledField) -> int:
        """Size of the in-record slot for one element of ``field``."""
        if field.type.is_dynamic_array or field.is_string:
            return self.arch.pointer_size
        return field.size

    # -- lookups -----------------------------------------------------------

    @property
    def compiled_fields(self) -> tuple[CompiledField, ...]:
        return self._compiled

    def field(self, name: str) -> CompiledField:
        """Return the compiled field named ``name``."""
        for field in self._compiled:
            if field.name == name:
                return field
        raise FormatRegistrationError(f"format {self.name!r} has no field {name!r}")

    def field_names(self) -> list[str]:
        """Field names in declaration order."""
        return [field.name for field in self._compiled]

    @cached_property
    def length_field_names(self) -> frozenset[str]:
        """Names of fields that serve as dynamic-array length counters."""
        return frozenset(
            field.type.length_field
            for field in self._compiled
            if field.type.is_dynamic_array
        )

    @cached_property
    def has_variable_data(self) -> bool:
        """True if any field (transitively) writes to the variable section."""
        return any(
            field.is_string
            or field.type.is_dynamic_array
            or (field.nested is not None and field.nested.has_variable_data)
            for field in self._compiled
        )

    def nested_formats(self) -> list["IOFormat"]:
        """Transitive nested dependencies, dependencies first, no dupes."""
        ordered: list[IOFormat] = []
        seen: set[str] = set()

        def visit(fmt: "IOFormat") -> None:
            for field in fmt.compiled_fields:
                if field.nested is not None and field.nested.name not in seen:
                    visit(field.nested)
                    seen.add(field.nested.name)
                    ordered.append(field.nested)

        visit(self)
        return ordered

    # -- wire metadata -------------------------------------------------------

    @cached_property
    def format_id(self) -> bytes:
        """8-byte content-addressed identifier of this format.

        Two formats with identical metadata (including architecture)
        produce the same id on any machine, so no central id authority
        is needed; the format server and the in-band handshake both key
        on this value.
        """
        return hashlib.sha1(self._own_block()).digest()[:8]

    def _own_block(self) -> bytes:
        out = bytearray()
        _put_str(out, self.name)
        _put_str(out, self.arch.tag())
        out += struct.pack(">I", self.record_length)
        out += struct.pack(">H", len(self.fields))
        for field in self.fields:
            _put_str(out, field.name)
            _put_str(out, field.type)
            out += struct.pack(">II", field.size, field.offset)
        return bytes(out)

    def to_wire_metadata(self) -> bytes:
        """Serialize this format and its nested dependencies."""
        blocks = [fmt._own_block() for fmt in self.nested_formats()]
        blocks.append(self._own_block())
        return _MAGIC + struct.pack(">H", len(blocks)) + b"".join(blocks)

    @classmethod
    def from_wire_metadata(cls, data: bytes) -> "IOFormat":
        """Reconstruct a format (and nested dependencies) from metadata.

        Raises :class:`~repro.errors.DecodeError` on malformed input.
        """
        if data[:4] != _MAGIC:
            raise DecodeError("format metadata lacks PBF1 magic")
        try:
            (count,) = struct.unpack_from(">H", data, 4)
            cursor = 6
            catalog: dict[str, IOFormat] = {}
            last: IOFormat | None = None
            for _ in range(count):
                name, cursor = _get_str(data, cursor)
                tag, cursor = _get_str(data, cursor)
                (record_length,) = struct.unpack_from(">I", data, cursor)
                cursor += 4
                (field_count,) = struct.unpack_from(">H", data, cursor)
                cursor += 2
                fields: list[IOField] = []
                for _ in range(field_count):
                    field_name, cursor = _get_str(data, cursor)
                    field_type, cursor = _get_str(data, cursor)
                    size, offset = struct.unpack_from(">II", data, cursor)
                    cursor += 8
                    fields.append(IOField(field_name, field_type, size, offset))
                last = cls(
                    name,
                    fields,
                    arch_from_tag(tag),
                    record_length=record_length,
                    catalog=catalog,
                )
                catalog[name] = last
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise DecodeError(f"truncated or corrupt format metadata: {exc}") from exc
        if last is None:
            raise DecodeError("format metadata contains no formats")
        return last

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOFormat):
            return NotImplemented
        return self.format_id == other.format_id

    def __hash__(self) -> int:
        return hash(self.format_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IOFormat {self.name!r} on {self.arch.name}: "
            f"{len(self.fields)} fields, {self.record_length} bytes>"
        )


def _put_str(out: bytearray, text: str) -> None:
    encoded = text.encode("utf-8")
    out += struct.pack(">H", len(encoded))
    out += encoded


def _get_str(data: bytes, cursor: int) -> tuple[str, int]:
    (length,) = struct.unpack_from(">H", data, cursor)
    cursor += 2
    raw = data[cursor : cursor + length]
    if len(raw) != length:
        raise DecodeError("truncated string in format metadata")
    return raw.decode("utf-8"), cursor + length


def arch_from_tag(tag: str) -> ArchitectureModel:
    """Reconstruct an architecture model from its wire tag.

    Known architectures resolve through the registry; unknown ones are
    rebuilt from the tag's encoded byte order, pointer width and integer
    sizes — which is all decoding needs, because field offsets travel
    explicitly in the metadata.
    """
    parts = tag.split(":")
    if len(parts) != 4:
        raise DecodeError(f"malformed architecture tag {tag!r}")
    name, order, pointer, sizes = parts
    for model in all_architectures():
        if model.tag() == tag:
            return model
    if order not in ("le", "be") or not pointer.startswith("p"):
        raise DecodeError(f"malformed architecture tag {tag!r}")
    if not pointer[1:].isdigit():
        raise DecodeError(f"malformed architecture tag {tag!r}")
    if not sizes.startswith("i") or len(sizes) != 5 or not sizes[1:].isdigit():
        raise DecodeError(f"malformed architecture tag {tag!r}")
    return ArchitectureModel(
        name=name,
        byte_order="little" if order == "le" else "big",
        pointer_size=int(pointer[1:]),
        types=make_types(
            short=int(sizes[1]),
            int_=int(sizes[2]),
            long=int(sizes[3]),
            long_long=int(sizes[4]),
        ),
    )


def format_from_layout(
    name: str,
    layout: StructLayout,
    field_types: dict[str, str],
    *,
    element_sizes: dict[str, int] | None = None,
    catalog: dict[str, IOFormat] | None = None,
) -> IOFormat:
    """Build an :class:`IOFormat` from a computed struct layout.

    ``field_types`` maps field names to PBIO type strings; sizes and
    offsets come from the layout (the run-time analogue of the paper's
    ``sizeof``/``IOOffset`` macros).  Dynamic-array fields occupy a
    pointer slot, so their *element* size cannot be read off the layout;
    supply it in ``element_sizes`` (keyed by field name), exactly as the
    paper's Figure 8 passes ``sizeof(unsigned long)`` for ``eta``.
    """
    from repro.pbio.types import parse_field_type

    element_sizes = element_sizes or {}
    fields: list[IOField] = []
    for slot in layout.slots:
        try:
            type_string = field_types[slot.name]
        except KeyError:
            raise FormatRegistrationError(
                f"format {name!r}: no type given for layout field {slot.name!r}"
            ) from None
        parsed = parse_field_type(type_string)
        if parsed.is_dynamic_array:
            try:
                size = element_sizes[slot.name]
            except KeyError:
                raise FormatRegistrationError(
                    f"format {name!r}: dynamic array field {slot.name!r} needs "
                    f"an entry in element_sizes (the pointer slot does not "
                    f"reveal the element size)"
                ) from None
        else:
            size = slot.element_size
        fields.append(IOField(slot.name, type_string, size, slot.offset))
    return IOFormat(
        name,
        fields,
        layout.arch,
        record_length=layout.size,
        catalog=catalog,
    )
