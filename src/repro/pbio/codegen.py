"""Run-time generation of specialized conversion routines.

PBIO's performance story rests on converting incoming records with
"custom routines created on-the-fly through dynamic code generation",
specialized to the exact (wire format, native format) pair.  This module
is the Python analogue: given a wire format's metadata, it *writes Python
source* for a converter function — every offset, struct code and field
name baked in as a literal — compiles it with :func:`compile`/``exec``,
and returns the resulting function.

The generated converter makes exactly one ``struct.unpack_from`` call for
the entire fixed region of the record (pad bytes standing in for
compiler padding and skipped wire fields), then fixes up strings and
dynamic arrays from the variable section.  An interpreted converter that
walks the field list per record is provided alongside for the ablation
benchmark (experiment A1): the generated/interpreted gap is this
module's reason to exist.

Example of generated source for the paper's Structure A on sparc_32::

    def convert(payload, unpack_from=unpack_from):
        v = unpack_from('>IIiIII4xLL', payload, 0)
        return {
            'cntrId': _str(payload, v[0]),
            'arln': _str(payload, v[1]),
            'fltNum': v[2],
            ...
        }
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.errors import ConversionError
from repro.pbio.encode import EncodePlan, _FixedLeaf, get_encode_plan
from repro.pbio.format import IOFormat

Converter = Callable[[bytes], dict]


def _read_string(payload, offset: int) -> str | None:
    """Shared helper injected into generated code: NUL-terminated string.

    Accepts any buffer (``bytes``, ``bytearray``, ``memoryview``).
    ``memoryview`` has no ``index``, so the terminator scan copies small
    windows (128 bytes) instead of the whole payload — strings stay
    cheap on the zero-copy receive path.
    """
    if offset == 0:
        return None
    try:
        end = payload.index(0, offset)
    except AttributeError:
        position = offset
        total = len(payload)
        while True:
            window_end = min(position + 128, total)
            found = bytes(payload[position:window_end]).find(0)
            if found >= 0:
                end = position + found
                break
            if window_end == total:
                raise ValueError("unterminated string in payload") from None
            position = window_end
    return str(payload[offset:end], "utf-8")


def generate_converter_source(wire_format: IOFormat, function_name: str = "convert") -> str:
    """Produce the Python source of a converter for ``wire_format``.

    Exposed separately from :func:`make_generated_converter` so tests and
    documentation can inspect the generated code.
    """
    plan = get_encode_plan(wire_format)
    order = "<" if wire_format.arch.is_little_endian else ">"
    leaf_index = {id(leaf): position for position, leaf in enumerate(plan.leaves)}

    prologue: list[str] = []
    # Dynamic arrays need their data unpacked with a run-time count; emit
    # one statement per array before the dict literal.
    array_names: dict[tuple[str, ...], str] = {}
    counts = _count_leaf_positions(plan)
    for item_number, item in enumerate(plan.var_items):
        if item.kind != "array":
            continue
        ptr_pos = _pointer_position(plan, item.path, leaf_index)
        count_pos = counts[item.path]
        var_name = f"a{item_number}"
        array_names[item.path] = var_name
        prologue.append(
            f"    {var_name} = ("
            f"list(unpack_from({order!r} + str(v[{count_pos}]) + "
            f"{item.element_code!r}, payload, v[{ptr_pos}])) "
            f"if v[{ptr_pos}] else [])"
        )

    body = _emit_dict(plan, wire_format, (), leaf_index, array_names, indent=2)
    lines = [
        f"def {function_name}(payload, unpack_from=unpack_from, _str=_str):",
        f"    v = unpack_from({plan.fixed_struct.format!r}, payload, 0)",
        *prologue,
        f"    return {body}",
        "",
    ]
    return "\n".join(lines)


def make_generated_converter(wire_format: IOFormat) -> Converter:
    """Compile and return a converter function for ``wire_format``."""
    source = generate_converter_source(wire_format)
    namespace = {"unpack_from": struct.unpack_from, "_str": _read_string}
    try:
        code = compile(source, f"<pbio converter for {wire_format.name}>", "exec")
        exec(code, namespace)  # noqa: S102 - this is the DCG mechanism itself
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise ConversionError(
            f"generated converter for {wire_format.name!r} failed to "
            f"compile: {exc}\n{source}"
        ) from exc
    return namespace["convert"]


# -- generation internals -----------------------------------------------------


def _count_leaf_positions(plan: EncodePlan) -> dict[tuple[str, ...], int]:
    """Map each dynamic array path to its count leaf's unpack position."""
    result: dict[tuple[str, ...], int] = {}
    position = 0
    for leaf in plan.leaves:
        if leaf.role == "count":
            for measured_path in leaf.measures:
                result[measured_path] = position
        position += _leaf_width(leaf)
    # Re-walk to translate flat positions: widths accounted below.
    return result


def _leaf_width(leaf: _FixedLeaf) -> int:
    """How many values this leaf contributes to the unpacked tuple."""
    if leaf.role == "array":
        return leaf.count
    return 1


def _leaf_positions(plan: EncodePlan) -> dict[int, int]:
    """Map id(leaf) to its first position in the unpacked tuple."""
    positions: dict[int, int] = {}
    cursor = 0
    for leaf in plan.leaves:
        positions[id(leaf)] = cursor
        cursor += _leaf_width(leaf)
    return positions


def _pointer_position(
    plan: EncodePlan, path: tuple[str, ...], leaf_index: dict[int, int]
) -> int:
    positions = _leaf_positions(plan)
    for leaf in plan.leaves:
        if leaf.path == path and leaf.role in ("string_ptr", "dyn_ptr"):
            return positions[id(leaf)]
    raise ConversionError(f"no pointer leaf for path {path}")


def _wire_value_expr(
    field,
    path: tuple[str, ...],
    by_path: dict,
    positions: dict[int, int],
    array_names: dict[tuple[str, ...], str],
) -> str:
    """The expression extracting a non-nested wire field's value."""
    if field.type.is_dynamic_array:
        return array_names[path]
    if field.is_string:
        if field.static_count == 1:
            leaf = by_path[path]
            return f"_str(payload, v[{positions[id(leaf)]}])"
        parts = []
        for i in range(field.static_count):
            leaf = by_path[path + (str(i),)]
            parts.append(f"_str(payload, v[{positions[id(leaf)]}])")
        return "[" + ", ".join(parts) + "]"
    leaf = by_path[path]
    start = positions[id(leaf)]
    if leaf.role == "chararray":
        return f"v[{start}].split(b'\\x00', 1)[0].decode('utf-8')"
    if leaf.role == "array":
        return f"list(v[{start}:{start + leaf.count}])"
    if leaf.role == "char":
        return f"v[{start}].decode('latin-1')"
    if leaf.role == "bool":
        return f"bool(v[{start}])"
    return f"v[{start}]"  # scalar or count


def _emit_dict(
    plan: EncodePlan,
    fmt: IOFormat,
    prefix: tuple[str, ...],
    leaf_index: dict[int, int],
    array_names: dict[tuple[str, ...], str],
    indent: int,
) -> str:
    positions = _leaf_positions(plan)
    by_path: dict[tuple[str, ...], _FixedLeaf] = {leaf.path: leaf for leaf in plan.leaves}
    pad = " " * (indent * 4)
    inner = " " * ((indent + 1) * 4)
    entries: list[str] = []
    for field in fmt.compiled_fields:
        path = prefix + (field.name,)
        if field.nested is not None:
            if field.static_count == 1:
                value = _emit_dict(
                    plan, field.nested, path, leaf_index, array_names, indent + 1
                )
            else:
                elements = [
                    _emit_dict(
                        plan, field.nested, path + (str(i),), leaf_index,
                        array_names, indent + 1,
                    )
                    for i in range(field.static_count)
                ]
                value = "[" + ", ".join(elements) + "]"
        else:
            value = _wire_value_expr(field, path, by_path, positions, array_names)
        entries.append(f"{inner}{field.name!r}: {value},")
    return "{\n" + "\n".join(entries) + f"\n{pad}}}"


# -- fused decode+project (instance-based lazy binding) ------------------------
#
# When the wire format and the receiver's native format differ, the
# two-step path decodes a wire-shaped dict and then projects it onto the
# native format — building and discarding an intermediate dict per
# record.  The fused converter bakes the projection into the converter
# itself: it walks the *target* format's fields, pulling matched values
# straight out of the unpacked wire tuple, inlining defaults as literals
# and never materializing the wire-shaped intermediate.  Dropped wire
# fields cost nothing — their unpack positions are simply never read —
# and dynamic-array prologue statements are emitted only for arrays the
# target actually keeps.


def generate_fused_converter_source(
    wire_format: IOFormat,
    target_format: IOFormat,
    function_name: str = "convert",
) -> str:
    """Source of a converter decoding wire records into the target shape.

    Value-identical to ``project(convert(payload))`` with the separate
    generated converter and compiled projection, minus the intermediate
    wire-shaped dict.  Exposed separately so tests and ``pbdump`` can
    inspect the generated code.
    """
    plan = get_encode_plan(wire_format)
    order = "<" if wire_format.arch.is_little_endian else ">"
    counts = _count_leaf_positions(plan)

    array_names: dict[tuple[str, ...], str] = {}
    for item_number, item in enumerate(plan.var_items):
        if item.kind == "array":
            array_names[item.path] = f"a{item_number}"

    used_arrays: set[tuple[str, ...]] = set()
    body = _emit_fused(
        plan, wire_format, target_format, (), array_names, used_arrays, indent=2
    )

    prologue: list[str] = []
    for item in plan.var_items:
        if item.kind != "array" or item.path not in used_arrays:
            continue
        leaf_index = {id(leaf): pos for pos, leaf in enumerate(plan.leaves)}
        ptr_pos = _pointer_position(plan, item.path, leaf_index)
        count_pos = counts[item.path]
        var_name = array_names[item.path]
        prologue.append(
            f"    {var_name} = ("
            f"list(unpack_from({order!r} + str(v[{count_pos}]) + "
            f"{item.element_code!r}, payload, v[{ptr_pos}])) "
            f"if v[{ptr_pos}] else [])"
        )

    lines = [
        f"def {function_name}(payload, unpack_from=unpack_from, _str=_str):",
        f"    v = unpack_from({plan.fixed_struct.format!r}, payload, 0)",
        *prologue,
        f"    return {body}",
        "",
    ]
    return "\n".join(lines)


def _emit_fused(
    plan: EncodePlan,
    wire_fmt: IOFormat,
    target_fmt: IOFormat,
    prefix: tuple[str, ...],
    array_names: dict[tuple[str, ...], str],
    used_arrays: set[tuple[str, ...]],
    indent: int,
) -> str:
    """Emit the target-shaped dict display sourced from the wire plan.

    Mirrors :func:`repro.pbio.evolution._plan_steps` decision for
    decision — the fused converter must stay value-identical to
    decode-then-project.
    """
    from repro.pbio.evolution import default_value

    positions = _leaf_positions(plan)
    by_path = {leaf.path: leaf for leaf in plan.leaves}
    wire_fields = {field.name: field for field in wire_fmt.compiled_fields}
    pad = " " * (indent * 4)
    inner = " " * ((indent + 1) * 4)
    entries: list[str] = []
    for target_field in target_fmt.compiled_fields:
        path = prefix + (target_field.name,)
        wire_field = wire_fields.get(target_field.name)
        if wire_field is None:
            # Defaults are literals: list/dict displays build fresh
            # objects per record, so nothing aliases.
            value = repr(default_value(target_field))
        elif (
            target_field.nested is not None
            and wire_field.nested is not None
            and target_field.static_count == wire_field.static_count
        ):
            if target_field.static_count == 1:
                value = _emit_fused(
                    plan, wire_field.nested, target_field.nested, path,
                    array_names, used_arrays, indent + 1,
                )
            else:
                elements = [
                    _emit_fused(
                        plan, wire_field.nested, target_field.nested,
                        path + (str(i),), array_names, used_arrays, indent + 1,
                    )
                    for i in range(target_field.static_count)
                ]
                value = "[" + ", ".join(elements) + "]"
        elif target_field.nested is not None or wire_field.nested is not None:
            # Shape conflict: same drop-and-default rule as _plan_steps.
            value = repr(default_value(target_field))
        else:
            if wire_field.type.is_dynamic_array:
                used_arrays.add(path)
            value = _wire_value_expr(
                wire_field, path, by_path, positions, array_names
            )
        entries.append(f"{inner}{target_field.name!r}: {value},")
    return "{\n" + "\n".join(entries) + f"\n{pad}}}"


def make_fused_converter(
    wire_format: IOFormat, target_format: IOFormat
) -> Converter:
    """Compile the fused decode+project converter for the pair."""
    source = generate_fused_converter_source(wire_format, target_format)
    namespace = {"unpack_from": struct.unpack_from, "_str": _read_string}
    try:
        code = compile(
            source,
            f"<pbio fused converter {wire_format.name} -> {target_format.name}>",
            "exec",
        )
        exec(code, namespace)  # noqa: S102 - this is the DCG mechanism itself
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise ConversionError(
            f"fused converter {wire_format.name!r} -> {target_format.name!r} "
            f"failed to compile: {exc}\n{source}"
        ) from exc
    return namespace["convert"]


# -- generated encoder (sender-side DCG) ---------------------------------------
#
# PBIO's sender side is a memory copy; the closest Python analogue is a
# generated function that evaluates every field expression inline and
# packs the whole fixed region in one call.  Error parity with the
# plan-based encoder is preserved by falling back to it on unexpected
# exceptions: the plan re-runs the record and raises its precise
# EncodeError (or, should it somehow succeed, supplies the result).


def _char_byte(value) -> bytes:
    """Helper injected into generated encoders: one char to one byte."""
    if isinstance(value, str):
        return value.encode("utf-8")[:1] or b"\x00"
    if isinstance(value, int):
        return bytes([value])
    if isinstance(value, bytes):
        return value[:1] or b"\x00"
    raise ConversionError(f"cannot encode {value!r} as a char")


def _char_buffer(value, count: int) -> bytes:
    """Helper injected into generated encoders: fixed char buffers."""
    if isinstance(value, str):
        return value.encode("utf-8")[:count]
    if isinstance(value, bytes):
        return value[:count]
    raise ConversionError(f"cannot encode {value!r} as a char buffer")


def _path_expr(path: tuple[str, ...]) -> str:
    parts = []
    for part in path:
        if part.isdigit():
            parts.append(f"[{part}]")
        else:
            parts.append(f"[{part!r}]")
    return "record" + "".join(parts)


def _container_get_expr(prefix: tuple[str, ...], name: str) -> str:
    container = _path_expr(prefix) if prefix else "record"
    return f"{container}.get({name!r})"


def generate_encoder_source(
    fmt: IOFormat, function_name: str = "encode", *, into: bool = False
) -> str:
    """Produce Python source for a specialized encoder for ``fmt``.

    With ``into=True`` the generated function has the signature
    ``(record, buffer, offset)`` and writes the payload in place with
    ``pack_into`` — the sender-side zero-copy path — instead of
    returning freshly concatenated ``bytes``.
    """
    plan = get_encode_plan(fmt)
    order = "<" if fmt.arch.is_little_endian else ">"
    if into:
        signature = (
            f"def {function_name}(record, buffer, offset, "
            f"pack_into=pack_into, pack_arr=pack_arr, "
            f"_chr=_chr, _buf=_buf, len=len):"
        )
    else:
        signature = (
            f"def {function_name}(record, pack=pack, pack_arr=pack_arr, "
            f"_chr=_chr, _buf=_buf, len=len):"
        )
    lines = [
        signature,
        "    var = []",
        f"    cursor = {fmt.record_length}",
    ]
    # Variable section, in plan order (byte-exact parity with the plan).
    pointer_names: dict[tuple[str, ...], str] = {}
    for index, item in enumerate(plan.var_items):
        name = f"p{index}"
        pointer_names[item.path] = name
        value = _path_expr(item.path)
        if item.kind == "string":
            lines += [
                f"    s = {value}",
                f"    if s is None:",
                f"        {name} = 0",
                f"    else:",
                f"        d = s.encode('utf-8') + b'\\x00'",
                f"        pad = (-cursor) & 3",
                f"        if pad:",
                f"            var.append(b'\\x00' * pad); cursor += pad",
                f"        {name} = cursor; var.append(d); cursor += len(d)",
            ]
        else:
            mask = item.alignment - 1
            from repro.pbio.types import DTYPE_CHARS

            dtype_char = DTYPE_CHARS.get((item.element_kind, item.element_size))
            if dtype_char is not None:
                ndarray_case = (
                    f"_nd(a, {(order + dtype_char)!r}) if hasattr(a, 'dtype') else "
                )
            else:
                ndarray_case = ""
            lines += [
                f"    a = {value}",
                f"    if a is None or len(a) == 0:",
                f"        {name} = 0",
                f"    else:",
                f"        pad = (-cursor) & {mask}",
                f"        if pad:",
                f"            var.append(b'\\x00' * pad); cursor += pad",
                f"        d = {ndarray_case}pack_arr({order!r} + str(len(a)) + "
                f"{item.element_code!r}, *a)",
                f"        {name} = cursor; var.append(d); cursor += len(d)",
            ]
    # Count values (+ consistency checks matching the plan's messages).
    count_names: dict[tuple[str, ...], str] = {}
    for index, leaf in enumerate(plan.leaves):
        if leaf.role != "count":
            continue
        name = f"n{index}"
        count_names[leaf.path] = name
        dotted = ".".join(leaf.path)
        first = _path_expr(leaf.measures[0])
        lines.append(f"    _a = {first}")
        lines.append(f"    {name} = 0 if _a is None else len(_a)")
        for other in leaf.measures[1:]:
            lines += [
                f"    _b = {_path_expr(other)}",
                f"    if (0 if _b is None else len(_b)) != {name}:",
                f"        raise EncodeError(\"format {fmt.name!r}: arrays "
                f"sharing count field '{dotted}' have differing lengths\")",
            ]
        lines += [
            f"    _e = {_container_get_expr(leaf.path[:-1], leaf.path[-1])}",
            f"    if _e is not None and _e != {name}:",
            f"        raise EncodeError(\"format {fmt.name!r}: count field "
            f"'{dotted}' is %r but the array has %d elements\" % (_e, {name}))",
        ]
    # Static array length checks + pack arguments.
    args: list[str] = []
    for index, leaf in enumerate(plan.leaves):
        value = _path_expr(leaf.path)
        if leaf.role in ("string_ptr", "dyn_ptr"):
            args.append(pointer_names[leaf.path])
        elif leaf.role == "count":
            args.append(count_names[leaf.path])
        elif leaf.role == "char":
            args.append(f"_chr({value})")
        elif leaf.role == "bool":
            args.append(f"(1 if {value} else 0)")
        elif leaf.role == "chararray":
            args.append(f"_buf({value}, {leaf.count})")
        elif leaf.role == "array":
            name = f"arr{index}"
            dotted = ".".join(leaf.path)
            lines += [
                f"    {name} = {value}",
                f"    if len({name}) != {leaf.count}:",
                f"        raise EncodeError(\"format {fmt.name!r}: field "
                f"'{dotted}' expects exactly {leaf.count} elements, "
                f"got %d\" % len({name}))",
            ]
            args.append(f"*{name}")
        else:
            args.append(value)
    joined = ",\n        ".join(args)
    if into:
        lines += [
            "    if len(buffer) - offset < cursor:",
            f"        _e = EncodeError(\"format {fmt.name!r}: buffer has "
            f"%d bytes free, payload needs %d\""
            f" % (len(buffer) - offset, cursor))",
            "        _e.needed = cursor",
            "        raise _e",
            f"    pack_into(\n        buffer, offset,\n        {joined},\n    )",
            f"    pos = offset + {fmt.record_length}",
            # Write var parts through a memoryview: bytearray slice
            # assignment materializes a temporary copy of the source,
            # a view assignment is a straight memcpy.
            "    mv = memoryview(buffer)",
            "    for d in var:",
            "        _n = len(d)",
            "        mv[pos:pos + _n] = d",
            "        pos += _n",
            "    return cursor",
        ]
    else:
        lines.append(f"    return pack(\n        {joined},\n    ) + b''.join(var)")
    return "\n".join(lines) + "\n"


def make_generated_encoder(fmt: IOFormat):
    """Compile a specialized encoder; falls back to the plan on errors."""
    plan = get_encode_plan(fmt)
    source = generate_encoder_source(fmt)
    from repro.errors import EncodeError
    from repro.pbio.encode import ndarray_wire_bytes

    namespace = {
        "pack": plan.fixed_struct.pack,
        "pack_arr": struct.pack,
        "_chr": _char_byte,
        "_buf": _char_buffer,
        "_nd": ndarray_wire_bytes,
        "EncodeError": EncodeError,
    }
    try:
        exec(compile(source, f"<pbio encoder for {fmt.name}>", "exec"), namespace)
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise ConversionError(
            f"generated encoder for {fmt.name!r} failed to compile: "
            f"{exc}\n{source}"
        ) from exc
    fast = namespace["encode"]
    encode_error = namespace["EncodeError"]

    def encode(record: dict) -> bytes:
        try:
            return fast(record)
        except encode_error:
            raise
        except Exception:
            # Re-run through the plan for a precise diagnostic (or, in
            # the unexpected case the plan succeeds, its result).
            return plan.encode(record)

    return encode


def make_generated_encoder_into(fmt: IOFormat):
    """Compile the in-place encoder; falls back to the plan on errors.

    Same contract as :meth:`EncodePlan.encode_into` (byte-identical
    output, capacity :class:`EncodeError` with ``.needed`` raised before
    anything is written), but with every field expression inlined so the
    steady-state sender pays no plan-walking allocations.
    """
    plan = get_encode_plan(fmt)
    source = generate_encoder_source(fmt, "encode_into", into=True)
    from repro.errors import EncodeError
    from repro.pbio.encode import ndarray_wire_bytes

    namespace = {
        "pack_into": plan.fixed_struct.pack_into,
        "pack_arr": struct.pack,
        "_chr": _char_byte,
        "_buf": _char_buffer,
        "_nd": ndarray_wire_bytes,
        "EncodeError": EncodeError,
    }
    try:
        exec(
            compile(source, f"<pbio encode_into for {fmt.name}>", "exec"),
            namespace,
        )
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise ConversionError(
            f"generated encode_into for {fmt.name!r} failed to compile: "
            f"{exc}\n{source}"
        ) from exc
    fast = namespace["encode_into"]
    encode_error = namespace["EncodeError"]

    def encode_into(record: dict, buffer, offset: int = 0) -> int:
        try:
            return fast(record, buffer, offset)
        except encode_error:
            raise
        except Exception:
            # Re-run through the plan for a precise diagnostic (or, in
            # the unexpected case the plan succeeds, its result).
            return plan.encode_into(record, buffer, offset)

    return encode_into


# -- interpreted converter (ablation baseline) --------------------------------


def make_interpreted_converter(wire_format: IOFormat) -> Converter:
    """A converter that walks the format metadata for every record.

    Semantically identical to the generated converter; exists to measure
    what dynamic code generation buys (experiment A1).  It still uses the
    precompiled plan's leaf list, but performs per-leaf unpacking,
    dictionary assembly and dispatch at run time for every record.
    """
    plan = get_encode_plan(wire_format)
    order = "<" if wire_format.arch.is_little_endian else ">"
    positions = _leaf_positions(plan)
    unpack_from = struct.unpack_from

    def convert(payload: bytes) -> dict:
        flat: dict[tuple[str, ...], object] = {}
        for leaf in plan.leaves:
            offset = leaf.offset
            if leaf.role in ("scalar", "count", "string_ptr", "dyn_ptr"):
                (value,) = unpack_from(order + leaf.code, payload, offset)
            elif leaf.role == "char":
                (raw,) = unpack_from(order + leaf.code, payload, offset)
                value = raw.decode("latin-1")
            elif leaf.role == "bool":
                (raw,) = unpack_from(order + leaf.code, payload, offset)
                value = bool(raw)
            elif leaf.role == "chararray":
                (raw,) = unpack_from(order + leaf.code, payload, offset)
                value = raw.split(b"\x00", 1)[0].decode("utf-8")
            else:  # static array
                value = list(unpack_from(order + leaf.code, payload, offset))
            flat[leaf.path] = value
        counts = _count_leaf_positions(plan)
        result: dict[tuple[str, ...], object] = {}
        for item in plan.var_items:
            pointer = flat[item.path]
            if item.kind == "string":
                flat[item.path] = _read_string(payload, pointer)
            else:
                if pointer:
                    count_leaf_position = counts[item.path]
                    count = _value_at_position(plan, flat, count_leaf_position)
                    flat[item.path] = list(
                        unpack_from(
                            f"{order}{count}{item.element_code}", payload, pointer
                        )
                    )
                else:
                    flat[item.path] = []
        return _assemble(plan, wire_format, (), flat)

    return convert


def _value_at_position(plan: EncodePlan, flat: dict, position: int):
    cursor = 0
    for leaf in plan.leaves:
        if cursor == position:
            return flat[leaf.path]
        cursor += _leaf_width(leaf)
    raise ConversionError(f"no leaf at unpack position {position}")


def _assemble(
    plan: EncodePlan, fmt: IOFormat, prefix: tuple[str, ...], flat: dict
) -> dict:
    record: dict = {}
    for field in fmt.compiled_fields:
        path = prefix + (field.name,)
        if field.nested is not None:
            if field.static_count == 1:
                record[field.name] = _assemble(plan, field.nested, path, flat)
            else:
                record[field.name] = [
                    _assemble(plan, field.nested, path + (str(i),), flat)
                    for i in range(field.static_count)
                ]
        elif field.is_string and field.static_count > 1:
            record[field.name] = [
                flat[path + (str(i),)] for i in range(field.static_count)
            ]
        else:
            record[field.name] = flat[path]
    return record
