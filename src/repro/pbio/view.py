"""Lazy record views: field access straight out of the wire buffer.

In C, PBIO's homogeneous receive path hands the application a pointer
*into the receive buffer* — no conversion, no copy, fields read in
place.  :class:`RecordView` is the Python analogue: a mapping over an
NDR payload that unpacks a field only when it is accessed, and unpacks
it directly from the buffer with the offsets and codes of the wire
format's encode plan.

This matters for the paper's selective-consumer workloads (a display
point that reads two fields of a forty-field record): the eager
converter pays for every field; the view pays only for what is touched.
Views work for *any* wire architecture — access still byte-swaps when
needed — but shine when the consumer touches a small subset.

Views are read-only and valid as long as the underlying buffer is.  Use
:meth:`RecordView.materialize` to get an ordinary dict (equivalent to
the eager converter's output).
"""

from __future__ import annotations

import struct
from typing import Iterator, Mapping

from repro.arch.model import TypeKind
from repro.errors import DecodeError
from repro.pbio.codegen import _read_string
from repro.pbio.format import CompiledField, IOFormat


class RecordView(Mapping):
    """A lazy, read-only mapping over one NDR payload."""

    __slots__ = ("_payload", "_format", "_base", "_order", "_cache")

    def __init__(self, fmt: IOFormat, payload, *, base: int = 0) -> None:
        """``payload`` may be ``bytes``, ``bytearray``, or ``memoryview``.

        A view payload is read in place (zero-copy) and must stay valid
        — i.e. the channel buffer it aliases must not be overwritten by
        another ``recv`` — for the life of this record view
        (PROTOCOL §12).
        """
        if len(payload) < base + fmt.record_length:
            raise DecodeError(
                f"payload too short for a {fmt.name!r} view "
                f"({len(payload)} bytes, need {base + fmt.record_length})"
            )
        self._payload = payload
        self._format = fmt
        self._base = base
        self._order = "<" if fmt.arch.is_little_endian else ">"
        self._cache: dict[str, object] = {}

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, name: str):
        if name in self._cache:
            return self._cache[name]
        field = self._format.field(name)  # raises for unknown names
        value = self._read_field(field)
        self._cache[name] = value
        return value

    def __iter__(self) -> Iterator[str]:
        return iter(self._format.field_names())

    def __len__(self) -> int:
        return len(self._format.fields)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._format.field_names()

    # -- value extraction ------------------------------------------------------

    def _read_field(self, field: CompiledField):
        offset = self._base + field.offset
        if field.nested is not None:
            stride = field.nested.record_length
            views = [
                RecordView(field.nested, self._payload, base=offset + i * stride)
                for i in range(field.static_count)
            ]
            return views[0] if field.static_count == 1 else views
        if field.type.is_dynamic_array:
            pointer = self._read_pointer(offset)
            if not pointer:
                return []
            count_field = self._format.field(field.type.length_field)
            count = self._read_scalar(count_field, self._base + count_field.offset)
            code = self._scalar_code(field)
            return list(
                struct.unpack_from(f"{self._order}{count}{code}", self._payload, pointer)
            )
        if field.is_string:
            pointers = [
                self._read_pointer(offset + i * self._format.arch.pointer_size)
                for i in range(field.static_count)
            ]
            strings = [_read_string(self._payload, p) for p in pointers]
            return strings[0] if field.static_count == 1 else strings
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            # bytes() the (small, bounded) slice: memoryview has no split.
            raw = bytes(self._payload[offset : offset + field.static_count])
            return raw.split(b"\x00", 1)[0].decode("utf-8")
        if field.type.is_static_array:
            code = self._scalar_code(field)
            return list(
                struct.unpack_from(
                    f"{self._order}{field.static_count}{code}", self._payload, offset
                )
            )
        return self._read_scalar(field, offset)

    def _scalar_code(self, field: CompiledField) -> str:
        from repro.pbio.encode import scalar_code

        return scalar_code(field.kind, field.size, context=f"field {field.name}")

    def _read_scalar(self, field: CompiledField, offset: int):
        code = self._scalar_code(field)
        (value,) = struct.unpack_from(self._order + code, self._payload, offset)
        if field.kind == TypeKind.BOOLEAN:
            return bool(value)
        if field.kind == TypeKind.CHAR:
            return value.decode("latin-1")
        return value

    def _read_pointer(self, offset: int) -> int:
        arch = self._format.arch
        code = arch.struct_code(TypeKind.POINTER, arch.pointer_size)
        (value,) = struct.unpack_from(code, self._payload, offset)
        return value

    # -- conveniences ---------------------------------------------------------------

    def materialize(self) -> dict:
        """Read every field into an ordinary dict (recursively)."""
        result = {}
        for name in self:
            value = self[name]
            if isinstance(value, RecordView):
                value = value.materialize()
            elif isinstance(value, list) and value and isinstance(value[0], RecordView):
                value = [item.materialize() for item in value]
            result[name] = value
        return result

    @property
    def format(self) -> IOFormat:
        return self._format

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RecordView of {self._format.name!r}, {len(self)} fields>"


def view_message(fmt: IOFormat, message) -> RecordView:
    """View a framed data message (header + payload) without copying.

    Validates the header's format id against ``fmt``.  The message is
    wrapped in a ``memoryview`` so slicing off the header copies nothing
    regardless of the input type; the returned record view reads fields
    in place from the caller's buffer.
    """
    from repro.pbio.context import HEADER_SIZE, KIND_DATA, IOContext

    kind, _, _, length, format_id = IOContext.parse_header(message)
    if kind != KIND_DATA:
        raise DecodeError("can only view data messages")
    if format_id != fmt.format_id:
        raise DecodeError(
            f"message carries format {format_id.hex()}, not "
            f"{fmt.name!r} ({fmt.format_id.hex()})"
        )
    view = memoryview(message) if not isinstance(message, memoryview) else message
    return RecordView(fmt, view[HEADER_SIZE : HEADER_SIZE + length])
