"""IOContext: the per-endpoint state of the binary communication mechanism.

An :class:`IOContext` owns:

- the formats registered locally (the sender role);
- the wire formats learned from peers, format servers, or in-band
  metadata messages (the receiver role);
- the converter cache, so each (wire format, native format) pair pays
  code generation exactly once.

Message framing (all header integers big-endian, 16 bytes total)::

    u8   kind        1 = data record, 2 = format metadata, 3 = format
                     request, 4 = columnar batch
    u8   version     protocol version, currently 1
    u16  reserved    0
    u32  length      byte length of the body after the header
    u64  format id   content-addressed id (kinds 1, 3 and 4); zero for kind 2

A data message's body is the NDR payload; a metadata message's body is
the :meth:`IOFormat.to_wire_metadata` block; a request's body is empty;
a batch message's body is the columnar payload of PROTOCOL §14 (N
same-format records as per-field column blocks — see
:mod:`repro.pbio.columnar`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from time import perf_counter

from repro.arch.model import ArchitectureModel
from repro.arch.registry import NATIVE
from repro.errors import DecodeError, FormatRegistrationError
from repro.obs import metrics as _metrics
from repro.obs.instr import SAMPLE_MASK, pbio_handles
from repro.pbio.decode import DEFAULT_CONVERTER_CAPACITY, ConverterCache
from repro.pbio.encode import (
    encode_record,
    get_encode_plan,
    get_generated_encode_into,
    get_generated_encoder,
)
from repro.pbio.field import IOField
from repro.pbio.fmserver import FormatServer
from repro.pbio.format import IOFormat

HEADER = struct.Struct(">BBHI8s")
HEADER_SIZE = HEADER.size

KIND_DATA = 1
KIND_FORMAT = 2
KIND_REQUEST = 3
KIND_BATCH = 4

PROTOCOL_VERSION = 1

_NULL_ID = b"\x00" * 8

# Sampling tick for decode-duration observations (see repro.obs.instr);
# racy updates only jitter the sampling phase, counters stay exact.
_decode_tick = [0]


@dataclass(frozen=True)
class DecodedRecord:
    """A decoded data message: format identity plus field values."""

    format_name: str
    values: dict
    wire_format: IOFormat

    def __getitem__(self, name: str):
        return self.values[name]

    def __contains__(self, name: str) -> bool:
        return name in self.values


@dataclass(frozen=True)
class DecodedBatch:
    """A decoded batch message: format identity plus N records."""

    format_name: str
    records: list
    wire_format: IOFormat

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> dict:
        return self.records[index]


class IOContext:
    """Format registration, encoding and decoding for one endpoint.

    Parameters
    ----------
    arch:
        The "native" architecture this context encodes with.  Defaults
        to the model matching the running interpreter; tests and the
        heterogeneity benchmarks pass explicit models to put a simulated
        SPARC and a simulated x86 in one process.
    format_server:
        Optional shared :class:`~repro.pbio.fmserver.FormatServer` used
        to resolve unknown format ids out-of-band.
    converter_cache:
        Optional :class:`~repro.pbio.decode.ConverterCache` to use
        instead of a private one — pass the same instance to several
        contexts to share compiled (wire, native) pairs across
        connections (converters are pure functions, the cache is
        thread-safe).
    converter_capacity:
        LRU bound of the private converter cache (ignored when
        ``converter_cache`` is given).
    use_fused:
        Tri-state switch for the fused decode+project converter on
        evolved records (``None`` = fuse with fallback, ``True`` =
        force, ``False`` = two-step path).  Ignored when
        ``converter_cache`` is given.
    lineage:
        Optional :class:`~repro.pbio.evolution.FormatLineage`; every
        format this context registers or learns is recorded there,
        chaining versions by name in observation order.
    """

    def __init__(
        self,
        arch: ArchitectureModel = NATIVE,
        *,
        format_server: FormatServer | None = None,
        converter_cache: ConverterCache | None = None,
        converter_capacity: int = DEFAULT_CONVERTER_CAPACITY,
        use_fused: bool | None = None,
        lineage=None,
    ) -> None:
        self.arch = arch
        self._formats: dict[str, IOFormat] = {}
        self._by_id: dict[bytes, IOFormat] = {}
        self._wire_formats: dict[bytes, IOFormat] = {}
        self._converters = (
            converter_cache
            if converter_cache is not None
            else ConverterCache(converter_capacity, use_fused=use_fused)
        )
        self._format_server = format_server
        self.lineage = lineage

    # -- registration -------------------------------------------------------

    def register_format(
        self,
        name: str,
        fields: list[IOField],
        *,
        record_length: int | None = None,
    ) -> IOFormat:
        """Register a format against this context's architecture.

        Nested format references resolve against previously registered
        formats, mirroring PBIO's registration order requirement.
        """
        if name in self._formats:
            raise FormatRegistrationError(f"format {name!r} is already registered")
        fmt = IOFormat(
            name,
            fields,
            self.arch,
            record_length=record_length,
            catalog=self._formats,
        )
        self._adopt(fmt)
        return fmt

    def adopt_format(self, fmt: IOFormat) -> IOFormat:
        """Register an :class:`IOFormat` built elsewhere (e.g. by xml2wire).

        The format's nested dependencies are adopted too.  The format
        must have been built for this context's architecture.
        """
        if fmt.arch != self.arch:
            raise FormatRegistrationError(
                f"format {fmt.name!r} was built for {fmt.arch.name}, but this "
                f"context is {self.arch.name}"
            )
        for nested in fmt.nested_formats():
            if nested.name not in self._formats:
                self._adopt(nested)
        if fmt.name in self._formats:
            if self._formats[fmt.name].format_id != fmt.format_id:
                raise FormatRegistrationError(
                    f"format {fmt.name!r} is already registered with "
                    f"different metadata"
                )
            return self._formats[fmt.name]
        self._adopt(fmt)
        return fmt

    def _adopt(self, fmt: IOFormat) -> None:
        self._formats[fmt.name] = fmt
        self._by_id[fmt.format_id] = fmt
        # A context can always decode its own formats.
        self._wire_formats[fmt.format_id] = fmt
        if self._format_server is not None:
            self._format_server.register(fmt)
        if self.lineage is not None:
            self.lineage.register(fmt)
        # Registration pays encoder compilation up front (plan + DCG),
        # keeping the per-message path free of first-use spikes.
        get_encode_plan(fmt)
        get_generated_encoder(fmt)
        get_generated_encode_into(fmt)

    def lookup_format(self, name: str) -> IOFormat:
        """Return a locally registered format by name."""
        try:
            return self._formats[name]
        except KeyError:
            known = ", ".join(self._formats) or "(none)"
            raise FormatRegistrationError(
                f"no format named {name!r} registered; known: {known}"
            ) from None

    def format_names(self) -> list[str]:
        """Names of every locally registered format."""
        return list(self._formats)

    # -- wire format learning -------------------------------------------------

    def learn_format(self, metadata: bytes) -> IOFormat:
        """Install a peer's format from a metadata block; returns it."""
        fmt = IOFormat.from_wire_metadata(metadata)
        self._wire_formats[fmt.format_id] = fmt
        if self.lineage is not None:
            self.lineage.register(fmt)
        return fmt

    def knows_format_id(self, format_id: bytes) -> bool:
        """True if a wire format with this id has been learned."""
        return format_id in self._wire_formats

    def wire_format(self, format_id: bytes) -> IOFormat:
        """Resolve a wire format id, consulting the format server if set."""
        fmt = self._wire_formats.get(format_id)
        if fmt is not None:
            return fmt
        if self._format_server is not None:
            fmt = self._format_server.resolve(format_id)
            self._wire_formats[format_id] = fmt
            return fmt
        raise DecodeError(
            f"unknown format id {format_id.hex()}; no metadata received and "
            f"no format server attached"
        )

    # -- messages ----------------------------------------------------------------

    def encode(self, fmt: IOFormat | str, record: dict) -> bytes:
        """Encode ``record`` as a framed data message."""
        if isinstance(fmt, str):
            fmt = self.lookup_format(fmt)
        payload = encode_record(fmt, record)
        header = HEADER.pack(
            KIND_DATA, PROTOCOL_VERSION, 0, len(payload), fmt.format_id
        )
        return header + payload

    def encode_into(self, fmt: IOFormat | str, record: dict, buffer, offset: int = 0) -> int:
        """Encode ``record`` as a framed data message into ``buffer``.

        In-place counterpart of :meth:`encode`: header and NDR payload
        are written at ``offset`` via ``pack_into`` (byte-identical to
        :meth:`encode`'s output), and the total framed length is
        returned.  ``buffer`` is any writable buffer — in the
        allocation-free path, a pooled ``bytearray`` from
        :func:`repro.wire.bufpool.get_pool`.  Raises
        :class:`~repro.errors.EncodeError` (with ``.needed`` set to the
        payload size) if the buffer is too small.
        """
        if isinstance(fmt, str):
            fmt = self.lookup_format(fmt)
        length = get_generated_encode_into(fmt)(record, buffer, offset + HEADER_SIZE)
        HEADER.pack_into(
            buffer, offset, KIND_DATA, PROTOCOL_VERSION, 0, length, fmt.format_id
        )
        return HEADER_SIZE + length

    def encode_batch(
        self, fmt: IOFormat | str, records, *, use_numpy=None
    ) -> bytes:
        """Encode ``records`` as one framed columnar batch message.

        The batch rides a ``KIND_BATCH`` message whose body is the
        columnar payload of PROTOCOL §14; per-record data messages are
        untouched.  ``use_numpy`` forces the vectorized (``True``) or
        pure-Python (``False``) encoder; the default auto-detects.
        Raises :class:`~repro.errors.EncodeError` for empty batches and
        for formats with nested fields (no columnar representation).
        """
        return b"".join(self.encode_batch_iov(fmt, records, use_numpy=use_numpy))

    def encode_batch_iov(
        self, fmt: IOFormat | str, records, *, use_numpy=None
    ) -> list:
        """:meth:`encode_batch` as a list of buffer parts (header first).

        Hand the parts to a scatter-gather sender
        (:meth:`~repro.transport.tcp.TCPChannel.send_batch`) and the
        batch reaches the wire without a join copy.
        """
        from repro.pbio.columnar import get_columnar_plan

        if isinstance(fmt, str):
            fmt = self.lookup_format(fmt)
        parts = get_columnar_plan(fmt).encode_parts(records, use_numpy=use_numpy)
        length = sum(len(part) for part in parts)
        header = HEADER.pack(
            KIND_BATCH, PROTOCOL_VERSION, 0, length, fmt.format_id
        )
        self._batch_observe("encode", len(records))
        return [header, *parts]

    def decode_batch(self, message, *, use_numpy=None) -> DecodedBatch:
        """Decode a framed batch message to a :class:`DecodedBatch`.

        Records come back in the wire format's own shape, with the same
        value representation the per-record converters produce (NULL
        strings as ``None``, empty dynamic arrays as ``[]``, ...).
        """
        from repro.pbio.columnar import get_columnar_plan

        wire_format, payload = self._batch_payload(message)
        records = get_columnar_plan(wire_format).decode_records(
            payload, use_numpy=use_numpy
        )
        self._batch_observe("decode", len(records))
        return DecodedBatch(
            format_name=wire_format.name,
            records=records,
            wire_format=wire_format,
        )

    def decode_batch_view(self, message, *, use_numpy=None):
        """Decode a batch message as a lazy zero-copy column view.

        Returns a :class:`~repro.pbio.columnar.ColumnBatchView` whose
        ``column(name)`` arrays alias ``message`` directly — the buffer
        ownership rules of PROTOCOL §12 apply (don't ``recv`` over it
        while the view is live).
        """
        from repro.pbio.columnar import ColumnBatchView

        wire_format, payload = self._batch_payload(message)
        return ColumnBatchView(wire_format, payload, use_numpy=use_numpy)

    def _batch_payload(self, message):
        """Split a batch message into (wire format, payload view)."""
        kind, _, _, length, format_id = self.parse_header(message)
        if kind != KIND_BATCH:
            raise DecodeError(
                f"expected a batch message, got message kind {kind}"
            )
        if isinstance(message, bytearray):
            message = memoryview(message)
        payload = message[HEADER_SIZE : HEADER_SIZE + length]
        if len(payload) != length:
            raise DecodeError(
                f"truncated batch message: header promises {length} bytes, "
                f"got {len(payload)}"
            )
        return self.wire_format(format_id), payload

    @staticmethod
    def _batch_observe(op: str, count: int) -> None:
        registry = _metrics._default_registry
        if not registry.enabled:
            return
        registry.counter(
            "pbio_batch_total", "columnar batch operations", ("op",)
        ).labels(op).inc()
        registry.counter(
            "pbio_batch_records_total", "records moved in columnar batches",
            ("op",),
        ).labels(op).inc(count)

    def format_message(self, fmt: IOFormat | str) -> bytes:
        """Frame ``fmt``'s metadata as a format message."""
        if isinstance(fmt, str):
            fmt = self.lookup_format(fmt)
        metadata = fmt.to_wire_metadata()
        return HEADER.pack(KIND_FORMAT, PROTOCOL_VERSION, 0, len(metadata), _NULL_ID) + metadata

    def request_message(self, format_id: bytes) -> bytes:
        """Frame a format request for ``format_id``."""
        return HEADER.pack(KIND_REQUEST, PROTOCOL_VERSION, 0, 0, format_id)

    def decode(
        self,
        message: bytes,
        *,
        expect: str | None = None,
        mode: str = "generated",
    ) -> DecodedRecord:
        """Decode a framed data message.

        ``expect`` names a locally registered format to project the
        record onto (format-evolution tolerance); by default the record
        is returned in the wire format's own shape.  ``mode`` selects the
        converter implementation (``"generated"`` or ``"interpreted"``).
        """
        kind, version, _, length, format_id = self.parse_header(message)
        if kind != KIND_DATA:
            raise DecodeError(
                f"expected a data message, got message kind {kind}"
            )
        if isinstance(message, bytearray):
            message = memoryview(message)  # keep the payload slice zero-copy
        payload = message[HEADER_SIZE : HEADER_SIZE + length]
        if len(payload) != length:
            raise DecodeError(
                f"truncated message: header promises {length} bytes, "
                f"got {len(payload)}"
            )
        wire_format = self.wire_format(format_id)
        target = self.lookup_format(expect) if expect is not None else None
        converter = self._converters.lookup(wire_format, target, mode)
        # Direct global read; get_registry()'s call overhead is real on
        # this path (see the obs overhead benchmark).
        registry = _metrics._default_registry
        handles = started = None
        if registry.enabled:
            # Inline fast path of pbio_handles: one getattr, no call.
            handles = getattr(wire_format, "_obs_pbio", None)
            if handles is None or handles.registry is not registry:
                handles = pbio_handles(wire_format, registry)
            _decode_tick[0] += 1
            if not _decode_tick[0] & SAMPLE_MASK:
                started = perf_counter()
        try:
            # Converters consume memoryviews directly — no bytes() round-trip.
            values = converter(payload)
        except (IndexError, ValueError, struct.error) as exc:
            raise DecodeError(
                f"corrupt payload for format {wire_format.name!r}: {exc}"
            ) from exc
        if handles is not None:
            if started is not None:
                handles.decode_observe(perf_counter() - started)
            handles.decode_inc()
        name = target.name if target is not None else wire_format.name
        return DecodedRecord(format_name=name, values=values, wire_format=wire_format)

    def decode_view(self, message: bytes):
        """Decode a data message as a lazy :class:`~repro.pbio.RecordView`.

        Nothing is converted until a field is accessed — PBIO's use-the-
        buffer-in-place receive path, ideal for consumers that touch a
        few fields of wide records.  The wire format resolves the same
        way :meth:`decode` resolves it (learned metadata or the format
        server).

        A ``memoryview`` message stays a view all the way into the
        :class:`~repro.pbio.RecordView` (zero-copy): the view must then
        outlive the record view per the ownership contract in
        PROTOCOL §12 — e.g. don't ``recv`` again on the channel that
        handed out the buffer while the record is still in use.
        """
        from repro.pbio.view import RecordView

        kind, _, _, length, format_id = self.parse_header(message)
        if kind != KIND_DATA:
            raise DecodeError(f"expected a data message, got message kind {kind}")
        wire_format = self.wire_format(format_id)
        if isinstance(message, bytearray):
            message = memoryview(message)
        payload = message[HEADER_SIZE : HEADER_SIZE + length]
        if len(payload) != length:
            raise DecodeError(
                f"truncated message: header promises {length} bytes, "
                f"got {len(payload)}"
            )
        return RecordView(wire_format, payload)

    @staticmethod
    def parse_header(message: bytes) -> tuple[int, int, int, int, bytes]:
        """Split a framed message's header; raises on short input."""
        if len(message) < HEADER_SIZE:
            raise DecodeError(
                f"message of {len(message)} bytes is shorter than the "
                f"{HEADER_SIZE}-byte header"
            )
        kind, version, reserved, length, format_id = HEADER.unpack_from(message, 0)
        if version != PROTOCOL_VERSION:
            raise DecodeError(f"unsupported protocol version {version}")
        return kind, version, reserved, length, format_id

    # -- introspection -------------------------------------------------------------

    @property
    def converter_builds(self) -> int:
        """How many converters this context has generated (amortization)."""
        return self._converters.builds

    @property
    def converter_cache_hits(self) -> int:
        """How many decodes reused a cached converter.

        Kept as a plain counter on the cache (not a registry series) so
        the per-decode hot path stays free of metrics work; the registry
        still records the rare ``converter``/``miss`` build events.
        """
        return self._converters.hits

    @property
    def converter_cache(self) -> ConverterCache:
        """The (possibly shared) bounded converter cache."""
        return self._converters

    def converter_cache_stats(self) -> dict:
        """LRU counters of the converter cache (PROTOCOL §16)."""
        return self._converters.stats()

    def encoded_size(self, fmt: IOFormat | str, record: dict) -> int:
        """Total framed size of ``record`` (header + NDR payload)."""
        return len(self.encode(fmt, record))
