"""A shared, thread-safe bounded LRU for compiled-artifact caches.

The instance-based-binding policy (PROTOCOL §16): a server facing
thousands of format versions compiles converters only for the
(wire format, native format) pairs traffic actually touches, and a
bounded LRU guarantees that formats traffic *no longer* touches cannot
hold memory forever.  Three caches ride this class:

- the converter/projection cache in
  :class:`~repro.pbio.decode.ConverterCache` (``cache="converter"``);
- the :class:`~repro.pbio.fmserver.FormatServer` metadata-decode cache
  (``cache="fmserver"``);
- the :class:`~repro.metaserver.client.MetadataClient` parsed-format
  cache (``cache="client_format"``).

Every cache reports the same four series through :mod:`repro.obs`, so
``/metrics`` on either serving plane shows the full instance-based
binding picture::

    pbio_converter_cache_hits{cache="..."}
    pbio_converter_cache_misses{cache="..."}
    pbio_converter_cache_evictions{cache="..."}
    pbio_converter_cache_size{cache="..."}        (a gauge)

Counter increments go through bound handles cached per registry (the
``pbio_handles`` pattern of :mod:`repro.obs.instr`), so the hit path
costs one attribute read plus a sharded-cell increment when metrics are
enabled and a single ``enabled`` check when they are not.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ReproError
from repro.obs import metrics as _metrics

_MISSING = object()


class _Handles:
    """Bound metric handles for one (registry, cache name) pair."""

    __slots__ = ("registry", "hits", "misses", "evictions", "size")

    def __init__(self, registry, name: str) -> None:
        self.registry = registry
        self.hits = registry.counter(
            "pbio_converter_cache_hits",
            "bounded binding-cache lookups served from cache",
            ("cache",),
        ).labels(name)
        self.misses = registry.counter(
            "pbio_converter_cache_misses",
            "bounded binding-cache lookups that had to build/fetch",
            ("cache",),
        ).labels(name)
        self.evictions = registry.counter(
            "pbio_converter_cache_evictions",
            "entries dropped by the binding-cache LRU bound",
            ("cache",),
        ).labels(name)
        self.size = registry.gauge(
            "pbio_converter_cache_size",
            "live entries in the bounded binding cache",
            ("cache",),
        ).labels(name)


class BoundedLRU:
    """Thread-safe LRU mapping with hit/miss/eviction accounting.

    ``capacity`` bounds the number of live entries; inserting past the
    bound evicts the least recently used entry.  Plain integer counters
    (:attr:`hits` / :attr:`misses` / :attr:`evictions`) are always
    maintained; the :mod:`repro.obs` series named above are updated
    when the default registry is enabled.
    """

    def __init__(self, capacity: int, *, name: str = "converter") -> None:
        if capacity < 1:
            raise ReproError(f"LRU capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._handles: _Handles | None = None

    # -- metrics ---------------------------------------------------------------

    def _obs(self) -> _Handles | None:
        registry = _metrics._default_registry
        if not registry.enabled:
            return None
        handles = self._handles
        if handles is None or handles.registry is not registry:
            handles = self._handles = _Handles(registry, self.name)
        return handles

    # -- mapping ---------------------------------------------------------------

    def get(self, key, default=None):
        """Return the cached value for ``key`` (marking it recently used)."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
                self.hits += 1
                found = True
            else:
                self.misses += 1
                found = False
        handles = self._obs()
        if handles is not None:
            (handles.hits if found else handles.misses).inc()
        return value if found else default

    def put(self, key, value) -> None:
        """Insert ``key``, evicting the LRU entry past the capacity bound."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
            size = len(self._data)
        handles = self._obs()
        if handles is not None:
            if evicted:
                handles.evictions.inc(evicted)
            handles.size.set(size)

    def pop(self, key) -> None:
        """Drop ``key`` if present (explicit invalidation, not an eviction)."""
        with self._lock:
            self._data.pop(key, None)
            size = len(self._data)
        handles = self._obs()
        if handles is not None:
            handles.size.set(size)

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        with self._lock:
            self._data.clear()
        handles = self._obs()
        if handles is not None:
            handles.size.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> list:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._data)

    def stats(self) -> dict:
        """Counters plus occupancy in one reportable dict."""
        with self._lock:
            size = len(self._data)
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
