"""Fault injection for the async plane.

:class:`AsyncFaultyChannel` is the coroutine twin of
:class:`~repro.faults.channel.FaultyChannel`: it wraps any
:class:`~repro.aio.channel.AsyncChannel` and consults the *same*
:class:`~repro.faults.plan.FaultPlan` type, with the same decision
stream for a given seed — a chaos schedule developed against the sync
plane replays fault-for-fault against the async one.  The only
behavioral difference is that ``delay`` faults suspend the coroutine
(``asyncio.sleep``) instead of blocking a thread.

Zero-copy messages (``memoryview``) pass through untouched on the clean
path; only a message selected for corruption is materialized, inside the
shared :func:`~repro.faults.channel.corrupt_bytes` helper.
"""

from __future__ import annotations

import asyncio

from repro.aio.channel import AsyncChannel
from repro.errors import ChannelClosedError, TransportTimeoutError
from repro.faults.channel import corrupt_bytes
from repro.faults.plan import FaultPlan


class AsyncFaultyChannel(AsyncChannel):
    """Wrap ``inner`` so every operation first consults ``plan``."""

    def __init__(self, inner: AsyncChannel, plan: FaultPlan | None = None) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        # Same derivation as the sync wrapper (FaultPlan.corruption_rng):
        # identical seeds corrupt identical byte positions on either plane.
        self._corrupt_rng = self.plan.corruption_rng()
        self.sent = 0
        self.received = 0

    # -- the faulted operations ----------------------------------------------

    async def send(self, message: bytes) -> None:
        """Send through the inner channel, unless the plan says otherwise."""
        kind = self.plan.decide("send")
        if kind == "drop":
            return  # lost on the wire; the caller believes it was sent
        if kind == "reset":
            await self.inner.close()
            raise ChannelClosedError("injected fault: connection reset on send")
        if kind == "timeout":
            raise TransportTimeoutError("injected fault: send timed out")
        if kind == "corrupt":
            message = corrupt_bytes(message, self._corrupt_rng)
        elif kind == "delay":
            await asyncio.sleep(self.plan.delay_seconds)
        await self.inner.send(message)
        self.sent += 1

    async def recv(self, timeout: float | None = None) -> bytes:
        """Receive from the inner channel, unless the plan says otherwise."""
        while True:
            kind = self.plan.decide("recv")
            if kind == "reset":
                await self.inner.close()
                raise ChannelClosedError("injected fault: connection reset on recv")
            if kind == "timeout":
                raise TransportTimeoutError("injected fault: recv timed out")
            if kind == "delay":
                await asyncio.sleep(self.plan.delay_seconds)
            message = await self.inner.recv(timeout)
            if kind == "drop":
                continue  # that message was lost on the wire; wait for the next
            if kind == "corrupt":
                message = corrupt_bytes(message, self._corrupt_rng)
            self.received += 1
            return message

    # -- passthrough ----------------------------------------------------------

    async def flush(self) -> None:
        """Flush the inner channel's coalescing buffer."""
        await self.inner.flush()

    async def close(self) -> None:
        """Close the inner channel."""
        await self.inner.close()

    @property
    def closed(self) -> bool:
        """Whether the inner channel is closed."""
        return self.inner.closed
