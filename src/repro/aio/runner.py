"""Run async-plane components from synchronous code.

Cross-plane deployments need an event loop *somewhere*: a threaded
application serving metadata through an
:class:`~repro.aio.metaserver.AsyncMetadataServer`, or a sync test
driving an async broker.  :class:`BackgroundLoop` owns one event loop on
one daemon thread and lets sync code submit coroutines to it::

    with BackgroundLoop() as loop:
        server = loop.run(AsyncMetadataServer().start())
        url = server.publish_schema("/s.xsd", schema)   # sync call, safe
        body = http_get(url)                            # sync client
        loop.run(server.stop())

Every ``run`` blocks the calling thread until the coroutine completes
on the loop thread — the sync call surface over the async plane.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Coroutine

from repro.errors import TransportError


class BackgroundLoop:
    """An event loop on a daemon thread, driven from sync code."""

    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_forever, daemon=True)
        self._started = threading.Event()
        self._thread.start()
        self._started.wait(timeout=5)

    def _run_forever(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The underlying event loop (for ``call_soon_threadsafe`` etc.)."""
        return self._loop

    def run(self, coro: Coroutine[Any, Any, Any], timeout: float | None = 30.0):
        """Run ``coro`` on the loop thread; block for (and return) its result."""
        if not self._loop.is_running():
            raise TransportError("background loop is not running")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    def submit(self, coro: Coroutine[Any, Any, Any]):
        """Schedule ``coro`` without waiting; returns a concurrent Future."""
        if not self._loop.is_running():
            raise TransportError("background loop is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def stop(self) -> None:
        """Stop the loop and join its thread; idempotent."""
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "BackgroundLoop":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
