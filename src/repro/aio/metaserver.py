"""The asyncio metadata server: one loop, many connections, pipelining.

Serves the same HTTP/1.0 subset as the threaded
:class:`~repro.metaserver.server.MetadataServer`, out of the same
:class:`~repro.metaserver.catalog.MetadataCatalog` — construct both over
one catalog instance and the two planes publish identical documents.
The differences are purely at the connection layer:

- **persistent connections** — a client may send any number of requests
  over one socket; the server answers in order and serves until the
  client closes.  One-shot sync clients (:func:`~repro.metaserver.client.http_get`)
  still work unchanged: every response carries ``Content-Length``, and
  the client closing its socket ends the connection loop.
- **pipelining** — requests already buffered behind the current one are
  answered back-to-back without waiting for the client to read each
  response first.  This is what makes many in-flight format resolutions
  over one connection cheap.
- **graceful drain** — :meth:`stop` stops accepting, lets every
  *in-flight* request finish its response (shielded from cancellation),
  then closes idle connections.  A deadline bounds how long a slow
  client can hold shutdown hostage.
"""

from __future__ import annotations

import asyncio
from time import perf_counter

from repro.errors import DiscoveryError
from repro.metaserver.catalog import DynamicHandler, MetadataCatalog
from repro.metaserver.http import HTTPResponse, _content_length
from repro.metaserver.server import _observe_request
from repro.pbio.fmserver import FormatServer
from repro.schema.model import SchemaDocument


class AsyncMetadataServer:
    """Asyncio HTTP server for metadata documents."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        catalog: MetadataCatalog | None = None,
        reuse_port: bool = False,
    ) -> None:
        self._host = host
        self._port = port
        self._reuse_port = reuse_port
        self.catalog = catalog if catalog is not None else MetadataCatalog()
        self._server: asyncio.base_events.Server | None = None
        self._stopping = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self.requests_served = 0
        self.connections_served = 0

    # -- publication (same surface as the threaded server) ---------------------

    def publish_schema(self, path: str, schema: SchemaDocument | str) -> str:
        """Publish a schema document at ``path``; returns its full URL."""
        self.catalog.publish_schema(path, schema)
        return self.url_for(path)

    def publish_dynamic(self, path: str, handler: DynamicHandler) -> str:
        """Publish a per-request generated document at ``path``."""
        self.catalog.publish_dynamic(path, handler)
        return self.url_for(path)

    def unpublish(self, path: str) -> None:
        """Remove a document; missing paths are a no-op."""
        self.catalog.unpublish(path)

    def attach_format_server(self, format_server: FormatServer) -> None:
        """Expose ``format_server``'s formats under ``/formats/<hex id>``."""
        self.catalog.attach_format_server(format_server)

    # -- lifecycle --------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise DiscoveryError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    def url_for(self, path: str) -> str:
        """Absolute URL of ``path`` on this server."""
        host, port = self.address
        return f"http://{host}:{port}{path}"

    async def start(self) -> "AsyncMetadataServer":
        """Bind and begin accepting connections (fluent)."""
        if self._server is not None:
            raise DiscoveryError("server already started")
        # A deep accept backlog is the async plane's point: one loop can
        # absorb a synchronized connect storm from hundreds of clients.
        self._server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            backlog=1024,
            # SO_REUSEPORT lets N worker processes (PROTOCOL §15) share
            # one port with kernel accept sharding.
            reuse_port=self._reuse_port or None,
        )
        return self

    async def stop(self, drain: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, close connections.

        Requests whose headers have been read finish their responses
        (up to ``drain`` seconds); idle keep-alive connections are
        closed immediately.
        """
        if self._server is None:
            return
        self._stopping.set()
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for task in list(self._tasks):
            if task not in self._busy:
                task.cancel()
        if self._tasks:
            _, pending = await asyncio.wait(list(self._tasks), timeout=drain)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(list(pending), timeout=1.0)
        self._stopping = asyncio.Event()

    async def __aenter__(self) -> "AsyncMetadataServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling -----------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self.connections_served += 1
        try:
            await self._serve_connection(task, reader, writer)
        except asyncio.CancelledError:
            pass  # drained during shutdown
        except (OSError, ConnectionError):
            pass
        finally:
            self._tasks.discard(task)
            self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    async def _serve_connection(self, task, reader, writer) -> None:
        while not self._stopping.is_set():
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError:
                return  # client closed between requests
            except asyncio.LimitOverrunError:
                writer.write(HTTPResponse(400, body=b"headers too large").render())
                await writer.drain()
                return
            # Header read: this request is now in flight and survives a
            # graceful drain.  Shield the answer so stop()'s cancellation
            # of the connection task lands after the response is written.
            self._busy.add(task)
            try:
                work = asyncio.ensure_future(
                    self._answer(reader, writer, head)
                )
                try:
                    await asyncio.shield(work)
                except asyncio.CancelledError:
                    await work
                    raise
            finally:
                self._busy.discard(task)

    async def _answer(self, reader, writer, head: bytes) -> None:
        body = b""
        try:
            length = _content_length(head.rstrip(b"\r\n"))
        except DiscoveryError:
            writer.write(HTTPResponse(400, body=b"malformed request").render())
            await writer.drain()
            self.requests_served += 1
            return
        if length:
            body = await reader.readexactly(length)
        started = perf_counter()
        response = self.catalog.respond(head + body)
        writer.write(response.render())
        await writer.drain()
        self.requests_served += 1
        _observe_request(started, "async")
