"""Asyncio transport: framed message channels over asyncio streams.

Speaks exactly the wire format of :mod:`repro.transport.tcp` — the
big-endian u32 length prefix of :mod:`repro.wire.framing` — so an
:class:`AsyncTCPChannel` on one end and a sync
:class:`~repro.transport.tcp.TCPChannel` on the other are
indistinguishable on the wire.

Concurrency model (see docs/PROTOCOL.md §10):

- **send lock** — concurrent ``send`` coroutines are serialized per
  frame; frames from different senders interleave at frame boundaries,
  never inside one.
- **recv lock** — concurrent ``recv`` coroutines are serialized per
  frame; each receives one whole frame, arrival order decides which.
- **write coalescing** — frames smaller than ``coalesce_bytes`` are
  parked in a user-space buffer and flushed in one transport write on
  the next loop tick (or sooner, when the buffer fills).  Many small
  publishes become one syscall instead of many.
- **backpressure** — the transport's write-buffer high-water mark is set
  to ``high_water``; every flush awaits ``drain()``, so a producer
  outrunning a slow peer suspends instead of buffering without bound.

Unlike the sync channel, a recv timeout here can never poison the
stream: asyncio's ``StreamReader`` only consumes bytes once a full read
is satisfied, so a cancelled mid-frame read leaves every byte buffered
and the next ``recv`` resumes cleanly.  :attr:`AsyncTCPChannel.poisoned`
exists for interface parity and is always ``False``.
"""

from __future__ import annotations

import abc
import asyncio
from time import perf_counter

from repro.errors import (
    ChannelClosedError,
    TransportError,
    TransportTimeoutError,
    WireError,
)
from repro.obs.instr import channel_handles
from repro.obs.metrics import get_registry
from repro.wire.framing import MAX_FRAME_SIZE, _LENGTH, frame_iov, frame_parts

# Memo of the bound series for the current default registry; swapped
# registries (tests) re-resolve on first use.
_obs_memo = [None]


def _obs():
    """The async plane's channel metric handles, or None if disabled."""
    registry = get_registry()
    if not registry.enabled:
        return None
    cached = _obs_memo[0]
    if cached is None or cached[0] is not registry:
        cached = (registry, channel_handles(registry, "async"))
        _obs_memo[0] = cached
    return cached[1]

#: Frames at or above this many bytes bypass the coalescing buffer.
DEFAULT_COALESCE_BYTES = 2048

#: Transport write-buffer high-water mark: ``drain()`` suspends above it.
DEFAULT_HIGH_WATER = 256 * 1024


class AsyncChannel(abc.ABC):
    """The async counterpart of :class:`repro.transport.channel.Channel`.

    Same contract — one ``send`` is one ``recv``, whole messages, the
    same error types — with coroutine methods.
    """

    @abc.abstractmethod
    async def send(self, message: bytes) -> None:
        """Deliver ``message`` to the peer (may buffer; see ``flush``)."""

    @abc.abstractmethod
    async def recv(self, timeout: float | None = None) -> bytes:
        """Await the next message.

        Raises :class:`~repro.errors.ChannelClosedError` on clean EOF,
        :class:`~repro.errors.TransportTimeoutError` on timeout.
        """

    @abc.abstractmethod
    async def close(self) -> None:
        """Close this end; idempotent."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        """True once :meth:`close` has been called on this end."""

    async def flush(self) -> None:
        """Force any buffered frames onto the wire (default: no-op)."""

    async def send_batch(self, parts) -> int:
        """Deliver ONE message supplied as an iovec of buffer parts.

        Same contract as
        :meth:`repro.transport.channel.Channel.send_batch`: the peer's
        ``recv`` sees the concatenation of ``parts`` as one message.
        The base implementation joins; scatter-gather transports
        override it.  Returns the message's byte length.
        """
        message = b"".join(bytes(part) for part in parts)
        await self.send(message)
        return len(message)

    async def __aenter__(self) -> "AsyncChannel":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncTCPChannel(AsyncChannel):
    """A connected asyncio stream speaking length-prefixed messages."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        coalesce_bytes: int = DEFAULT_COALESCE_BYTES,
        high_water: int = DEFAULT_HIGH_WATER,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._closed = False
        self._send_lock = asyncio.Lock()
        self._recv_lock = asyncio.Lock()
        # Coalescing buffer as an iovec: (header, payload) pairs are
        # appended by reference and handed to writelines() at flush — no
        # per-frame concatenation copy.
        self._wbufs: list = []
        self._wbuf_len = 0
        self._flush_task: asyncio.Task | None = None
        self.coalesce_bytes = coalesce_bytes
        self.frames_sent = 0
        self.frames_received = 0
        self.flushes = 0  # transport writes (each may carry many frames)
        try:
            writer.transport.set_write_buffer_limits(high=high_water)
        except (AttributeError, NotImplementedError):  # e.g. test transports
            pass

    # -- sending ---------------------------------------------------------------

    async def send(self, message: bytes) -> None:
        """Deliver ``message`` (may coalesce; see :meth:`flush`).

        The payload is buffered **by reference** until the flush that
        carries it: a caller handing in a mutable buffer (``bytearray``,
        ``memoryview`` over a pooled encode buffer) must not reuse it
        before ``await flush()`` returns.
        """
        header, payload = frame_iov(message)
        handles = _obs()
        started = perf_counter() if handles is not None else 0.0
        async with self._send_lock:
            if self._closed:
                raise ChannelClosedError("cannot send on a closed channel")
            self._wbufs.append(header)
            self._wbufs.append(payload)
            self._wbuf_len += len(header) + len(payload)
            self.frames_sent += 1
            if self._wbuf_len >= self.coalesce_bytes:
                await self._flush_buffered()
            elif self._flush_task is None:
                # Park small frames until the loop comes back around, so
                # a burst of sends in one tick costs one write.
                self._flush_task = asyncio.ensure_future(self._deferred_flush())
        if handles is not None:
            handles.send_seconds.observe(perf_counter() - started)
            handles.send_frames.inc()
            handles.send_bytes.inc(len(message))

    async def send_many(self, messages) -> int:
        """Send a batch as one vectored write; returns the frame count.

        All frames join the iovec under one lock acquisition and are
        flushed immediately with a single ``writelines`` + ``drain`` —
        the async counterpart of the sync channel's scatter-gather
        ``send_many``.
        """
        iov: list = []
        count = 0
        total_bytes = 0
        for message in messages:
            header, payload = frame_iov(message)
            iov.append(header)
            iov.append(payload)
            total_bytes += len(payload)
            count += 1
        if not count:
            return 0
        handles = _obs()
        started = perf_counter() if handles is not None else 0.0
        async with self._send_lock:
            if self._closed:
                raise ChannelClosedError("cannot send on a closed channel")
            self._wbufs.extend(iov)
            self._wbuf_len += total_bytes + _LENGTH.size * count
            self.frames_sent += count
            await self._flush_buffered()
        if handles is not None:
            handles.send_seconds.observe(perf_counter() - started)
            handles.send_frames.inc(count)
            handles.send_bytes.inc(total_bytes)
        return count

    async def send_batch(self, parts) -> int:
        """Send one frame supplied as an iovec of parts; returns its length.

        The async counterpart of the sync channel's ``send_batch``: a
        columnar batch message joins the write iovec part by part (no
        join copy) and is flushed immediately with one ``writelines`` +
        ``drain``.
        """
        buffers = frame_parts(parts)
        total = sum(len(part) for part in buffers) - _LENGTH.size
        handles = _obs()
        started = perf_counter() if handles is not None else 0.0
        async with self._send_lock:
            if self._closed:
                raise ChannelClosedError("cannot send on a closed channel")
            self._wbufs.extend(buffers)
            self._wbuf_len += total + _LENGTH.size
            self.frames_sent += 1
            await self._flush_buffered()
        if handles is not None:
            handles.send_seconds.observe(perf_counter() - started)
            handles.send_frames.inc()
            handles.send_bytes.inc(total)
        return total

    async def _deferred_flush(self) -> None:
        try:
            async with self._send_lock:
                await self._flush_buffered()
        except (TransportError, OSError):
            pass  # the next explicit send/flush surfaces the failure
        finally:
            self._flush_task = None

    async def _flush_buffered(self) -> None:
        """Vectored write + drain of the iovec; caller holds the send lock."""
        if not self._wbuf_len or self._closed:
            return
        buffers = self._wbufs
        self._wbufs = []
        self._wbuf_len = 0
        try:
            self._writer.writelines(buffers)
            self.flushes += 1
            await self._writer.drain()
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ChannelClosedError(f"peer closed the connection: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    async def flush(self) -> None:
        """Push any coalesced frames onto the wire now."""
        async with self._send_lock:
            await self._flush_buffered()

    # -- receiving -------------------------------------------------------------

    async def recv(self, timeout: float | None = None) -> bytes:
        if self._closed:
            raise ChannelClosedError("cannot recv on a closed channel")
        handles = _obs()
        started = perf_counter() if handles is not None else 0.0
        try:
            message = await asyncio.wait_for(self._recv_one(), timeout)
        except asyncio.TimeoutError as exc:
            # StreamReader buffers partial frames, so unlike the sync
            # channel a timeout never desynchronizes the stream.
            raise TransportTimeoutError(f"recv timed out after {timeout}s") from exc
        if handles is not None:
            handles.recv_seconds.observe(perf_counter() - started)
            handles.recv_frames.inc()
            handles.recv_bytes.inc(len(message))
        return message

    async def _recv_one(self) -> bytes:
        async with self._recv_lock:
            try:
                header = await self._reader.readexactly(_LENGTH.size)
            except asyncio.IncompleteReadError as exc:
                if not exc.partial:
                    raise ChannelClosedError("peer closed the stream") from exc
                raise WireError("stream ended mid-frame") from exc
            except ConnectionResetError as exc:
                raise ChannelClosedError(f"connection reset: {exc}") from exc
            (length,) = _LENGTH.unpack(header)
            if length > MAX_FRAME_SIZE:
                raise WireError(f"frame length {length} exceeds limit")
            try:
                body = await self._reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise WireError("stream ended mid-frame") from exc
            except ConnectionResetError as exc:
                raise ChannelClosedError(f"connection reset: {exc}") from exc
            self.frames_received += 1
            return body

    # -- lifecycle -------------------------------------------------------------

    @property
    def poisoned(self) -> bool:
        """Always False: buffered reads make timeouts boundary-safe."""
        return False

    async def close(self) -> None:
        if self._closed:
            return
        try:
            await self.flush()
        except (TransportError, OSError):
            pass
        self._closed = True
        if self._flush_task is not None:
            self._flush_task.cancel()
            self._flush_task = None
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def local_address(self) -> tuple[str, int]:
        return self._writer.get_extra_info("sockname")[:2]


class AsyncTCPListener:
    """A listening server handing out :class:`AsyncTCPChannel` connections.

    Built on ``asyncio.start_server``: inbound connections queue until
    :meth:`accept` claims them.  Use :func:`listen` to construct.
    """

    def __init__(self, server: asyncio.base_events.Server, queue: asyncio.Queue) -> None:
        self._server = server
        self._queue = queue
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port 0 resolves here)."""
        return self._server.sockets[0].getsockname()[:2]

    async def accept(self, timeout: float | None = None) -> AsyncTCPChannel:
        """Await (and wrap) the next inbound connection."""
        if self._closed:
            raise ChannelClosedError("listener closed")
        try:
            return await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError as exc:
            raise TransportError(f"accept timed out after {timeout}s") from exc

    async def close(self) -> None:
        """Stop listening and drop queued, unclaimed connections."""
        if self._closed:
            return
        self._closed = True
        self._server.close()
        await self._server.wait_closed()
        while not self._queue.empty():
            channel = self._queue.get_nowait()
            await channel.close()

    async def __aenter__(self) -> "AsyncTCPListener":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def listen(host: str = "127.0.0.1", port: int = 0) -> AsyncTCPListener:
    """Open an async listener; ``port=0`` picks a free port."""
    queue: asyncio.Queue = asyncio.Queue()

    async def on_connection(reader, writer) -> None:
        await queue.put(AsyncTCPChannel(reader, writer))

    try:
        server = await asyncio.start_server(on_connection, host, port)
    except OSError as exc:
        raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
    return AsyncTCPListener(server, queue)


async def connect(
    host: str, port: int, timeout: float | None = 5.0
) -> AsyncTCPChannel:
    """Connect to a listener (sync or async) and return the channel."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except asyncio.TimeoutError as exc:
        raise TransportError(f"connect to {host}:{port} timed out") from exc
    except OSError as exc:
        raise TransportError(f"cannot connect to {host}:{port}: {exc}") from exc
    return AsyncTCPChannel(reader, writer)
