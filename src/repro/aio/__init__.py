"""``repro.aio`` — the asyncio serving plane.

The sync plane (``repro.transport``, ``repro.metaserver``,
``repro.events.remote``) is thread-per-connection: correct, simple, and
bounded by thread spawn and context-switch cost at high client counts.
This package is the same system on coroutines — one loop multiplexing
every connection — speaking **byte-identical wire formats**, so any
sync endpoint interoperates with any async endpoint:

- :class:`AsyncTCPChannel` — the framed message channel over asyncio
  streams, with per-connection send/recv locks, small-frame write
  coalescing, and drain-based backpressure;
- :class:`AsyncMetadataServer` — the metadata HTTP server, sharing a
  :class:`~repro.metaserver.catalog.MetadataCatalog` (and through it a
  :class:`~repro.pbio.fmserver.FormatServer`) with the threaded server,
  plus request pipelining and graceful drain on shutdown;
- :class:`AsyncMetadataClient` — pooled connections with request
  pipelining: many in-flight format resolutions over one socket;
- :class:`AsyncEventBroker` / :class:`AsyncBackboneClient` — the event
  backbone's broker front end and remote client on coroutines, with
  bounded per-subscriber queues;
- :class:`AsyncFaultyChannel` — PR 1's seeded
  :class:`~repro.faults.plan.FaultPlan` applied unchanged to the async
  plane;
- :class:`BackgroundLoop` — run async components from sync code (tests,
  tools, threaded applications).

See docs/PROTOCOL.md §10 for the concurrency model.
"""

from repro.aio.broker import AsyncBackboneClient, AsyncEventBroker, AsyncRemotePublisher
from repro.aio.channel import (
    AsyncChannel,
    AsyncTCPChannel,
    AsyncTCPListener,
    connect,
    listen,
)
from repro.aio.client import AsyncMetadataClient
from repro.aio.cluster import AsyncClusterClient
from repro.aio.faults import AsyncFaultyChannel
from repro.aio.metaserver import AsyncMetadataServer
from repro.aio.runner import BackgroundLoop

__all__ = [
    "AsyncBackboneClient",
    "AsyncChannel",
    "AsyncClusterClient",
    "AsyncEventBroker",
    "AsyncFaultyChannel",
    "AsyncMetadataClient",
    "AsyncMetadataServer",
    "AsyncRemotePublisher",
    "AsyncTCPChannel",
    "AsyncTCPListener",
    "BackgroundLoop",
    "connect",
    "listen",
]
