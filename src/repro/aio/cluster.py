"""The asyncio face of the sharded metadata plane.

:class:`AsyncClusterClient` is the coroutine counterpart of
:class:`~repro.cluster.client.ClusterClient`: the same
:class:`~repro.cluster.client.ShardRouter` routing (identical ring, so
sync and async clients agree on every key's owner), the same W-of-N
quorum semantics and :class:`~repro.cluster.client.QuorumResult`
reporting — but the write fan-out runs **concurrently**: one
``asyncio.gather`` POSTs the entry to every replica at once, so a slow
or dead replica costs max(latency), not sum.

Per-replica requests ride an
:class:`~repro.aio.client.AsyncMetadataClient` (pooled, pipelining
connections).  That client has no cache or breakers — the async plane's
resilience is the router's replica fallback itself plus the server-side
anti-entropy repair; callers needing stale-serve semantics use the sync
client.
"""

from __future__ import annotations

import asyncio
import json

from repro.aio.client import AsyncMetadataClient
from repro.cluster.client import QuorumResult, QuorumWriteError, ShardRouter, majority
from repro.cluster.ring import ClusterMap
from repro.cluster.store import CatalogEntry
from repro.errors import DiscoveryError
from repro.obs.metrics import get_registry


class AsyncClusterClient:
    """Sharded, replicated metadata access for asyncio callers.

    Same parameters as :class:`~repro.cluster.client.ClusterClient`;
    ``client`` is an :class:`~repro.aio.client.AsyncMetadataClient`.
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        client: AsyncMetadataClient | None = None,
        write_quorum: int | None = None,
        origin: str = "async-cluster-client",
    ) -> None:
        self.router = ShardRouter(cluster_map)
        self.client = client if client is not None else AsyncMetadataClient()
        widest = max(len(s.replicas) for s in cluster_map.shards)
        if write_quorum is None:
            write_quorum = majority(widest)
        if not 1 <= write_quorum <= widest:
            raise DiscoveryError(
                f"write_quorum must be in [1, {widest}], got {write_quorum}"
            )
        self.write_quorum = write_quorum
        self.origin = origin
        self._version = 0
        self.stats: dict[str, int] = {
            "shard_routes": 0,
            "replica_failovers": 0,
            "quorum_ok": 0,
            "quorum_partial": 0,
            "quorum_failed": 0,
        }

    @property
    def cluster_map(self) -> ClusterMap:
        return self.router.cluster_map

    async def close(self) -> None:
        """Close the underlying connection pool."""
        await self.client.close()

    async def __aenter__(self) -> "AsyncClusterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- reads -------------------------------------------------------------------

    async def get(self, path: str) -> bytes:
        """Fetch ``path``, failing over across the owning shard's replicas."""
        shard, replicas = self.router.route(path)
        self.stats["shard_routes"] += 1
        last_error: DiscoveryError | None = None
        for index, replica in enumerate(replicas):
            try:
                body = await self.client.get(f"http://{replica}{path}")
            except DiscoveryError as exc:
                last_error = exc
                self.stats["replica_failovers"] += 1
                self._count(
                    "cluster_client_failovers_total", ("shard",), (shard.name,)
                )
                continue
            outcome = "fallback" if index else "primary"
            self._count("cluster_client_reads_total", ("outcome",), (outcome,))
            return body
        self._count("cluster_client_reads_total", ("outcome",), ("error",))
        raise DiscoveryError(
            f"all {len(replicas)} replicas of shard {shard.name} failed for "
            f"{path}: {last_error}"
        ) from last_error

    # -- writes ------------------------------------------------------------------

    async def publish(self, path: str, text: str) -> QuorumResult:
        """Replicate a document to the owning shard; W-of-N quorum."""
        if not path.startswith("/"):
            raise DiscoveryError(f"paths must start with '/', got {path!r}")
        return await self._write(self._stamp(path, text, deleted=False))

    async def unpublish(self, path: str) -> QuorumResult:
        """Replicate a tombstone for ``path`` (same quorum rules)."""
        return await self._write(self._stamp(path, "", deleted=True))

    def _stamp(self, path: str, text: str, *, deleted: bool) -> CatalogEntry:
        self._version += 1
        return CatalogEntry(
            path=path, text=text, version=self._version,
            origin=self.origin, deleted=deleted,
        )

    async def _write(self, entry: CatalogEntry) -> QuorumResult:
        shard, replicas = self.router.route(entry.path)
        quorum = min(self.write_quorum, len(replicas))
        body = json.dumps({"entries": [entry.to_json()]}).encode("utf-8")

        async def deliver(replica: str) -> str | None:
            try:
                await self.client.post(f"http://{replica}/cluster/entries", body)
                return None
            except DiscoveryError as exc:
                return f"{replica}: {exc}"

        # Concurrent fan-out: every replica sees the write at once, so
        # quorum latency is the fastest W replicas, not a serial walk.
        outcomes = await asyncio.gather(*(deliver(r) for r in replicas))
        failures = tuple(o for o in outcomes if o is not None)
        result = QuorumResult(
            path=entry.path, shard=shard.name, acks=len(replicas) - len(failures),
            replicas=len(replicas), quorum=quorum, failures=failures,
        )
        self.stats[f"quorum_{result.outcome}"] += 1
        self._count(
            "cluster_client_quorum_writes_total", ("outcome",), (result.outcome,)
        )
        if not result.ok:
            raise QuorumWriteError(
                f"write of {entry.path} reached {result.acks}/{result.replicas} "
                f"replicas of shard {shard.name} (quorum {quorum}): "
                f"{'; '.join(failures)}",
                result=result,
            )
        return result

    @staticmethod
    def _count(name: str, label_names: tuple[str, ...],
               labels: tuple[str, ...]) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                name, "cluster client routing/fan-out outcomes", label_names
            ).labels(*labels).inc()
