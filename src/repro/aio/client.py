"""Async metadata retrieval: pooled connections, pipelined requests.

The sync :class:`~repro.metaserver.client.MetadataClient` opens one
connection per request — the right shape for one-shot discovery, wasteful
for a receiver that must resolve *many* format ids at once (a late
joiner on a busy backbone).  :class:`AsyncMetadataClient` keeps a small
pool of persistent connections per host and **pipelines**: a batch of
requests is written back-to-back on one socket, then the responses are
read in order.  Against the async server that is one round-trip's
latency for the whole batch.

Interop with the threaded server is automatic: that server closes the
connection after one response, so a pipelined batch sees EOF early.
The client detects it, remembers the host as non-pipelining, and
finishes the batch one-connection-per-request — same results, just
without the latency win.  No configuration, no protocol negotiation:
the wire decides.
"""

from __future__ import annotations

import asyncio

from repro.errors import DiscoveryError, MetadataHTTPError
from repro.metaserver.http import (
    HTTPRequest,
    HTTPResponse,
    _content_length,
    split_url,
)
from repro.pbio.format import IOFormat


class _PooledConnection:
    """One persistent connection to a metadata host."""

    def __init__(self, key: tuple[str, int], reader, writer) -> None:
        self.key = key
        self.reader = reader
        self.writer = writer
        self.reusable = True
        self.fresh = True  # False once checked out from the idle pool

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (OSError, ConnectionError):
            pass


class AsyncMetadataClient:
    """Pipelined, connection-pooling metadata retrieval.

    Parameters
    ----------
    timeout:
        Per-response deadline (connect shares it).
    pool_size:
        Idle connections kept per host; excess connections are closed
        on check-in rather than pooled.
    """

    def __init__(self, *, timeout: float = 5.0, pool_size: int = 4) -> None:
        if pool_size < 1:
            raise DiscoveryError("pool_size must be at least 1")
        self.timeout = timeout
        self.pool_size = pool_size
        self._idle: dict[tuple[str, int], list[_PooledConnection]] = {}
        self._no_pipeline: set[tuple[str, int]] = set()
        self.requests_sent = 0
        self.connections_opened = 0
        self.pool_reuses = 0
        self.pipeline_fallbacks = 0

    # -- the public surface ------------------------------------------------------

    async def get(self, url: str) -> bytes:
        """Fetch one URL; returns the body (raises on non-200)."""
        (body,) = await self.get_many([url])
        return body

    async def get_many(self, urls: list[str]) -> list[bytes]:
        """Fetch every URL, pipelining per host; bodies in input order.

        URLs on different hosts are fetched concurrently; URLs on one
        host share a pipelined connection.  Any failure propagates (the
        batch is all-or-nothing).
        """
        if not urls:
            return []
        groups: dict[tuple[str, int], list[int]] = {}
        parsed = [split_url(url) for url in urls]
        for index, (host, port, _) in enumerate(parsed):
            groups.setdefault((host, port), []).append(index)
        bodies: list[bytes | None] = [None] * len(urls)

        async def fetch_group(key, indices):
            paths = [parsed[i][2] for i in indices]
            results = await self._fetch_host(key, paths)
            for i, body in zip(indices, results):
                bodies[i] = body

        await asyncio.gather(
            *(fetch_group(key, indices) for key, indices in groups.items())
        )
        return bodies  # type: ignore[return-value]

    async def get_format(self, base_url: str, format_id: bytes) -> IOFormat:
        """Fetch PBIO format metadata by id from a server's /formats tree."""
        body = await self.get(f"{base_url}/formats/{format_id.hex()}")
        return IOFormat.from_wire_metadata(body)

    async def get_formats(
        self, base_url: str, format_ids: list[bytes]
    ) -> list[IOFormat]:
        """Resolve many format ids in one pipelined batch."""
        bodies = await self.get_many(
            [f"{base_url}/formats/{fid.hex()}" for fid in format_ids]
        )
        return [IOFormat.from_wire_metadata(body) for body in bodies]

    async def post(self, url: str, body: bytes) -> bytes:
        """POST ``body`` to one URL over a pooled connection.

        Used for the idempotent ``/cluster/*`` peer-sync messages
        (PROTOCOL.md §13), so the single retry on a stale pooled
        connection is safe.  Never pipelined: a write is one exchange.
        """
        host, port, path = split_url(url)
        return await self._fetch_single((host, port), path, method="POST", body=body)

    async def close(self) -> None:
        """Close every pooled connection."""
        for connections in self._idle.values():
            for connection in connections:
                await connection.close()
        self._idle.clear()

    async def __aenter__(self) -> "AsyncMetadataClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- per-host fetching -------------------------------------------------------

    async def _fetch_host(
        self, key: tuple[str, int], paths: list[str]
    ) -> list[bytes]:
        if key in self._no_pipeline or len(paths) == 1:
            return [await self._fetch_single(key, path) for path in paths]
        remaining = list(paths)
        bodies: list[bytes] = []
        # A server that closes after each response (the threaded plane)
        # truncates the pipeline; retry the unanswered tail without it.
        connection = await self._checkout(key)
        try:
            try:
                for path in remaining:
                    self._write_request(connection, key, path)
                await connection.writer.drain()
                while remaining:
                    response = await self._read_response(connection)
                    bodies.append(self._body_of(response, key, remaining[0]))
                    remaining.pop(0)
                return bodies
            except (DiscoveryError, OSError, ConnectionError) as exc:
                # A one-shot server may close — or RST a socket still
                # holding unread pipelined requests — at any point: the
                # failure can surface from the response read
                # (DiscoveryError) or from the write/drain side
                # (ConnectionResetError).  Either way, finish the batch
                # one-connection-per-request; against a genuinely dead
                # server those fetches fail and the error propagates.
                # An HTTP-level error (4xx/5xx) is a real answer, not a
                # pipelining failure — let it propagate.
                if isinstance(exc, MetadataHTTPError):
                    raise
                self._no_pipeline.add(key)
                self.pipeline_fallbacks += 1
                connection.reusable = False
                tail = [
                    await self._fetch_single(key, path)
                    for path in remaining
                ]
                return bodies + tail
        except BaseException:
            # Aborting a pipeline can leave unread responses buffered on
            # the socket; never return such a connection to the pool.
            connection.reusable = False
            raise
        finally:
            await self._checkin(connection)

    async def _fetch_single(
        self,
        key: tuple[str, int],
        path: str,
        *,
        method: str = "GET",
        body: bytes = b"",
    ) -> bytes:
        for attempt in (1, 2):
            connection = await self._checkout(key)
            try:
                try:
                    self._write_request(connection, key, path, method=method, body=body)
                    await connection.writer.drain()
                except (OSError, ConnectionError) as exc:
                    raise DiscoveryError(f"request write failed: {exc}") from exc
                response = await self._read_response(connection)
            except DiscoveryError:
                connection.reusable = False
                await self._checkin(connection)
                # A pooled connection may have been closed by the server
                # while idle; one retry on a fresh dial disambiguates.
                if attempt == 1 and not connection.fresh:
                    continue
                raise
            answer = self._body_of(response, key, path)
            await self._checkin(connection)
            return answer
        raise DiscoveryError(f"retrieval from {key[0]}:{key[1]} failed")

    def _write_request(
        self,
        connection: _PooledConnection,
        key: tuple[str, int],
        path: str,
        *,
        method: str = "GET",
        body: bytes = b"",
    ) -> None:
        host, port = key
        headers = {"Host": f"{host}:{port}"}
        if body:
            headers["Content-Type"] = "application/json"
        request = HTTPRequest(method, path, headers, body)
        connection.writer.write(request.render())
        self.requests_sent += 1

    def _body_of(
        self, response: HTTPResponse, key: tuple[str, int], path: str
    ) -> bytes:
        if response.status != 200:
            raise MetadataHTTPError(
                f"metadata server {key[0]}:{key[1]} returned {response.status} "
                f"for {path}: {response.body[:200].decode('utf-8', 'replace')}",
                status=response.status,
            )
        return response.body

    async def _read_response(self, connection: _PooledConnection) -> HTTPResponse:
        try:
            head = await asyncio.wait_for(
                connection.reader.readuntil(b"\r\n\r\n"), self.timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise DiscoveryError("connection closed before a response") from exc
        except asyncio.TimeoutError as exc:
            connection.reusable = False
            raise DiscoveryError(f"no response within {self.timeout}s") from exc
        except (OSError, ConnectionError, asyncio.LimitOverrunError) as exc:
            raise DiscoveryError(f"response read failed: {exc}") from exc
        length = _content_length(head.rstrip(b"\r\n"))
        if length is None:
            # HTTP/1.0 close-delimited body: the connection dies with it.
            connection.reusable = False
            try:
                body = await asyncio.wait_for(
                    connection.reader.read(-1), self.timeout
                )
            except (asyncio.TimeoutError, OSError, ConnectionError) as exc:
                raise DiscoveryError(f"body read failed: {exc}") from exc
        else:
            try:
                body = await asyncio.wait_for(
                    connection.reader.readexactly(length), self.timeout
                )
            except asyncio.IncompleteReadError as exc:
                raise DiscoveryError(
                    f"truncated response: got {len(exc.partial)} of {length} bytes"
                ) from exc
            except asyncio.TimeoutError as exc:
                connection.reusable = False
                raise DiscoveryError(f"no response body within {self.timeout}s") from exc
            except (OSError, ConnectionError) as exc:
                raise DiscoveryError(f"body read failed: {exc}") from exc
        return HTTPResponse.parse(head + body)

    # -- the pool -----------------------------------------------------------------

    async def _checkout(self, key: tuple[str, int]) -> _PooledConnection:
        idle = self._idle.get(key)
        if idle:
            self.pool_reuses += 1
            connection = idle.pop()
            connection.fresh = False
            return connection
        host, port = key
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.timeout
            )
        except asyncio.TimeoutError as exc:
            raise DiscoveryError(f"connect to {host}:{port} timed out") from exc
        except OSError as exc:
            raise DiscoveryError(
                f"cannot reach metadata server at {host}:{port}: {exc}"
            ) from exc
        self.connections_opened += 1
        connection = _PooledConnection(key, reader, writer)
        return connection

    async def _checkin(self, connection: _PooledConnection) -> None:
        if not connection.reusable or connection.reader.at_eof():
            await connection.close()
            return
        idle = self._idle.setdefault(connection.key, [])
        if len(idle) >= self.pool_size:
            await connection.close()
            return
        idle.append(connection)
