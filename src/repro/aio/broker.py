"""The event backbone's asyncio front end: broker server and client.

Speaks the exact envelope protocol of :mod:`repro.events.remote`
(docs/PROTOCOL.md §7) over :class:`~repro.aio.channel.AsyncTCPChannel`,
against the same :class:`~repro.events.backbone.EventBackbone` — hand
one backbone to a threaded :class:`~repro.events.remote.BrokerServer`
and an :class:`AsyncEventBroker` and clients of either plane exchange
events through it.

Where the threaded broker spends two threads per connection (reader +
deliverer), the async broker spends two tasks; at a thousand
subscribers that is the difference between a thousand context-switching
threads and one loop.  Each subscriber gets a **bounded** queue
(``queue_limit`` messages): a consumer that stops reading fills its
queue, further deliveries to it fail, and the backbone's existing
consecutive-failure accounting eventually detaches it — backpressure
with the same semantics the sync plane already enforces, instead of
unbounded buffering.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque

from repro.aio.channel import AsyncChannel, AsyncTCPChannel, connect
from repro.errors import ChannelClosedError, TransportError, WireError
from repro.events.backbone import EventBackbone, RoutedFrame
from repro.events.endpoints import Event
from repro.obs.propagate import extract, inject
from repro.events.remote import (
    OP_ADVERTISE,
    OP_EVENT,
    OP_PING,
    OP_PONG,
    OP_PUBLISH,
    OP_SUBSCRIBE,
    OP_SUBSCRIBED,
    pack_envelope,
    unpack_envelope,
)
from repro.pbio.context import (
    HEADER_SIZE,
    KIND_BATCH,
    KIND_DATA,
    KIND_FORMAT,
    IOContext,
)
from repro.pbio.format import IOFormat

#: Default per-subscriber queue bound (messages, not bytes).
DEFAULT_QUEUE_LIMIT = 1024


class _AsyncSinkQueue:
    """A subscriber inbox deliverable from any thread, drained by a task.

    Duck-types :class:`repro.events.backbone._SubscriberQueue`: ``put``
    may be called from the event loop *or* from a publisher thread of a
    co-attached threaded broker; ``get`` is a coroutine.  ``put`` on a
    full queue raises, which the backbone counts as a sink failure —
    the bounded-queue backpressure contract.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, maxsize: int) -> None:
        self._loop = loop
        self._maxsize = maxsize
        self._mutex = threading.Lock()
        self._items: deque[tuple[str, bytes]] = deque()
        self._ready = asyncio.Event()
        self._closed = False

    def put(self, stream: str, message) -> None:
        with self._mutex:
            if self._closed:
                return
            if len(self._items) >= self._maxsize:
                raise TransportError(
                    f"subscriber queue full ({self._maxsize} messages)"
                )
            self._items.append((stream, message))
        self._loop.call_soon_threadsafe(self._ready.set)

    async def _pop(self) -> tuple[str, object]:
        while True:
            with self._mutex:
                if self._items:
                    return self._items.popleft()
                if self._closed:
                    raise TransportError("subscription cancelled")
                self._ready.clear()
            await self._ready.wait()

    async def get(self) -> tuple[str, bytes]:
        stream, item = await self._pop()
        if isinstance(item, RoutedFrame):
            return stream, item.message
        return stream, item

    async def get_frame(self) -> RoutedFrame:
        """The shared :class:`~repro.events.backbone.RoutedFrame`.

        Lets the delivery loop reuse the envelope cached across every
        sink of a fan-out; raw-bytes items (metadata replay) are wrapped
        on the way out.
        """
        stream, item = await self._pop()
        if isinstance(item, RoutedFrame):
            return item
        return RoutedFrame(stream, item)

    def close(self) -> None:
        with self._mutex:
            self._closed = True
        try:
            self._loop.call_soon_threadsafe(self._ready.set)
        except RuntimeError:
            pass  # loop already closed during teardown

    def __len__(self) -> int:
        with self._mutex:
            return len(self._items)


class AsyncEventBroker:
    """An asyncio TCP front end over an :class:`EventBackbone`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backbone: EventBackbone | None = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        if queue_limit < 1:
            raise TransportError("queue_limit must be at least 1")
        self.backbone = backbone if backbone is not None else EventBackbone()
        self.queue_limit = queue_limit
        self._host = host
        self._port = port
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()
        self.connections_served = 0

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise TransportError("broker not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "AsyncEventBroker":
        """Bind and begin accepting connections (fluent)."""
        if self._server is not None:
            raise TransportError("broker already started")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port, backlog=1024
        )
        return self

    async def stop(self) -> None:
        """Stop accepting and tear down every connection."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "AsyncEventBroker":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling --------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        self.connections_served += 1
        channel = AsyncTCPChannel(reader, writer)
        try:
            await self._serve_connection(channel)
        except asyncio.CancelledError:
            pass
        except (OSError, ConnectionError):
            pass
        finally:
            self._tasks.discard(task)
            await channel.close()

    async def _serve_connection(self, channel: AsyncTCPChannel) -> None:
        queue = _AsyncSinkQueue(asyncio.get_running_loop(), self.queue_limit)
        delivery = asyncio.ensure_future(self._delivery_loop(channel, queue))
        subscribed = False
        try:
            while True:
                try:
                    message = await channel.recv()
                except (ChannelClosedError, WireError):
                    break
                op, name, extra, payload = unpack_envelope(message)
                if op == OP_SUBSCRIBE:
                    self.backbone.attach_queue(name, queue)
                    subscribed = True
                    # Ack so the client knows routing is active before it
                    # lets publishers race ahead (same as the sync broker).
                    await channel.send(pack_envelope(OP_SUBSCRIBED, name))
                elif op == OP_PUBLISH:
                    self.backbone.route(name, payload)
                elif op == OP_ADVERTISE:
                    self.backbone.set_metadata_url(name, extra)
                elif op == OP_PING:
                    # One connection's envelopes are processed in order:
                    # the pong confirms every earlier publish routed.
                    await channel.send(pack_envelope(OP_PONG, name))
                else:
                    break  # protocol violation: drop the connection
        finally:
            if subscribed:
                self.backbone.unsubscribe(queue)
            else:
                queue.close()
            delivery.cancel()
            try:
                await delivery
            except (asyncio.CancelledError, Exception):
                pass

    async def _delivery_loop(self, channel: AsyncTCPChannel, queue) -> None:
        try:
            while True:
                frame = await queue.get_frame()
                # envelope() is cached on the shared frame: the first
                # sink of a fan-out builds it, the rest reuse it.
                await channel.send(frame.envelope())
        except (TransportError, ChannelClosedError, OSError):
            return  # subscription cancelled or peer gone


class AsyncBackboneClient:
    """An async client endpoint on a remote broker (either plane).

    Mirrors :class:`~repro.events.remote.RemoteBackboneClient` with
    coroutine methods.  Publishes are fire-and-forget and ride the
    channel's write coalescing, so a burst of small events costs one
    transport write; :meth:`flush` round-trips a PING when a publisher
    needs a processed-up-to-here barrier.
    """

    def __init__(self, channel: AsyncChannel, context: IOContext) -> None:
        self.channel = channel
        self.context = context
        self._pending: list[bytes] = []  # events buffered during subscribe
        self._ready: list[Event] = []  # events expanded from a batch message
        self.patterns: list[str] = []

    @classmethod
    async def connect(
        cls, host: str, port: int, context: IOContext
    ) -> "AsyncBackboneClient":
        """Connect to a broker (threaded or async; the wire is the same)."""
        return cls(await connect(host, port), context)

    # -- publishing ----------------------------------------------------------

    def publisher(self, stream: str) -> "AsyncRemotePublisher":
        """A publishing handle on ``stream`` over this connection."""
        return AsyncRemotePublisher(self, stream)

    # -- subscribing ----------------------------------------------------------

    async def subscribe(self, pattern: str, timeout: float = 10.0) -> None:
        """Register ``pattern``; returns once the broker confirms."""
        await self.channel.send(pack_envelope(OP_SUBSCRIBE, pattern))
        while True:
            message = await self.channel.recv(timeout)
            op, name, _, _ = unpack_envelope(message)
            if op == OP_SUBSCRIBED and name == pattern:
                break
            if op == OP_EVENT:
                self._pending.append(message)
                continue
            raise WireError(f"unexpected op {op} while awaiting subscribe ack")
        self.patterns.append(pattern)

    async def flush(self, timeout: float = 10.0) -> None:
        """Block until the broker has processed everything sent so far."""
        await self.channel.send(pack_envelope(OP_PING, "sync"))
        while True:
            message = await self.channel.recv(timeout)
            op, _, _, _ = unpack_envelope(message)
            if op == OP_PONG:
                return
            if op == OP_EVENT:
                self._pending.append(message)
                continue
            raise WireError(f"unexpected op {op} while awaiting pong")

    async def next_event(
        self, timeout: float | None = None, *, expect: str | None = None
    ) -> Event:
        """Await the next data event on any subscribed pattern.

        Columnar batch messages are expanded transparently: each record
        in the batch becomes one event, in batch order.
        """
        while True:
            if self._ready:
                return self._ready.pop(0)
            if self._pending:
                message = self._pending.pop(0)
            else:
                message = await self.channel.recv(timeout)
            op, stream_name, _, payload = unpack_envelope(message)
            if op in (OP_SUBSCRIBED, OP_PONG):
                continue  # late acks are not events
            if op != OP_EVENT:
                raise WireError(f"unexpected op {op} from broker")
            payload, trace = extract(payload)
            kind, _, _, length, _ = IOContext.parse_header(payload)
            if kind == KIND_FORMAT:
                self.context.learn_format(payload[HEADER_SIZE : HEADER_SIZE + length])
                continue
            if kind == KIND_BATCH:
                batch = self.context.decode_batch(payload)
                self._ready.extend(
                    Event(
                        stream=stream_name,
                        format_name=batch.format_name,
                        values=values,
                        trace=trace,
                    )
                    for values in batch.records
                )
                continue
            if kind != KIND_DATA:
                continue
            decoded = self.context.decode(payload, expect=expect)
            return Event(
                stream=stream_name,
                format_name=decoded.format_name,
                values=decoded.values,
                trace=trace,
            )

    async def close(self) -> None:
        """Disconnect from the broker."""
        await self.channel.close()

    async def __aenter__(self) -> "AsyncBackboneClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class AsyncRemotePublisher:
    """A capture point's async handle on one stream of a remote broker."""

    def __init__(self, client: AsyncBackboneClient, stream: str) -> None:
        self.client = client
        self.stream = stream
        self._announced: set[bytes] = set()
        self.published = 0

    async def publish(self, fmt: IOFormat | str, record: dict) -> None:
        """Encode and publish one record (metadata pushed on first use)."""
        context = self.client.context
        if isinstance(fmt, str):
            fmt = context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            await self.client.channel.send(
                pack_envelope(
                    OP_PUBLISH, self.stream, payload=context.format_message(fmt)
                )
            )
            self._announced.add(fmt.format_id)
        await self.client.channel.send(
            pack_envelope(
                OP_PUBLISH, self.stream, payload=inject(context.encode(fmt, record))
            )
        )
        self.published += 1

    async def publish_batch(self, fmt: IOFormat | str, records, *, use_numpy=None) -> int:
        """Publish ``records`` as ONE columnar batch message; returns
        the record count."""
        context = self.client.context
        if isinstance(fmt, str):
            fmt = context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            await self.client.channel.send(
                pack_envelope(
                    OP_PUBLISH, self.stream, payload=context.format_message(fmt)
                )
            )
            self._announced.add(fmt.format_id)
        message = context.encode_batch(fmt, records, use_numpy=use_numpy)
        await self.client.channel.send(
            pack_envelope(OP_PUBLISH, self.stream, payload=message)
        )
        self.published += 1
        return len(records)

    async def advertise_metadata(self, url: str) -> None:
        """Advertise the stream's schema document URL on the broker."""
        await self.client.channel.send(
            pack_envelope(OP_ADVERTISE, self.stream, extra=url)
        )
