"""XML Schema subset for message metadata (substrate S3).

The paper defines message formats with a subset of the (then-draft) W3C
XML Schema specification: ``complexType`` definitions composing elements
of primitive ``xsd`` datatypes and of previously defined user types, with
``minOccurs``/``maxOccurs`` encoding static arrays, and a wildcard or
field-reference ``maxOccurs`` encoding dynamically sized arrays.

This package implements exactly that subset, plus the simple-type
restriction/enumeration facility the paper's footnote 1 mentions:

- :mod:`~repro.schema.datatypes` — the primitive datatype catalogue, with
  both the 1999-draft hyphenated spellings the paper uses
  (``unsigned-long``) and the final recommendation's camelCase spellings
  (``unsignedLong``), plus lexical validation and value parsing.
- :mod:`~repro.schema.model` — the schema object model
  (:class:`SchemaDocument`, :class:`ComplexType`, :class:`ElementDecl`,
  :class:`SimpleType`).
- :mod:`~repro.schema.parser` — XML document → object model, resolving
  ``type`` attribute QNames through in-scope namespace bindings.
- :mod:`~repro.schema.validator` — validate instance documents against a
  complex type ("schema-checking tools will be applicable to live
  messages", §4.1.1).
- :mod:`~repro.schema.writer` — generate schema documents from the model
  (the inverse direction, used by the metadata server's dynamic
  generation and by the workload generators).
"""

from repro.schema.datatypes import (
    XSD_NAMESPACES,
    PrimitiveType,
    is_xsd_namespace,
    lookup_primitive,
)
from repro.schema.model import (
    ComplexType,
    ElementDecl,
    Occurs,
    SchemaDocument,
    SimpleType,
)
from repro.schema.parser import parse_schema, parse_schema_file
from repro.schema.validator import validate_instance
from repro.schema.writer import schema_to_xml

__all__ = [
    "XSD_NAMESPACES",
    "PrimitiveType",
    "is_xsd_namespace",
    "lookup_primitive",
    "ComplexType",
    "ElementDecl",
    "Occurs",
    "SchemaDocument",
    "SimpleType",
    "parse_schema",
    "parse_schema_file",
    "validate_instance",
    "schema_to_xml",
]
