"""Object model for the schema subset.

A parsed schema document becomes a :class:`SchemaDocument` holding
:class:`ComplexType` definitions (the message formats) and
:class:`SimpleType` definitions (restrictions/enumerations of
primitives).  :class:`ElementDecl` is one field of a message, and
:class:`Occurs` captures the paper's three array forms:

- ``Occurs.scalar()`` — a plain field;
- ``Occurs.fixed(n)`` — a static array (``maxOccurs`` numeric);
- ``Occurs.dynamic(length_field)`` — a dynamically allocated array whose
  run-time length lives in an integer field.  ``maxOccurs="*"`` (or the
  recommendation's ``"unbounded"``) implies a synthesized
  ``<name>_count`` length field; ``maxOccurs="someField"`` names an
  explicit one (both styles appear in the paper §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schema.datatypes import PrimitiveType


@dataclass(frozen=True)
class Occurs:
    """Occurrence constraints of an element: scalar, fixed or dynamic array.

    ``count`` is set for fixed arrays; ``length_field`` for dynamic
    arrays; both are ``None`` for scalars.  ``synthesized_length`` marks
    length fields invented by the parser (``maxOccurs="*"``) rather than
    declared in the document — these become implicit native fields.
    """

    count: int | None = None
    length_field: str | None = None
    synthesized_length: bool = False
    min_occurs: int = 1

    @classmethod
    def scalar(cls) -> "Occurs":
        return cls()

    @classmethod
    def fixed(cls, count: int, min_occurs: int | None = None) -> "Occurs":
        if count <= 0:
            raise SchemaError("fixed array size must be positive")
        return cls(count=count, min_occurs=count if min_occurs is None else min_occurs)

    @classmethod
    def dynamic(
        cls, length_field: str, *, synthesized: bool = False, min_occurs: int = 0
    ) -> "Occurs":
        if not length_field:
            raise SchemaError("dynamic arrays require a length field name")
        return cls(
            length_field=length_field,
            synthesized_length=synthesized,
            min_occurs=min_occurs,
        )

    @property
    def is_scalar(self) -> bool:
        return self.count is None and self.length_field is None

    @property
    def is_fixed_array(self) -> bool:
        return self.count is not None

    @property
    def is_dynamic_array(self) -> bool:
        return self.length_field is not None


@dataclass(frozen=True)
class ElementDecl:
    """One ``<xsd:element>`` inside a complex type.

    ``type_namespace``/``type_name`` hold the resolved QName of the
    element's type: an XSD namespace means a primitive, ``None``
    namespace means a user-defined type in this document.
    """

    name: str
    type_namespace: str | None
    type_name: str
    occurs: Occurs = field(default_factory=Occurs.scalar)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("element declarations require a name")
        if not self.type_name:
            raise SchemaError(f"element {self.name!r} has an empty type")


@dataclass(frozen=True)
class SimpleType:
    """A named restriction of a primitive, possibly enumerated.

    Supports the facet set the paper's footnote 1 alludes to:
    enumeration values plus inclusive numeric bounds.
    """

    name: str
    base: PrimitiveType
    enumeration: tuple[str, ...] = ()
    min_inclusive: int | float | None = None
    max_inclusive: int | float | None = None

    def validate_lexical(self, text: str) -> object:
        """Parse and facet-check a lexical value against this type."""
        value = self.base.validate_lexical(text)
        if self.enumeration and text not in self.enumeration:
            raise SchemaError(
                f"{text!r} is not among the enumerated values of {self.name!r}"
            )
        if self.min_inclusive is not None and value < self.min_inclusive:
            raise SchemaError(f"{text!r} below minInclusive of {self.name!r}")
        if self.max_inclusive is not None and value > self.max_inclusive:
            raise SchemaError(f"{text!r} above maxInclusive of {self.name!r}")
        return value


@dataclass(frozen=True)
class ComplexType:
    """A named message format: an ordered sequence of element decls."""

    name: str
    elements: tuple[ElementDecl, ...]
    documentation: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("complex types require a name")
        if not self.elements:
            raise SchemaError(f"complex type {self.name!r} declares no elements")
        seen: set[str] = set()
        for element in self.elements:
            if element.name in seen:
                raise SchemaError(
                    f"complex type {self.name!r}: duplicate element {element.name!r}"
                )
            seen.add(element.name)

    def element(self, name: str) -> ElementDecl:
        """Return the element declaration named ``name``."""
        for candidate in self.elements:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"complex type {self.name!r} has no element {name!r}")

    def element_names(self) -> list[str]:
        """Element names in declaration order."""
        return [element.name for element in self.elements]


@dataclass
class SchemaDocument:
    """A parsed schema: target namespace plus its type definitions.

    ``complex_types`` and ``simple_types`` preserve document order, which
    matters because user types may only reference earlier definitions
    (exactly the constraint xml2wire's single-pass Catalog construction
    imposes).
    """

    target_namespace: str | None = None
    complex_types: dict[str, ComplexType] = field(default_factory=dict)
    simple_types: dict[str, SimpleType] = field(default_factory=dict)
    documentation: str = ""

    def complex_type(self, name: str) -> ComplexType:
        """Return the complex type named ``name`` (raises SchemaError)."""
        try:
            return self.complex_types[name]
        except KeyError:
            known = ", ".join(self.complex_types) or "(none)"
            raise SchemaError(
                f"schema defines no complex type {name!r}; defined: {known}"
            ) from None

    def simple_type(self, name: str) -> SimpleType:
        """Return the simple type named ``name`` (raises SchemaError)."""
        try:
            return self.simple_types[name]
        except KeyError:
            raise SchemaError(f"schema defines no simple type {name!r}") from None

    def type_names(self) -> list[str]:
        """Complex-type names in declaration order."""
        return list(self.complex_types)
