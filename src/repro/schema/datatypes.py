"""The primitive XML Schema datatypes used for message metadata.

Each :class:`PrimitiveType` couples a schema-level name with:

- a *logical kind* (string / signed / unsigned / float / boolean / char),
  which is what drives the mapping to a BCM marshaling technique;
- a *default C type* — the language-level type xml2wire uses when sizing
  the native structure field (the paper: "Field size is determined by
  using the C sizeof operator on the native data type resulting from the
  Field Type mapping");
- lexical validation and text↔value conversion, used by the instance
  validator and by the text-XML wire baseline.

Both datatype vocabularies are registered: the paper's schema documents
are written against the 1999 working draft (namespace
``http://www.w3.org/1999/XMLSchema``, hyphenated names such as
``unsigned-long``), while the final 2001 recommendation uses
``http://www.w3.org/2001/XMLSchema`` and camelCase names
(``unsignedLong``).  Either vocabulary works with either namespace — the
distinction never mattered to xml2wire and tolerating both keeps old and
new metadata documents equally usable.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Callable

from repro.errors import SchemaError


class LogicalKind(enum.Enum):
    """The marshaling category of a schema primitive."""

    STRING = "string"
    SIGNED = "integer"
    UNSIGNED = "unsigned"
    FLOAT = "float"
    BOOLEAN = "boolean"
    CHAR = "char"


#: Namespace URIs accepted as "the XML Schema namespace".
XSD_NAMESPACES = (
    "http://www.w3.org/1999/XMLSchema",
    "http://www.w3.org/2000/10/XMLSchema",
    "http://www.w3.org/2001/XMLSchema",
)


def is_xsd_namespace(uri: str | None) -> bool:
    """True if ``uri`` is one of the recognized XML Schema namespaces."""
    return uri in XSD_NAMESPACES


_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?$|^[+-]?INF$|^NaN$")


def _parse_int(text: str) -> int:
    if not _INT_RE.match(text.strip()):
        raise SchemaError(f"{text!r} is not a valid integer literal")
    return int(text)


def _parse_float(text: str) -> float:
    stripped = text.strip()
    if not _FLOAT_RE.match(stripped):
        raise SchemaError(f"{text!r} is not a valid float literal")
    if stripped in ("INF", "+INF"):
        return float("inf")
    if stripped == "-INF":
        return float("-inf")
    if stripped == "NaN":
        return float("nan")
    return float(stripped)


def _parse_boolean(text: str) -> bool:
    stripped = text.strip()
    if stripped in ("true", "1"):
        return True
    if stripped in ("false", "0"):
        return False
    raise SchemaError(f"{text!r} is not a valid boolean literal")


def _parse_string(text: str) -> str:
    return text


def _parse_char(text: str) -> str:
    if len(text) != 1:
        raise SchemaError(f"{text!r} is not a single character")
    return text


@dataclass(frozen=True)
class PrimitiveType:
    """One schema primitive datatype.

    ``c_type`` is the default language-level type used for native field
    sizing; ``min_value``/``max_value`` bound the value space for bounded
    integer types (checked by the validator).
    """

    name: str
    kind: LogicalKind
    c_type: str
    parse: Callable[[str], object]
    min_value: int | None = None
    max_value: int | None = None

    def validate_lexical(self, text: str) -> object:
        """Parse and range-check a lexical value; raise SchemaError if bad."""
        value = self.parse(text)
        if self.min_value is not None and isinstance(value, int) and value < self.min_value:
            raise SchemaError(f"{text!r} below minimum for {self.name}")
        if self.max_value is not None and isinstance(value, int) and value > self.max_value:
            raise SchemaError(f"{text!r} above maximum for {self.name}")
        return value

    def format_value(self, value: object) -> str:
        """Render a Python value to its canonical lexical form."""
        if self.kind == LogicalKind.BOOLEAN:
            return "true" if value else "false"
        if self.kind == LogicalKind.FLOAT:
            return repr(float(value))
        if self.kind in (LogicalKind.STRING, LogicalKind.CHAR):
            return str(value)
        return str(int(value))


def _signed(name: str, c_type: str, bits: int | None) -> PrimitiveType:
    if bits is None:
        return PrimitiveType(name, LogicalKind.SIGNED, c_type, _parse_int)
    bound = 1 << (bits - 1)
    return PrimitiveType(name, LogicalKind.SIGNED, c_type, _parse_int, -bound, bound - 1)


def _unsigned(name: str, c_type: str, bits: int | None) -> PrimitiveType:
    top = None if bits is None else (1 << bits) - 1
    return PrimitiveType(name, LogicalKind.UNSIGNED, c_type, _parse_int, 0, top)


#: The 1999 working-draft vocabulary — the paper's Figures 6/9/12 dialect.
_DRAFT_1999 = [
    PrimitiveType("string", LogicalKind.STRING, "char*", _parse_string),
    _signed("integer", "int", None),
    _signed("int", "int", 32),
    _signed("long", "long", None),
    _signed("short", "short", 16),
    _signed("byte", "signed char", 8),
    _unsigned("unsigned-long", "unsigned long", None),
    _unsigned("unsigned-int", "unsigned int", 32),
    _unsigned("unsigned-short", "unsigned short", 16),
    _unsigned("unsigned-byte", "unsigned char", 8),
    _unsigned("non-negative-integer", "unsigned long", None),
    PrimitiveType("float", LogicalKind.FLOAT, "float", _parse_float),
    PrimitiveType("double", LogicalKind.FLOAT, "double", _parse_float),
    PrimitiveType("real", LogicalKind.FLOAT, "double", _parse_float),
    PrimitiveType("boolean", LogicalKind.BOOLEAN, "_Bool", _parse_boolean),
    PrimitiveType("char", LogicalKind.CHAR, "char", _parse_char),
]

#: The 2001 recommendation vocabulary (camelCase spellings).
_REC_2001 = [
    _unsigned("unsignedLong", "unsigned long", None),
    _unsigned("unsignedInt", "unsigned int", 32),
    _unsigned("unsignedShort", "unsigned short", 16),
    _unsigned("unsignedByte", "unsigned char", 8),
    _unsigned("nonNegativeInteger", "unsigned long", None),
]

_BY_NAME: dict[str, PrimitiveType] = {}
for _t in _DRAFT_1999 + _REC_2001:
    _BY_NAME[_t.name] = _t


def lookup_primitive(local_name: str) -> PrimitiveType:
    """Return the primitive datatype with schema-local name ``local_name``.

    Raises :class:`~repro.errors.SchemaError` for unknown names, listing
    a few close spellings when possible.
    """
    try:
        return _BY_NAME[local_name]
    except KeyError:
        candidates = [n for n in _BY_NAME if n.lower() == local_name.lower()]
        hint = f" (did you mean {candidates[0]!r}?)" if candidates else ""
        raise SchemaError(f"unknown XML Schema datatype {local_name!r}{hint}") from None


def all_primitives() -> list[PrimitiveType]:
    """Every registered primitive (both vocabularies)."""
    return list(_BY_NAME.values())
