"""Parse XML Schema documents into the object model.

The accepted dialect is the paper's (Figures 6, 9, 12): an ``xsd:schema``
root containing ``xsd:annotation``, ``xsd:complexType`` and
``xsd:simpleType`` children, with complex types composing ``xsd:element``
declarations either directly (as the paper writes them) or inside an
``xsd:sequence`` wrapper (as the final recommendation requires).  Both the
1999 and 2001 schema namespaces are accepted.

Strictness policy: unknown constructs raise
:class:`~repro.errors.SchemaError` rather than being skipped.  Metadata
drives binary marshaling — silently ignoring part of a format description
would produce corrupt wire data, the worst possible failure mode.
"""

from __future__ import annotations

import os

from repro.errors import SchemaError
from repro.schema.datatypes import is_xsd_namespace, lookup_primitive
from repro.schema.model import (
    ComplexType,
    ElementDecl,
    Occurs,
    SchemaDocument,
    SimpleType,
)
from repro.xmlparse.tree import Element, parse_document


def parse_schema(source: str) -> SchemaDocument:
    """Parse a schema document from XML text."""
    return _build_schema(parse_document(source))


def parse_schema_file(path: str | os.PathLike) -> SchemaDocument:
    """Parse a schema document from a file (UTF-8).

    I/O failures surface as :class:`~repro.errors.SchemaError` so
    callers handle one exception family for "could not get metadata".
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return parse_schema(handle.read())
    except OSError as exc:
        raise SchemaError(f"cannot read schema document {os.fspath(path)!r}: {exc}") from exc


def _build_schema(root: Element) -> SchemaDocument:
    if root.local != "schema" or not is_xsd_namespace(root.namespace):
        raise SchemaError(
            f"expected an xsd:schema root element, found <{root.tag}> "
            f"in namespace {root.namespace!r}"
        )
    schema = SchemaDocument(target_namespace=root.get("targetNamespace"))
    for child in root.children:
        if not is_xsd_namespace(child.namespace):
            raise SchemaError(
                f"unexpected non-schema element <{child.tag}> at line {child.line}"
            )
        if child.local == "annotation":
            schema.documentation += _annotation_text(child)
        elif child.local == "complexType":
            complex_type = _build_complex_type(child, schema)
            if complex_type.name in schema.complex_types:
                raise SchemaError(f"duplicate complex type {complex_type.name!r}")
            schema.complex_types[complex_type.name] = complex_type
        elif child.local == "simpleType":
            simple_type = _build_simple_type(child)
            if simple_type.name in schema.simple_types:
                raise SchemaError(f"duplicate simple type {simple_type.name!r}")
            schema.simple_types[simple_type.name] = simple_type
        else:
            raise SchemaError(
                f"unsupported schema construct <{child.tag}> at line {child.line}"
            )
    if not schema.complex_types and not schema.simple_types:
        raise SchemaError("schema defines no types")
    return schema


def _annotation_text(annotation: Element) -> str:
    parts = [doc.text.strip() for doc in annotation.findall("documentation")]
    return "\n".join(part for part in parts if part)


def _build_complex_type(node: Element, schema: SchemaDocument) -> ComplexType:
    name = node.require("name")
    documentation = ""
    element_nodes: list[Element] = []
    for child in node.children:
        if child.local == "annotation":
            documentation += _annotation_text(child)
        elif child.local == "sequence":
            element_nodes.extend(
                grand for grand in child.children if grand.local != "annotation"
            )
        elif child.local == "element":
            element_nodes.append(child)
        else:
            raise SchemaError(
                f"complex type {name!r}: unsupported construct <{child.tag}> "
                f"at line {child.line}"
            )
    declared: list[ElementDecl] = []
    for element_node in element_nodes:
        if element_node.local != "element":
            raise SchemaError(
                f"complex type {name!r}: unsupported construct "
                f"<{element_node.tag}> at line {element_node.line}"
            )
        declared.append(_build_element(element_node, name))
    elements = _resolve_dynamic_lengths(name, declared)
    complex_type = ComplexType(
        name=name, elements=tuple(elements), documentation=documentation
    )
    _check_type_references(complex_type, schema)
    return complex_type


def _build_element(node: Element, owner: str) -> ElementDecl:
    name = node.require("name")
    type_attr = node.require("type")
    type_namespace, type_name = node.resolve_value_qname(type_attr)
    min_occurs = _parse_min_occurs(node, owner, name)
    max_occurs = node.get("maxOccurs")
    if max_occurs is None or max_occurs == "1":
        occurs = Occurs.scalar() if min_occurs == 1 else Occurs(min_occurs=min_occurs)
    elif max_occurs.isdigit():
        occurs = Occurs.fixed(int(max_occurs), min_occurs=min_occurs)
    elif max_occurs in ("*", "unbounded"):
        occurs = Occurs.dynamic(f"{name}_count", synthesized=True, min_occurs=min_occurs)
    else:
        occurs = Occurs.dynamic(max_occurs, min_occurs=min_occurs)
    return ElementDecl(
        name=name,
        type_namespace=type_namespace,
        type_name=type_name,
        occurs=occurs,
    )


def _parse_min_occurs(node: Element, owner: str, name: str) -> int:
    raw = node.get("minOccurs")
    if raw is None:
        return 1
    if not raw.isdigit():
        raise SchemaError(
            f"complex type {owner!r}, element {name!r}: minOccurs must be "
            f"a non-negative integer, got {raw!r}"
        )
    return int(raw)


def _resolve_dynamic_lengths(
    owner: str, declared: list[ElementDecl]
) -> list[ElementDecl]:
    """Check explicit length-field references and absorb declared ones.

    A ``maxOccurs="fieldName"`` reference must name an integer element of
    the same complex type (the paper: "an element of type xsd:integer
    with an identical name attribute must be present").  A synthesized
    ``<name>_count`` that collides with a declared element simply adopts
    the declared element as its length field.
    """
    by_name = {element.name: element for element in declared}
    for element in declared:
        occurs = element.occurs
        if not occurs.is_dynamic_array:
            continue
        length_name = occurs.length_field
        target = by_name.get(length_name)
        if target is None:
            if occurs.synthesized_length:
                continue  # stays synthesized: an implicit native field
            raise SchemaError(
                f"complex type {owner!r}: element {element.name!r} sizes its "
                f"array with {length_name!r}, but no such element is declared"
            )
        if not is_xsd_namespace(target.type_namespace) or lookup_primitive(
            target.type_name
        ).kind.value not in ("integer", "unsigned"):
            raise SchemaError(
                f"complex type {owner!r}: array length field {length_name!r} "
                f"must be an integer type, found {target.type_name!r}"
            )
        if not target.occurs.is_scalar:
            raise SchemaError(
                f"complex type {owner!r}: array length field {length_name!r} "
                f"must be a scalar"
            )
        if occurs.synthesized_length:
            # maxOccurs="*" and a declared <name>_count: use the declared one.
            by_name[element.name] = ElementDecl(
                name=element.name,
                type_namespace=element.type_namespace,
                type_name=element.type_name,
                occurs=Occurs.dynamic(length_name, min_occurs=occurs.min_occurs),
            )
    return [by_name[element.name] for element in declared]


def _build_simple_type(node: Element) -> SimpleType:
    name = node.require("name")
    restriction = node.find("restriction")
    if restriction is None:
        raise SchemaError(
            f"simple type {name!r}: only restriction-based definitions are "
            f"supported (line {node.line})"
        )
    base_namespace, base_name = restriction.resolve_value_qname(
        restriction.require("base")
    )
    if not is_xsd_namespace(base_namespace):
        raise SchemaError(
            f"simple type {name!r}: restriction base must be a primitive "
            f"xsd type, got {restriction.get('base')!r}"
        )
    base = lookup_primitive(base_name)
    enumeration: list[str] = []
    min_inclusive: int | float | None = None
    max_inclusive: int | float | None = None
    for facet in restriction.children:
        if facet.local == "enumeration":
            enumeration.append(facet.require("value"))
        elif facet.local == "minInclusive":
            min_inclusive = base.validate_lexical(facet.require("value"))
        elif facet.local == "maxInclusive":
            max_inclusive = base.validate_lexical(facet.require("value"))
        elif facet.local == "annotation":
            continue
        else:
            raise SchemaError(
                f"simple type {name!r}: unsupported facet <{facet.tag}> "
                f"at line {facet.line}"
            )
    return SimpleType(
        name=name,
        base=base,
        enumeration=tuple(enumeration),
        min_inclusive=min_inclusive,
        max_inclusive=max_inclusive,
    )


def _check_type_references(complex_type: ComplexType, schema: SchemaDocument) -> None:
    """Every element type must be a primitive or an earlier user type."""
    for element in complex_type.elements:
        if is_xsd_namespace(element.type_namespace):
            lookup_primitive(element.type_name)  # raises if unknown
            continue
        if element.type_namespace not in (None, schema.target_namespace):
            raise SchemaError(
                f"complex type {complex_type.name!r}: element {element.name!r} "
                f"references foreign namespace {element.type_namespace!r}"
            )
        if (
            element.type_name not in schema.complex_types
            and element.type_name not in schema.simple_types
        ):
            raise SchemaError(
                f"complex type {complex_type.name!r}: element {element.name!r} "
                f"references undefined type {element.type_name!r} (user types "
                f"must be defined before use)"
            )
