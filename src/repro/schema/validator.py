"""Validate instance documents against complex types.

The paper argues (§4.1.1) that representing message formats in XML makes
"schema-checking tools applicable to live messages received from other
parties", including determining *which* of a set of formats a message most
closely fits.  This module provides both operations:

- :func:`validate_instance` — strict conformance check of one message
  document against one complex type;
- :func:`classify_instance` — score a message against every type in a
  schema and return the best fit, the paper's format-selection use case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaValidationError
from repro.schema.datatypes import is_xsd_namespace, lookup_primitive
from repro.schema.model import ComplexType, ElementDecl, SchemaDocument
from repro.xmlparse.tree import Element


@dataclass(frozen=True)
class ValidationIssue:
    """One conformance problem found while validating an instance."""

    path: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}: {self.message}"


def validate_instance(
    document: Element, complex_type: ComplexType, schema: SchemaDocument
) -> None:
    """Validate ``document`` against ``complex_type``; raise on failure.

    The document's root element name is not constrained (messages are
    typically named after streams, not types); its *children* must match
    the type's element sequence.  Raises
    :class:`~repro.errors.SchemaValidationError` carrying every issue
    found, not just the first.
    """
    issues = collect_issues(document, complex_type, schema)
    if issues:
        summary = "; ".join(str(issue) for issue in issues[:10])
        more = f" (+{len(issues) - 10} more)" if len(issues) > 10 else ""
        raise SchemaValidationError(
            f"instance does not conform to {complex_type.name!r}: {summary}{more}"
        )


def collect_issues(
    document: Element, complex_type: ComplexType, schema: SchemaDocument
) -> list[ValidationIssue]:
    """Return every conformance issue (empty list means valid)."""
    issues: list[ValidationIssue] = []
    _validate_children(document, complex_type, schema, complex_type.name, issues)
    return issues


def classify_instance(
    document: Element, schema: SchemaDocument
) -> tuple[str, list[ValidationIssue]]:
    """Find the complex type ``document`` most closely fits.

    Returns ``(type_name, issues)`` for the type with the fewest issues;
    ties break toward the type declared first.  Raises
    :class:`~repro.errors.SchemaValidationError` if the schema declares
    no complex types.
    """
    if not schema.complex_types:
        raise SchemaValidationError("schema declares no complex types to classify against")
    best_name = ""
    best_issues: list[ValidationIssue] | None = None
    for name, complex_type in schema.complex_types.items():
        issues = collect_issues(document, complex_type, schema)
        if best_issues is None or len(issues) < len(best_issues):
            best_name, best_issues = name, issues
            if not issues:
                break
    assert best_issues is not None
    return best_name, best_issues


def _validate_children(
    parent: Element,
    complex_type: ComplexType,
    schema: SchemaDocument,
    path: str,
    issues: list[ValidationIssue],
) -> None:
    children = list(parent.children)
    index = 0
    for decl in complex_type.elements:
        if decl.occurs.is_dynamic_array and decl.occurs.synthesized_length:
            expected_low, expected_high = decl.occurs.min_occurs, None
        elif decl.occurs.is_dynamic_array:
            expected_low, expected_high = decl.occurs.min_occurs, None
        elif decl.occurs.is_fixed_array:
            expected_low, expected_high = decl.occurs.min_occurs, decl.occurs.count
        else:
            expected_low, expected_high = decl.occurs.min_occurs, 1
        matched = 0
        while index < len(children) and children[index].local == decl.name:
            _validate_one(children[index], decl, schema, f"{path}/{decl.name}", issues)
            matched += 1
            index += 1
            if expected_high is not None and matched == expected_high:
                break
        if matched < expected_low:
            issues.append(
                ValidationIssue(
                    f"{path}/{decl.name}",
                    f"expected at least {expected_low} occurrence(s), found {matched}",
                )
            )
    while index < len(children):
        issues.append(
            ValidationIssue(
                f"{path}/{children[index].local}",
                "unexpected element (not declared in type, or out of order)",
            )
        )
        index += 1


def _validate_one(
    node: Element,
    decl: ElementDecl,
    schema: SchemaDocument,
    path: str,
    issues: list[ValidationIssue],
) -> None:
    if is_xsd_namespace(decl.type_namespace):
        primitive = lookup_primitive(decl.type_name)
        try:
            primitive.validate_lexical(node.text)
        except Exception as exc:
            issues.append(ValidationIssue(path, str(exc)))
        if node.children:
            issues.append(ValidationIssue(path, "primitive element has child elements"))
        return
    if decl.type_name in schema.simple_types:
        try:
            schema.simple_types[decl.type_name].validate_lexical(node.text)
        except Exception as exc:
            issues.append(ValidationIssue(path, str(exc)))
        return
    nested = schema.complex_types.get(decl.type_name)
    if nested is None:
        issues.append(ValidationIssue(path, f"unknown type {decl.type_name!r}"))
        return
    _validate_children(node, nested, schema, path, issues)
