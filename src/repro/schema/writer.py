"""Generate schema documents from the object model.

The inverse of :mod:`repro.schema.parser`.  Two users need this
direction:

- the metadata server's *dynamic generation* facility (§4.4: metadata
  documents generated per requestor), and
- the workload generators, which synthesize formats of parameterized
  size for scaling experiments.

The emitted dialect matches the paper's figures: the 1999 namespace bound
to the ``xsd`` prefix, ``complexType`` with direct ``element`` children,
hyphenated draft type names left exactly as the model holds them.
"""

from __future__ import annotations

from repro.schema.model import ComplexType, Occurs, SchemaDocument
from repro.xmlparse.writer import escape_attribute

_XSD_1999 = "http://www.w3.org/1999/XMLSchema"


def schema_to_xml(schema: SchemaDocument, *, indent: str = "  ") -> str:
    """Serialize ``schema`` to an XML Schema document string."""
    lines: list[str] = ['<?xml version="1.0"?>']
    target = (
        f'\n{indent * 2}targetNamespace="{escape_attribute(schema.target_namespace)}"'
        if schema.target_namespace
        else ""
    )
    lines.append(f'<xsd:schema xmlns:xsd="{_XSD_1999}"{target}>')
    if schema.documentation:
        lines.append(f"{indent}<xsd:annotation>")
        lines.append(f"{indent * 2}<xsd:documentation>")
        lines.append(f"{indent * 3}{schema.documentation}")
        lines.append(f"{indent * 2}</xsd:documentation>")
        lines.append(f"{indent}</xsd:annotation>")
    for simple in schema.simple_types.values():
        lines.append(f'{indent}<xsd:simpleType name="{escape_attribute(simple.name)}">')
        lines.append(
            f'{indent * 2}<xsd:restriction base="xsd:{simple.base.name}">'
        )
        for value in simple.enumeration:
            lines.append(
                f'{indent * 3}<xsd:enumeration value="{escape_attribute(value)}"/>'
            )
        if simple.min_inclusive is not None:
            lines.append(
                f'{indent * 3}<xsd:minInclusive value="{simple.min_inclusive}"/>'
            )
        if simple.max_inclusive is not None:
            lines.append(
                f'{indent * 3}<xsd:maxInclusive value="{simple.max_inclusive}"/>'
            )
        lines.append(f"{indent * 2}</xsd:restriction>")
        lines.append(f"{indent}</xsd:simpleType>")
    for complex_type in schema.complex_types.values():
        lines.extend(_complex_type_lines(complex_type, indent))
    lines.append("</xsd:schema>")
    return "\n".join(lines) + "\n"


def _complex_type_lines(complex_type: ComplexType, indent: str) -> list[str]:
    lines = [f'{indent}<xsd:complexType name="{escape_attribute(complex_type.name)}">']
    if complex_type.documentation:
        lines.append(f"{indent * 2}<xsd:annotation>")
        lines.append(
            f"{indent * 3}<xsd:documentation>{complex_type.documentation}"
            f"</xsd:documentation>"
        )
        lines.append(f"{indent * 2}</xsd:annotation>")
    for element in complex_type.elements:
        if element.type_namespace is not None:
            type_ref = f"xsd:{element.type_name}"
        else:
            type_ref = element.type_name
        occurs = _occurs_attributes(element.occurs)
        lines.append(
            f'{indent * 2}<xsd:element name="{escape_attribute(element.name)}" '
            f'type="{escape_attribute(type_ref)}"{occurs} />'
        )
    lines.append(f"{indent}</xsd:complexType>")
    return lines


def _occurs_attributes(occurs: Occurs) -> str:
    if occurs.is_fixed_array:
        return f' minOccurs="{occurs.min_occurs}" maxOccurs="{occurs.count}"'
    if occurs.is_dynamic_array:
        if occurs.synthesized_length:
            return f' minOccurs="{occurs.min_occurs}" maxOccurs="*"'
        return f' minOccurs="{occurs.min_occurs}" maxOccurs="{occurs.length_field}"'
    if occurs.min_occurs != 1:
        return f' minOccurs="{occurs.min_occurs}"'
    return ""
