"""Architecture models and C struct layout (substrate S1).

NDR — Natural Data Representation, the wire format at the heart of the
reproduced paper — transmits structures in the *sender's native memory
layout*.  Reproducing that behaviour faithfully requires an explicit model
of what "native" means on a given machine: byte order, the sizes of the C
primitive types, and the alignment rules the C compiler applies when laying
out a struct.

This package provides:

- :class:`~repro.arch.model.ArchitectureModel` — an immutable description
  of one machine/compiler ABI (byte order, type sizes, alignments).
- :class:`~repro.arch.layout.StructLayout` — a computed struct layout
  (field offsets, padding, total size) identical to what a C compiler for
  that architecture would produce, including nested structs and arrays.
- :mod:`~repro.arch.registry` — ready-made models for the machines of the
  paper's era (x86, SPARC, Alpha, PowerPC, ...) plus helpers to look them
  up by name.
- :mod:`~repro.arch.cdecl` — a small parser for C ``typedef struct``
  declarations, so examples can mirror the paper's Appendix A verbatim.

Heterogeneity in this reproduction is *simulated but real*: a single Python
process can lay out and fill a buffer exactly as a big-endian SPARC would,
hand it to a little-endian x86 "receiver", and force the same byte-swapping
and offset-relocation work that a cross-machine exchange requires.
"""

from repro.arch.model import ArchitectureModel, CType, TypeKind
from repro.arch.layout import FieldDecl, FieldSlot, StructLayout, layout_struct
from repro.arch.registry import (
    ALPHA,
    ARM_32,
    MIPS_32,
    NATIVE,
    POWERPC_32,
    SPARC_32,
    SPARC_64,
    X86_32,
    X86_64,
    all_architectures,
    get_architecture,
)

__all__ = [
    "ArchitectureModel",
    "CType",
    "TypeKind",
    "FieldDecl",
    "FieldSlot",
    "StructLayout",
    "layout_struct",
    "ALPHA",
    "ARM_32",
    "MIPS_32",
    "NATIVE",
    "POWERPC_32",
    "SPARC_32",
    "SPARC_64",
    "X86_32",
    "X86_64",
    "all_architectures",
    "get_architecture",
]
