"""Architecture models: byte order, C type sizes, and alignment rules.

An :class:`ArchitectureModel` captures everything about a machine/compiler
pair that affects the in-memory representation of a C struct — which is
exactly the information PBIO's NDR wire format has to carry so a receiver
can interpret a sender's native bytes.
"""

from __future__ import annotations

import enum
import struct as _struct
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ArchError


class TypeKind(enum.Enum):
    """The marshaling category of a C primitive type.

    PBIO separates the notion of field *type* (which selects a marshaling
    technique) from field *size*; ``TypeKind`` is the type half of that
    split.  ``POINTER`` covers ``char*`` string fields and pointers to
    dynamically allocated arrays, whose pointee data travels out-of-line.
    """

    SIGNED_INT = "signed"
    UNSIGNED_INT = "unsigned"
    FLOAT = "float"
    CHAR = "char"
    BOOLEAN = "boolean"
    ENUMERATION = "enumeration"
    POINTER = "pointer"


#: struct-module format characters for (kind, size) pairs, *without* the
#: byte-order prefix, which is supplied by the architecture model.
_STRUCT_CODES: dict[tuple[TypeKind, int], str] = {
    (TypeKind.SIGNED_INT, 1): "b",
    (TypeKind.SIGNED_INT, 2): "h",
    (TypeKind.SIGNED_INT, 4): "i",
    (TypeKind.SIGNED_INT, 8): "q",
    (TypeKind.UNSIGNED_INT, 1): "B",
    (TypeKind.UNSIGNED_INT, 2): "H",
    (TypeKind.UNSIGNED_INT, 4): "I",
    (TypeKind.UNSIGNED_INT, 8): "Q",
    (TypeKind.FLOAT, 4): "f",
    (TypeKind.FLOAT, 8): "d",
    (TypeKind.CHAR, 1): "c",
    (TypeKind.BOOLEAN, 1): "B",
    (TypeKind.BOOLEAN, 4): "I",
    (TypeKind.ENUMERATION, 4): "I",
    (TypeKind.ENUMERATION, 8): "Q",
}


@dataclass(frozen=True)
class CType:
    """One C primitive type as realized by a particular ABI.

    ``alignment`` is the alignment the compiler gives the type *inside a
    struct*, which is not always equal to ``size`` (the i386 System V ABI
    aligns ``double`` to 4 bytes, for example).
    """

    name: str
    kind: TypeKind
    size: int
    alignment: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ArchError(f"type {self.name!r} has non-positive size {self.size}")
        if self.alignment <= 0:
            raise ArchError(
                f"type {self.name!r} has non-positive alignment {self.alignment}"
            )
        if self.size % self.alignment != 0:
            raise ArchError(
                f"type {self.name!r}: size {self.size} is not a multiple of "
                f"alignment {self.alignment}"
            )


@dataclass(frozen=True)
class ArchitectureModel:
    """An immutable description of one machine/compiler ABI.

    Instances describe everything NDR needs: endianness, pointer width,
    and the size/alignment of every C primitive type.  Models compare by
    value, and :meth:`tag` yields a compact wire identifier.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"x86_32"``.
    byte_order:
        ``"little"`` or ``"big"``.
    pointer_size:
        Width of a data pointer in bytes (4 or 8 on real machines).
    types:
        Mapping from C type names (``"int"``, ``"unsigned long"``, ...)
        to their :class:`CType` realization on this architecture.
    """

    name: str
    byte_order: str
    pointer_size: int
    types: Mapping[str, CType] = field(repr=False)

    def __post_init__(self) -> None:
        if self.byte_order not in ("little", "big"):
            raise ArchError(f"byte_order must be 'little' or 'big', got {self.byte_order!r}")
        if self.pointer_size not in (2, 4, 8):
            raise ArchError(f"implausible pointer size {self.pointer_size}")
        required = ("char", "short", "int", "long", "long long", "float", "double")
        missing = [t for t in required if t not in self.types]
        if missing:
            raise ArchError(f"architecture {self.name!r} is missing types: {missing}")

    # -- lookups ---------------------------------------------------------

    def ctype(self, name: str) -> CType:
        """Return the :class:`CType` for a C type name.

        Understands the ``unsigned`` prefix for integer types and the
        ``char*`` / ``void*`` pointer spellings in addition to the names
        present verbatim in :attr:`types`.
        """
        if name in self.types:
            return self.types[name]
        stripped = name.replace("*", "").strip()
        if name.endswith("*") or stripped in ("pointer",):
            return CType(
                name="pointer",
                kind=TypeKind.POINTER,
                size=self.pointer_size,
                alignment=self.pointer_size,
            )
        if name.startswith("unsigned "):
            base = self.ctype(name[len("unsigned "):])
            return CType(
                name=name,
                kind=TypeKind.UNSIGNED_INT,
                size=base.size,
                alignment=base.alignment,
            )
        if name.startswith("signed "):
            base = self.ctype(name[len("signed "):])
            return CType(
                name=name, kind=TypeKind.SIGNED_INT, size=base.size, alignment=base.alignment
            )
        raise ArchError(f"architecture {self.name!r} does not define type {name!r}")

    def sizeof(self, type_name: str) -> int:
        """``sizeof(type_name)`` on this architecture."""
        return self.ctype(type_name).size

    def alignof(self, type_name: str) -> int:
        """``_Alignof(type_name)`` inside a struct on this architecture."""
        return self.ctype(type_name).alignment

    @property
    def is_little_endian(self) -> bool:
        return self.byte_order == "little"

    # -- raw value packing ----------------------------------------------

    def struct_code(self, kind: TypeKind, size: int) -> str:
        """Return the :mod:`struct` format (with byte-order prefix) for a
        scalar of ``kind``/``size`` on this architecture.

        Pointers pack as unsigned integers of the pointer width.
        """
        prefix = "<" if self.is_little_endian else ">"
        if kind == TypeKind.POINTER:
            kind, size = TypeKind.UNSIGNED_INT, self.pointer_size
        try:
            return prefix + _STRUCT_CODES[(kind, size)]
        except KeyError:
            raise ArchError(
                f"no scalar representation for kind={kind.value} size={size} "
                f"on {self.name}"
            ) from None

    def pack_scalar(self, kind: TypeKind, size: int, value: object) -> bytes:
        """Pack one Python value into its native byte representation."""
        code = self.struct_code(kind, size)
        if kind == TypeKind.CHAR:
            if isinstance(value, int):
                value = bytes([value])
            elif isinstance(value, str):
                value = value.encode("ascii")[:1] or b"\x00"
        elif kind == TypeKind.BOOLEAN:
            value = 1 if value else 0
        try:
            return _struct.pack(code, value)
        except _struct.error as exc:
            raise ArchError(
                f"cannot pack {value!r} as kind={kind.value} size={size}: {exc}"
            ) from exc

    def unpack_scalar(self, kind: TypeKind, size: int, data: bytes, offset: int = 0) -> object:
        """Unpack one scalar value from native bytes at ``offset``."""
        code = self.struct_code(kind, size)
        try:
            (value,) = _struct.unpack_from(code, data, offset)
        except _struct.error as exc:
            raise ArchError(
                f"cannot unpack kind={kind.value} size={size} at offset {offset}: {exc}"
            ) from exc
        if kind == TypeKind.BOOLEAN:
            return bool(value)
        return value

    # -- identity ---------------------------------------------------------

    def tag(self) -> str:
        """A compact identifier carried in NDR record headers.

        The tag pins down everything a receiver needs to interpret a base
        record: name, endianness, pointer width, and the sizes of the
        integer types (float formats are IEEE 754 everywhere we model).
        """
        order = "le" if self.is_little_endian else "be"
        sizes = "".join(
            str(self.sizeof(t)) for t in ("short", "int", "long", "long long")
        )
        return f"{self.name}:{order}:p{self.pointer_size}:i{sizes}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.tag()


def make_types(
    *,
    short: int = 2,
    int_: int = 4,
    long: int = 4,
    long_long: int = 8,
    float_: int = 4,
    double: int = 8,
    double_align: int | None = None,
    long_long_align: int | None = None,
) -> dict[str, CType]:
    """Build the standard C type table for an ABI.

    ``double_align`` / ``long_long_align`` override the default
    alignment-equals-size rule for ABIs (like i386 System V) that pack
    8-byte types on 4-byte boundaries inside structs.
    """
    table = {
        "char": CType("char", TypeKind.CHAR, 1, 1),
        "signed char": CType("signed char", TypeKind.SIGNED_INT, 1, 1),
        "unsigned char": CType("unsigned char", TypeKind.UNSIGNED_INT, 1, 1),
        "short": CType("short", TypeKind.SIGNED_INT, short, short),
        "int": CType("int", TypeKind.SIGNED_INT, int_, int_),
        "long": CType("long", TypeKind.SIGNED_INT, long, long),
        "long long": CType(
            "long long", TypeKind.SIGNED_INT, long_long, long_long_align or long_long
        ),
        "float": CType("float", TypeKind.FLOAT, float_, float_),
        "double": CType("double", TypeKind.FLOAT, double, double_align or double),
        "enum": CType("enum", TypeKind.ENUMERATION, int_, int_),
        "_Bool": CType("_Bool", TypeKind.BOOLEAN, 1, 1),
    }
    return table
