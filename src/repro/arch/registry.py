"""Ready-made architecture models for the machines of the paper's era.

The paper's experiments span heterogeneous clusters of x86 Linux boxes and
Sun SPARC workstations; we also model Alpha, PowerPC, MIPS and ARM so the
test suite can exercise every (endianness, word-size, alignment) corner.

All models use IEEE 754 floating point — true of every machine PBIO
supported — so float conversion across architectures is byte-order only.
"""

from __future__ import annotations

import sys

from repro.arch.model import ArchitectureModel, make_types
from repro.errors import ArchError

#: 32-bit x86 (ILP32, little-endian).  The i386 System V ABI aligns
#: ``double`` and ``long long`` to 4 bytes inside structs.
X86_32 = ArchitectureModel(
    name="x86_32",
    byte_order="little",
    pointer_size=4,
    types=make_types(long=4, double_align=4, long_long_align=4),
)

#: 64-bit x86-64 / AMD64 (LP64, little-endian).
X86_64 = ArchitectureModel(
    name="x86_64",
    byte_order="little",
    pointer_size=8,
    types=make_types(long=8),
)

#: 32-bit SPARC V8 (ILP32, big-endian), as in Sun Ultra workstations.
SPARC_32 = ArchitectureModel(
    name="sparc_32",
    byte_order="big",
    pointer_size=4,
    types=make_types(long=4),
)

#: 64-bit SPARC V9 (LP64, big-endian).
SPARC_64 = ArchitectureModel(
    name="sparc_64",
    byte_order="big",
    pointer_size=8,
    types=make_types(long=8),
)

#: DEC Alpha (LP64, little-endian) — the odd 64-bit machine of 2000.
ALPHA = ArchitectureModel(
    name="alpha",
    byte_order="little",
    pointer_size=8,
    types=make_types(long=8),
)

#: 32-bit PowerPC (ILP32, big-endian), e.g. AIX / classic Mac OS servers.
POWERPC_32 = ArchitectureModel(
    name="powerpc_32",
    byte_order="big",
    pointer_size=4,
    types=make_types(long=4),
)

#: 32-bit MIPS in big-endian configuration (SGI IRIX machines).
MIPS_32 = ArchitectureModel(
    name="mips_32",
    byte_order="big",
    pointer_size=4,
    types=make_types(long=4),
)

#: 32-bit ARM (ILP32, little-endian, EABI: 8-byte aligned doubles).
ARM_32 = ArchitectureModel(
    name="arm_32",
    byte_order="little",
    pointer_size=4,
    types=make_types(long=4),
)

_ALL: dict[str, ArchitectureModel] = {
    model.name: model
    for model in (
        X86_32,
        X86_64,
        SPARC_32,
        SPARC_64,
        ALPHA,
        POWERPC_32,
        MIPS_32,
        ARM_32,
    )
}

#: The model matching the interpreter we are actually running on.  Used as
#: the default "sender architecture" so homogeneous benchmarks reflect the
#: real host.
NATIVE: ArchitectureModel = X86_64 if sys.byteorder == "little" else SPARC_64


def get_architecture(name: str) -> ArchitectureModel:
    """Look up a built-in architecture model by name.

    Raises :class:`~repro.errors.ArchError` with the list of known names
    if ``name`` is not registered.
    """
    try:
        return _ALL[name]
    except KeyError:
        known = ", ".join(sorted(_ALL))
        raise ArchError(f"unknown architecture {name!r}; known: {known}") from None


def all_architectures() -> list[ArchitectureModel]:
    """Return every built-in model (useful for cross-product testing)."""
    return list(_ALL.values())
