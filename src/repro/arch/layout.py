"""C struct layout computation: offsets, padding, and total size.

This module answers, for a given :class:`~repro.arch.model.ArchitectureModel`,
exactly the questions the paper's xml2wire answers with ``sizeof`` and its
C++ offset template: where does each field of a struct live, and how big is
the whole thing, *including the padding the compiler inserts*?

The rules implemented are the ones every System V-style C ABI follows:

- each member is placed at the next offset that is a multiple of its
  alignment;
- a struct's own alignment is the maximum alignment of its members;
- the struct's total size is rounded up to a multiple of its alignment
  (tail padding), so arrays of the struct tile correctly;
- an array member has the alignment of its element and the size
  ``count * sizeof(element)``.

A naive sum-of-sizes offset calculation — which the paper explicitly calls
out as wrong — differs from these rules on most real structures, and the
test suite checks both that our layouts match CPython's :mod:`ctypes` on
the host ABI and that the naive calculation disagrees where it should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.arch.model import ArchitectureModel, CType, TypeKind
from repro.errors import ArchError


def _align_up(offset: int, alignment: int) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    return (offset + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class FieldDecl:
    """One member of a struct declaration, before layout.

    Parameters
    ----------
    name:
        Member name.
    type:
        Either a C type name resolvable by the architecture model
        (``"int"``, ``"unsigned long"``, ``"char*"``, ...) or a nested
        :class:`StructLayout` for struct-in-struct composition.
    count:
        Static array length (``unsigned long off[5]`` has ``count=5``).
        ``None`` means a plain scalar member.
    """

    name: str
    type: Union[str, "StructLayout"]
    count: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ArchError(f"invalid field name {self.name!r}")
        if self.count is not None and self.count <= 0:
            raise ArchError(f"field {self.name!r}: array count must be positive")


@dataclass(frozen=True)
class FieldSlot:
    """One member of a struct *after* layout: a placed :class:`FieldDecl`.

    ``offset`` is the byte offset of the member from the start of the
    struct; ``size`` is the total size occupied (element size times count
    for arrays, excluding any padding that follows).
    """

    name: str
    offset: int
    size: int
    alignment: int
    ctype: CType | None
    nested: "StructLayout | None"
    count: int | None

    @property
    def element_size(self) -> int:
        """Size of one element (equals :attr:`size` for scalars)."""
        if self.count is None:
            return self.size
        return self.size // self.count

    @property
    def is_array(self) -> bool:
        return self.count is not None

    @property
    def is_pointer(self) -> bool:
        return self.ctype is not None and self.ctype.kind == TypeKind.POINTER

    @property
    def is_nested(self) -> bool:
        return self.nested is not None


@dataclass(frozen=True)
class StructLayout:
    """A fully laid-out struct on one architecture.

    Instances are produced by :func:`layout_struct` and expose the classic
    C introspection operations: :meth:`offsetof`, :attr:`size`
    (``sizeof``), and per-field slots.
    """

    arch: ArchitectureModel
    name: str
    slots: tuple[FieldSlot, ...]
    size: int
    alignment: int

    def offsetof(self, field_name: str) -> int:
        """``offsetof(struct, field_name)`` for this layout."""
        return self.slot(field_name).offset

    def slot(self, field_name: str) -> FieldSlot:
        """Return the placed slot for ``field_name``.

        Raises :class:`~repro.errors.ArchError` if the struct has no such
        member.
        """
        for slot in self.slots:
            if slot.name == field_name:
                return slot
        raise ArchError(f"struct {self.name!r} has no field {field_name!r}")

    def field_names(self) -> list[str]:
        """Member names in declaration order."""
        return [slot.name for slot in self.slots]

    @property
    def trailing_padding(self) -> int:
        """Bytes of tail padding after the last member."""
        if not self.slots:
            return self.size
        last = self.slots[-1]
        return self.size - (last.offset + last.size)

    @property
    def total_padding(self) -> int:
        """Total padding bytes anywhere in the struct."""
        payload = sum(slot.size for slot in self.slots)
        return self.size - payload

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)


def layout_struct(
    arch: ArchitectureModel,
    name: str,
    fields: Iterable[FieldDecl],
) -> StructLayout:
    """Lay out ``fields`` as a C struct on ``arch``.

    Returns a :class:`StructLayout` whose offsets and size match what a C
    compiler for that ABI would produce.  Nested struct members must have
    been laid out on the *same* architecture model.
    """
    slots: list[FieldSlot] = []
    seen: set[str] = set()
    offset = 0
    max_alignment = 1
    for decl in fields:
        if decl.name in seen:
            raise ArchError(f"struct {name!r}: duplicate field {decl.name!r}")
        seen.add(decl.name)
        if isinstance(decl.type, StructLayout):
            if decl.type.arch is not arch and decl.type.arch != arch:
                raise ArchError(
                    f"struct {name!r}: nested struct {decl.type.name!r} was laid "
                    f"out for {decl.type.arch.name}, not {arch.name}"
                )
            element_size = decl.type.size
            alignment = decl.type.alignment
            ctype = None
            nested = decl.type
        else:
            ctype = arch.ctype(decl.type)
            element_size = ctype.size
            alignment = ctype.alignment
            nested = None
        offset = _align_up(offset, alignment)
        total = element_size * (decl.count or 1)
        slots.append(
            FieldSlot(
                name=decl.name,
                offset=offset,
                size=total,
                alignment=alignment,
                ctype=ctype,
                nested=nested,
                count=decl.count,
            )
        )
        offset += total
        max_alignment = max(max_alignment, alignment)
    size = _align_up(offset, max_alignment) if slots else 0
    return StructLayout(
        arch=arch, name=name, slots=tuple(slots), size=size, alignment=max_alignment
    )


def naive_layout_size(arch: ArchitectureModel, fields: Iterable[FieldDecl]) -> int:
    """The *wrong* sum-of-sizes layout the paper warns against.

    Provided so tests and documentation can demonstrate concretely why
    padding-aware layout is necessary: this value diverges from
    :func:`layout_struct`'s ``size`` on most mixed-type structs.
    """
    total = 0
    for decl in fields:
        if isinstance(decl.type, StructLayout):
            element = decl.type.size
        else:
            element = arch.ctype(decl.type).size
        total += element * (decl.count or 1)
    return total
