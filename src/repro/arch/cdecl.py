"""A small parser for C ``typedef struct`` declarations.

The paper's Appendix A gives its example message formats as C typedefs
(Structures A–D).  This module parses exactly that dialect so examples and
tests can state formats in the paper's own notation:

.. code-block:: c

    typedef struct asdOff_s {
        char* cntrId;
        int fltNum;
        unsigned long off[5];
        unsigned long *eta;
        int eta_count;
    } asdOff;

Supported constructs: primitive types with ``unsigned``/``signed``
qualifiers, pointer members (``char* p`` and ``char *p`` spellings),
fixed-size array members, members of previously declared typedef'd struct
types (composition by nesting), and ``//`` and ``/* */`` comments.  That is
the complete grammar the paper's figures use; anything else raises
:class:`~repro.errors.ArchError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.arch.layout import FieldDecl, StructLayout, layout_struct
from repro.arch.model import ArchitectureModel
from repro.errors import ArchError

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_TYPEDEF_RE = re.compile(
    r"typedef\s+struct\s+(?P<tag>\w+)?\s*\{(?P<body>[^}]*)\}\s*(?P<name>\w+)\s*;",
    re.DOTALL,
)
_MEMBER_RE = re.compile(
    r"^(?P<type>(?:unsigned\s+|signed\s+)?[A-Za-z_]\w*(?:\s+long)?(?:\s+int)?)\s*"
    r"(?P<ptr>\*)?\s*(?P<name>[A-Za-z_]\w*)\s*(?:\[(?P<count>\d+)\])?$"
)

#: Multi-word C type spellings normalized to the names the architecture
#: models define.
_TYPE_NORMALIZE = {
    "unsigned long int": "unsigned long",
    "unsigned int": "unsigned int",
    "long int": "long",
    "unsigned long long int": "unsigned long long",
}


@dataclass(frozen=True)
class RawField:
    """One parsed struct member, before any architecture is chosen."""

    type_name: str
    name: str
    count: int | None
    is_pointer: bool


@dataclass(frozen=True)
class StructDef:
    """One parsed ``typedef struct``: a name and its members in order."""

    name: str
    fields: tuple[RawField, ...]


def _normalize_type(spelling: str) -> str:
    collapsed = " ".join(spelling.split())
    return _TYPE_NORMALIZE.get(collapsed, collapsed)


def parse_structs(source: str) -> dict[str, StructDef]:
    """Parse every ``typedef struct`` in ``source``, in order.

    Returns an insertion-ordered mapping from typedef name to
    :class:`StructDef`.  Later typedefs may reference earlier ones as
    member types.
    """
    text = _COMMENT_RE.sub(" ", source)
    defs: dict[str, StructDef] = {}
    matched_any = False
    for match in _TYPEDEF_RE.finditer(text):
        matched_any = True
        name = match.group("name")
        if name in defs:
            raise ArchError(f"duplicate typedef {name!r}")
        fields: list[RawField] = []
        for raw_member in match.group("body").split(";"):
            member = raw_member.strip()
            if not member:
                continue
            fields.append(_parse_member(name, member))
        if not fields:
            raise ArchError(f"typedef {name!r} declares no members")
        defs[name] = StructDef(name=name, fields=tuple(fields))
    if not matched_any and text.strip():
        raise ArchError("no typedef struct declarations found in source")
    return defs


def _parse_member(struct_name: str, member: str) -> RawField:
    """Parse one ``type name[count]`` member declaration."""
    # Normalize "char* p" / "char *p" / "char * p" to a detectable form.
    normalized = member.replace("*", " * ")
    normalized = " ".join(normalized.split())
    is_pointer = " * " in f" {normalized} " or normalized.endswith("*")
    normalized = normalized.replace(" * ", " ")
    match = _MEMBER_RE.match(normalized.replace(" *", " ").strip())
    if match is None:
        raise ArchError(f"struct {struct_name!r}: cannot parse member {member!r}")
    count = match.group("count")
    return RawField(
        type_name=_normalize_type(match.group("type")),
        name=match.group("name"),
        count=int(count) if count else None,
        is_pointer=is_pointer or bool(match.group("ptr")),
    )


def build_layouts(
    defs: dict[str, StructDef], arch: ArchitectureModel
) -> dict[str, StructLayout]:
    """Lay out every parsed struct on ``arch``, resolving nested types.

    Member types that name an earlier typedef become nested struct slots;
    pointer members become pointer-sized slots regardless of pointee type
    (their data travels out-of-line in NDR).
    """
    layouts: dict[str, StructLayout] = {}
    for name, struct_def in defs.items():
        decls: list[FieldDecl] = []
        for field in struct_def.fields:
            if field.is_pointer:
                decls.append(FieldDecl(field.name, field.type_name + "*", field.count))
            elif field.type_name in layouts:
                decls.append(FieldDecl(field.name, layouts[field.type_name], field.count))
            else:
                decls.append(FieldDecl(field.name, field.type_name, field.count))
        layouts[name] = layout_struct(arch, name, decls)
    return layouts
