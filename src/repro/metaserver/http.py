"""A from-scratch HTTP/1.0 subset for metadata traffic.

Implements exactly what schema retrieval needs: ``GET`` (and ``HEAD``)
requests, status lines, ``Content-Length``-delimited bodies, and
case-insensitive headers.  Persistent connections, chunked encoding and
the rest of HTTP/1.1 are deliberately out of scope — the paper's metadata
fetches are one-shot document retrievals, "in the same manner that web
browsers retrieve other XML documents".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DiscoveryError

_CRLF = "\r\n"

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def split_url(url: str) -> tuple[str, int, str]:
    """Split ``http://host:port/path`` into (host, port, path).

    Raises :class:`~repro.errors.DiscoveryError` for non-http schemes or
    malformed URLs.
    """
    if not url.startswith("http://"):
        raise DiscoveryError(f"only http:// URLs are supported, got {url!r}")
    rest = url[len("http://"):]
    host_port, slash, path = rest.partition("/")
    if not host_port:
        raise DiscoveryError(f"URL {url!r} has no host")
    if ":" in host_port:
        host, _, port_text = host_port.partition(":")
        if not port_text.isdigit():
            raise DiscoveryError(f"URL {url!r} has a malformed port")
        port = int(port_text)
    else:
        host, port = host_port, 80
    return host, port, "/" + path if slash else "/"


@dataclass
class HTTPRequest:
    """One parsed (or to-be-rendered) HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def render(self) -> bytes:
        """Serialize the request to wire bytes."""
        headers = dict(self.headers)
        if self.body and "content-length" not in {k.lower() for k in headers}:
            headers["Content-Length"] = str(len(self.body))
        lines = [f"{self.method} {self.path} HTTP/1.0"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return (_CRLF.join(lines) + _CRLF + _CRLF).encode("ascii") + self.body

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    @classmethod
    def parse(cls, raw: bytes) -> "HTTPRequest":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split(_CRLF)
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise DiscoveryError(f"malformed request line {lines[0]!r}")
        method, path, _version = parts
        headers = _parse_headers(lines[1:])
        return cls(method=method, path=path, headers=headers, body=body)


@dataclass
class HTTPResponse:
    """One parsed (or to-be-rendered) HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def render(self) -> bytes:
        """Serialize the response to wire bytes."""
        reason = REASONS.get(self.status, "Unknown")
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"HTTP/1.0 {self.status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return (_CRLF.join(lines) + _CRLF + _CRLF).encode("latin-1") + self.body

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    @classmethod
    def parse(cls, raw: bytes) -> "HTTPResponse":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split(_CRLF)
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise DiscoveryError(f"malformed status line {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise DiscoveryError(f"malformed status code {parts[1]!r}") from None
        headers = _parse_headers(lines[1:])
        return cls(status=status, headers=headers, body=body)


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, colon, value = line.partition(":")
        if not colon:
            raise DiscoveryError(f"malformed header line {line!r}")
        headers[name.strip()] = value.strip()
    return headers


def read_http_message(recv) -> bytes:
    """Read one complete HTTP message from a socket-style ``recv``.

    Reads until the blank line, then honours Content-Length (or reads to
    EOF when absent, HTTP/1.0 style).
    """
    buffer = bytearray()
    while b"\r\n\r\n" not in buffer:
        chunk = recv(4096)
        if not chunk:
            if not buffer:
                raise DiscoveryError("connection closed before any HTTP data")
            break
        buffer.extend(chunk)
        if len(buffer) > 1 << 20:
            raise DiscoveryError("HTTP header section too large")
    head, _, body = bytes(buffer).partition(b"\r\n\r\n")
    length = _content_length(head)
    if length is None:
        if head.startswith(b"HTTP/"):
            # HTTP/1.0 response without Content-Length: body runs to EOF.
            while True:
                chunk = recv(4096)
                if not chunk:
                    break
                body += chunk
        else:
            # A request without Content-Length has no body (GET/HEAD).
            body = b""
    else:
        while len(body) < length:
            chunk = recv(length - len(body))
            if not chunk:
                raise DiscoveryError("connection closed mid-body")
            body += chunk
        body = body[:length]
    return head + b"\r\n\r\n" + body


def _content_length(head: bytes) -> int | None:
    for line in head.decode("latin-1").split(_CRLF)[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                return int(value.strip())
            except ValueError:
                raise DiscoveryError(f"malformed Content-Length {value!r}") from None
    return None
