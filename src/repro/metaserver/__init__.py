"""The metadata server: remote discovery over HTTP (substrate S7).

The paper's architecture (§4.4, §7) calls for message-format metadata to
live as XML Schema documents on "a publicly known intranet server",
retrieved by URL at run time — with the server optionally *generating*
metadata dynamically per request.  The paper lists HTTP retrieval as the
immediate next step of the implementation; this package builds it:

- :mod:`~repro.metaserver.http` — a from-scratch HTTP/1.0 subset
  (request/response parsing and rendering, URL splitting) sufficient for
  metadata traffic; no stdlib ``http.client``/``urllib.request``.
- :mod:`~repro.metaserver.server` — a threaded server publishing schema
  documents at paths, dynamic-generation callables, and PBIO format
  metadata (``/formats/<hex id>``) bridged from a
  :class:`~repro.pbio.FormatServer`.
- :mod:`~repro.metaserver.client` — retrieval with a TTL cache, so the
  amortization story ("metadata cost is paid once per format") holds
  across repeated lookups.
"""

from repro.metaserver.catalog import MetadataCatalog
from repro.metaserver.client import (
    CircuitBreaker,
    FetchResult,
    MetadataClient,
    RetryPolicy,
    http_get,
    http_post,
)
from repro.metaserver.http import HTTPRequest, HTTPResponse, split_url
from repro.metaserver.server import FlakyMetadataServer, MetadataServer

__all__ = [
    "CircuitBreaker",
    "MetadataCatalog",
    "FetchResult",
    "MetadataClient",
    "RetryPolicy",
    "http_get",
    "http_post",
    "HTTPRequest",
    "HTTPResponse",
    "split_url",
    "FlakyMetadataServer",
    "MetadataServer",
]
