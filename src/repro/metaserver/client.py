"""Metadata retrieval: HTTP GET with a TTL cache.

:func:`http_get` performs one raw retrieval (used by the discovery chain
and by format-id resolution).  :class:`MetadataClient` adds:

- parsing of retrieved documents into
  :class:`~repro.schema.SchemaDocument` objects;
- a TTL cache keyed by URL, so repeated discovery of the same stream's
  metadata costs one network round-trip per TTL window (the paper:
  "the infrequency with which message formats change works in favor of
  a system using remote discovery");
- retrieval of PBIO format metadata by id from a server's ``/formats/``
  tree.
"""

from __future__ import annotations

import socket
import time

from repro.errors import DiscoveryError
from repro.metaserver.http import (
    HTTPRequest,
    HTTPResponse,
    read_http_message,
    split_url,
)
from repro.pbio.format import IOFormat
from repro.schema.model import SchemaDocument
from repro.schema.parser import parse_schema


def http_get(url: str, timeout: float = 5.0) -> bytes:
    """Fetch ``url`` with a one-shot HTTP/1.0 GET; returns the body.

    Raises :class:`~repro.errors.DiscoveryError` on connection failure,
    malformed responses, or non-200 statuses.
    """
    host, port, path = split_url(url)
    request = HTTPRequest("GET", path, {"Host": f"{host}:{port}"})
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise DiscoveryError(f"cannot reach metadata server at {url}: {exc}") from exc
    try:
        sock.settimeout(timeout)
        sock.sendall(request.render())
        raw = read_http_message(sock.recv)
    except (OSError, socket.timeout) as exc:
        raise DiscoveryError(f"retrieval of {url} failed: {exc}") from exc
    finally:
        sock.close()
    response = HTTPResponse.parse(raw)
    if response.status != 200:
        raise DiscoveryError(
            f"metadata server returned {response.status} for {url}: "
            f"{response.body[:200].decode('utf-8', 'replace')}"
        )
    return response.body


class MetadataClient:
    """Schema retrieval with TTL caching.

    Parameters
    ----------
    ttl:
        Seconds a cached document stays fresh.  ``0`` disables caching.
    timeout:
        Per-request socket timeout.
    """

    def __init__(self, *, ttl: float = 60.0, timeout: float = 5.0) -> None:
        self.ttl = ttl
        self.timeout = timeout
        self._cache: dict[str, tuple[float, bytes]] = {}
        self.fetches = 0  # actual network retrievals (cache misses)
        self.hits = 0

    def get_bytes(self, url: str) -> bytes:
        """Fetch ``url``, serving from cache while fresh."""
        now = time.monotonic()
        cached = self._cache.get(url)
        if cached is not None and self.ttl > 0 and now - cached[0] < self.ttl:
            self.hits += 1
            return cached[1]
        body = http_get(url, timeout=self.timeout)
        self.fetches += 1
        self._cache[url] = (now, body)
        return body

    def get_schema(self, url: str) -> SchemaDocument:
        """Fetch and parse a schema document."""
        body = self.get_bytes(url)
        try:
            return parse_schema(body.decode("utf-8"))
        except Exception as exc:
            raise DiscoveryError(
                f"document at {url} is not a valid schema: {exc}"
            ) from exc

    def get_format(self, base_url: str, format_id: bytes) -> IOFormat:
        """Fetch PBIO format metadata by id from a server's /formats tree."""
        body = self.get_bytes(f"{base_url}/formats/{format_id.hex()}")
        return IOFormat.from_wire_metadata(body)

    def invalidate(self, url: str | None = None) -> None:
        """Drop one cached URL, or everything when ``url`` is None."""
        if url is None:
            self._cache.clear()
        else:
            self._cache.pop(url, None)
