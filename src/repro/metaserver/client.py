"""Metadata retrieval: HTTP GET hardened for unreliable networks.

:func:`http_get` performs one raw retrieval (used by the discovery chain
and by format-id resolution).  :class:`MetadataClient` layers on the
resilience the paper's §3.3 deployment regime demands:

- **retry with exponential backoff + jitter** (:class:`RetryPolicy`) —
  transient connection failures and retryable 5xx statuses are retried
  up to a budget; exhaustion raises
  :class:`~repro.errors.RetryExhaustedError`;
- **a per-host circuit breaker** (:class:`CircuitBreaker`) — a host that
  keeps failing is not hammered: after ``failure_threshold`` consecutive
  failures the breaker opens and requests fail fast with
  :class:`~repro.errors.CircuitOpenError` until a cooldown passes, then
  a single half-open probe decides whether to close it again;
- **a bounded TTL + LRU cache with stale-while-revalidate** — repeated
  discovery of the same stream costs one round-trip per TTL window (the
  paper: "the infrequency with which message formats change works in
  favor of a system using remote discovery"), the cache cannot grow
  without bound, and when the server is unreachable an *expired* entry
  is still served, flagged ``stale=True`` — the operational form of the
  paper's format-change-infrequency argument.

Counters (``hits`` / ``fetches`` / ``retries`` / ``stale_serves`` /
``evictions`` and per-breaker ``trips``) make chaos runs reportable.
"""

from __future__ import annotations

import random
import socket
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    DiscoveryError,
    MetadataHTTPError,
    RetryExhaustedError,
)
from repro.obs.metrics import get_registry
from repro.metaserver.http import (
    HTTPRequest,
    HTTPResponse,
    read_http_message,
    split_url,
)
from repro.pbio.format import IOFormat
from repro.pbio.lru import BoundedLRU
from repro.schema.model import SchemaDocument
from repro.schema.parser import parse_schema

#: Default bound on the client's parsed :class:`IOFormat` cache.
DEFAULT_FORMAT_CAPACITY = 256


def http_get(url: str, timeout: float = 5.0) -> bytes:
    """Fetch ``url`` with a one-shot HTTP/1.0 GET; returns the body.

    Raises :class:`~repro.errors.DiscoveryError` on connection failure
    or malformed responses, and :class:`~repro.errors.MetadataHTTPError`
    (carrying the status) on non-200 answers.
    """
    return http_request("GET", url, timeout=timeout)


def http_post(
    url: str,
    body: bytes,
    timeout: float = 5.0,
    content_type: str = "application/json",
) -> bytes:
    """POST ``body`` to ``url`` one-shot; returns the response body.

    The metadata plane's only POSTs are the idempotent ``/cluster/*``
    peer-sync messages (PROTOCOL.md §13); same error contract as
    :func:`http_get`.
    """
    return http_request("POST", url, body, timeout=timeout, content_type=content_type)


def http_request(
    method: str,
    url: str,
    body: bytes = b"",
    *,
    timeout: float = 5.0,
    content_type: str | None = None,
) -> bytes:
    """One-shot HTTP exchange shared by :func:`http_get` / :func:`http_post`."""
    host, port, path = split_url(url)
    headers = {"Host": f"{host}:{port}"}
    if content_type is not None and body:
        headers["Content-Type"] = content_type
    request = HTTPRequest(method, path, headers, body)
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise DiscoveryError(f"cannot reach metadata server at {url}: {exc}") from exc
    try:
        sock.settimeout(timeout)
        sock.sendall(request.render())
        raw = read_http_message(sock.recv)
    except (OSError, socket.timeout) as exc:
        raise DiscoveryError(f"retrieval of {url} failed: {exc}") from exc
    finally:
        sock.close()
    response = HTTPResponse.parse(raw)
    if response.status != 200:
        raise MetadataHTTPError(
            f"metadata server returned {response.status} for {url}: "
            f"{response.body[:200].decode('utf-8', 'replace')}",
            status=response.status,
        )
    length = response.header("Content-Length")
    if length is not None and length.isdigit() and len(response.body) < int(length):
        # A truncated body (server died mid-send) must not parse as a
        # short-but-valid document.
        raise DiscoveryError(
            f"truncated response from {url}: got {len(response.body)} of "
            f"{length} bytes"
        )
    return response.body


@dataclass(frozen=True)
class RetryPolicy:
    """How :class:`MetadataClient` retries failed retrievals.

    Delay before attempt *n*'s retry is
    ``min(cap_delay, base_delay * multiplier**(n-1))``, then jittered by
    up to ``jitter`` of itself (full-jitter style, seeded — chaos runs
    are reproducible).
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    cap_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retryable_statuses: frozenset[int] = frozenset({500, 502, 503, 504})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise DiscoveryError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.cap_delay < 0:
            raise DiscoveryError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise DiscoveryError("jitter must be in [0, 1]")

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay after failed attempt ``attempt`` (1-based)."""
        delay = min(self.cap_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter and delay > 0:
            delay -= rng.uniform(0, self.jitter * delay)
        return delay

    def is_retryable(self, exc: Exception) -> bool:
        """Whether a failed attempt is worth repeating."""
        if isinstance(exc, CircuitOpenError):
            return False
        if isinstance(exc, MetadataHTTPError):
            return exc.status in self.retryable_statuses
        # Connection refusals, timeouts, resets, truncated responses.
        return isinstance(exc, DiscoveryError)


#: Circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker for one host.

    CLOSED: requests flow, consecutive failures are counted.  Reaching
    ``failure_threshold`` trips the breaker to OPEN: requests fail fast
    for ``reset_timeout`` seconds.  The first request after the cooldown
    runs as a HALF_OPEN probe — success closes the breaker, failure
    re-opens it for another cooldown.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise DiscoveryError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0  # CLOSED/HALF_OPEN -> OPEN transitions
        #: Called with (old_state, new_state) on every state change;
        #: MetadataClient hooks this into the metrics registry.
        self.on_transition = on_transition

    def _set_state(self, new_state: str) -> None:
        if new_state == self._state:
            return
        old_state, self._state = self._state, new_state
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half-open``."""
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._set_state(HALF_OPEN)

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        self._maybe_half_open()
        return self._state != OPEN

    def retry_after(self) -> float:
        """Seconds until an OPEN breaker will allow a probe."""
        if self._state != OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.reset_timeout - self._clock())

    def record_success(self) -> None:
        """A request succeeded: close the breaker, clear the streak."""
        self._set_state(CLOSED)
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """A request failed: count it, trip to OPEN at the threshold."""
        self._maybe_half_open()
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._set_state(OPEN)
            self._opened_at = self._clock()
            self.trips += 1


@dataclass(frozen=True)
class FetchResult:
    """One retrieval outcome: the bytes plus how they were obtained."""

    url: str
    body: bytes
    stale: bool = False  # served from an expired cache entry
    cached: bool = False  # served from a fresh cache entry
    attempts: int = 0  # network requests made (0 on a cache hit)


@dataclass
class _CacheEntry:
    fetched_at: float
    body: bytes


class MetadataClient:
    """Schema retrieval with retry, circuit breaking, and a bounded cache.

    Parameters
    ----------
    ttl:
        Seconds a cached document stays fresh.  ``0`` disables caching
        entirely (no fresh hits *and* no stale serves).
    timeout:
        Per-request socket timeout.
    retry:
        The :class:`RetryPolicy`; pass ``RetryPolicy(max_attempts=1)``
        for the old single-shot behavior.
    breaker_threshold / breaker_reset:
        Per-host circuit breaker tuning (consecutive failures to trip,
        seconds until a half-open probe).
    max_entries:
        LRU bound on the cache — a long-running consumer discovering
        many streams cannot grow memory without limit.
    format_capacity:
        LRU bound on the parsed :class:`IOFormat` cache behind
        :meth:`get_format` (``cache="client_format"`` in the
        ``pbio_converter_cache_*`` series) — parsed formats carry
        compiled plans, so cold ones must be evictable.
    stale_ttl:
        How long past expiry an entry may still be stale-served;
        ``None`` means for as long as it survives the LRU.
    seed:
        Seeds retry jitter (deterministic chaos runs).
    """

    def __init__(
        self,
        *,
        ttl: float = 60.0,
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        max_entries: int = 256,
        format_capacity: int = DEFAULT_FORMAT_CAPACITY,
        stale_ttl: float | None = None,
        seed: int = 0,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if max_entries < 1:
            raise DiscoveryError("max_entries must be at least 1")
        self.ttl = ttl
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_entries = max_entries
        self.stale_ttl = stale_ttl
        self._clock = clock
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._breakers: dict[str, CircuitBreaker] = {}
        self._cache: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._formats: BoundedLRU = BoundedLRU(format_capacity, name="client_format")
        self.fetches = 0  # successful network retrievals (cache misses)
        self.hits = 0  # fresh cache hits
        self.retries = 0  # extra attempts beyond the first, per fetch
        self.stale_serves = 0  # expired entries served on fetch failure
        self.evictions = 0  # LRU evictions
        self.last_result: FetchResult | None = None
        #: Cluster-routing counters, incremented by the
        #: :class:`~repro.cluster.client.ClusterClient` riding this
        #: client; all-zero (but always present) for single-server use.
        self.cluster: dict[str, int] = {
            "shard_routes": 0,  # reads routed through the hash ring
            "replica_failovers": 0,  # replicas skipped on a read
            "quorum_ok": 0,  # writes acked by every replica
            "quorum_partial": 0,  # quorum met, some replicas missed
            "quorum_failed": 0,  # quorum not met
            "stale_failover_serves": 0,  # stale cache carried a failover read
        }

    # -- breakers ----------------------------------------------------------------

    def breaker_for(self, host: str) -> CircuitBreaker:
        """The circuit breaker guarding ``host`` (created on first use)."""
        breaker = self._breakers.get(host)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
                clock=self._clock,
                on_transition=self._breaker_transition_hook(host),
            )
            self._breakers[host] = breaker
        return breaker

    @staticmethod
    def _breaker_transition_hook(host: str):
        def record(old_state: str, new_state: str) -> None:
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "metaserver_breaker_transitions_total",
                    "circuit breaker state changes",
                    ("host", "to"),
                ).labels(host, new_state).inc()

        return record

    @staticmethod
    def _obs_request_latency(started: float, outcome: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "metaserver_client_request_seconds",
                "wall time of one HTTP attempt",
                ("outcome",),
            ).labels(outcome).observe(time.perf_counter() - started)

    @staticmethod
    def _obs_cache_event(event: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "metaserver_client_cache_total",
                "metadata client cache events",
                ("event",),
            ).labels(event).inc()

    @property
    def breaker_trips(self) -> int:
        """Total breaker trips across every host."""
        return sum(breaker.trips for breaker in self._breakers.values())

    # -- retrieval ----------------------------------------------------------------

    def _fetch(
        self, url: str, *, method: str = "GET", body: bytes = b""
    ) -> tuple[bytes, int]:
        """Exchange with ``url`` under the retry policy; returns (body, attempts)."""
        host, port, _ = split_url(url)
        breaker = self.breaker_for(f"{host}:{port}")
        last_error: Exception | None = None
        attempts = 0
        for attempt in range(1, self.retry.max_attempts + 1):
            if not breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {host}:{port}; retry in "
                    f"{breaker.retry_after():.3f}s",
                    host=f"{host}:{port}",
                    retry_after=breaker.retry_after(),
                )
            attempts += 1
            if attempt > 1:
                self.retries += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "metaserver_client_retries_total",
                        "fetch attempts beyond the first",
                    ).inc()
            started = time.perf_counter()
            try:
                answer = http_request(method, url, body, timeout=self.timeout)
            except DiscoveryError as exc:
                self._obs_request_latency(started, "error")
                breaker.record_failure()
                last_error = exc
                if attempt < self.retry.max_attempts and self.retry.is_retryable(exc):
                    self._sleep(self.retry.delay_for(attempt, self._rng))
                    continue
                if not self.retry.is_retryable(exc):
                    raise
                break
            self._obs_request_latency(started, "ok")
            breaker.record_success()
            return answer, attempts
        raise RetryExhaustedError(
            f"retrieval of {url} failed after {attempts} attempt(s): {last_error}",
            attempts=attempts,
            last_error=last_error,
        )

    def get(self, url: str) -> FetchResult:
        """Fetch ``url``: fresh cache, then network, then stale cache."""
        now = self._clock()
        entry = self._cache.get(url)
        if entry is not None and self.ttl > 0 and now - entry.fetched_at < self.ttl:
            self._cache.move_to_end(url)
            self.hits += 1
            self._obs_cache_event("hit")
            result = FetchResult(url, entry.body, cached=True)
            self.last_result = result
            return result
        try:
            body, attempts = self._fetch(url)
        except DiscoveryError:
            if entry is not None and self._stale_usable(entry, now):
                self.stale_serves += 1
                self._obs_cache_event("stale_serve")
                self._cache.move_to_end(url)
                result = FetchResult(url, entry.body, stale=True)
                self.last_result = result
                return result
            raise
        self.fetches += 1
        self._obs_cache_event("fetch")
        if self.ttl > 0:
            self._cache[url] = _CacheEntry(self._clock(), body)
            self._cache.move_to_end(url)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self.evictions += 1
                self._obs_cache_event("eviction")
        result = FetchResult(url, body, attempts=attempts)
        self.last_result = result
        return result

    def _stale_usable(self, entry: _CacheEntry, now: float) -> bool:
        if self.ttl <= 0:
            return False
        if self.stale_ttl is None:
            return True
        return now - entry.fetched_at < self.ttl + self.stale_ttl

    def get_bytes(self, url: str) -> bytes:
        """Fetch ``url``, serving from cache while fresh (body only)."""
        return self.get(url).body

    def get_schema(self, url: str) -> SchemaDocument:
        """Fetch and parse a schema document."""
        body = self.get_bytes(url)
        try:
            return parse_schema(body.decode("utf-8"))
        except Exception as exc:
            raise DiscoveryError(
                f"document at {url} is not a valid schema: {exc}"
            ) from exc

    def get_format(self, base_url: str, format_id: bytes) -> IOFormat:
        """Fetch PBIO format metadata by id from a server's /formats tree.

        The parsed :class:`IOFormat` is cached in a bounded LRU keyed by
        format id — content-addressed ids make the entries immune to
        re-registration, so a hit never re-parses (or re-fetches) the
        metadata of a hot format.
        """
        fmt = self._formats.get(format_id)
        if fmt is not None:
            return fmt
        body = self.get_bytes(f"{base_url}/formats/{format_id.hex()}")
        fmt = IOFormat.from_wire_metadata(body)
        self._formats.put(format_id, fmt)
        return fmt

    def get_lineage(self, base_url: str, format_id: bytes) -> dict:
        """Fetch a format's ancestry document (PROTOCOL §16)."""
        import json

        body = self.get_bytes(f"{base_url}/lineage/{format_id.hex()}")
        return json.loads(body.decode("utf-8"))

    def get_compatibility(
        self, base_url: str, wire_id: bytes, native_id: bytes
    ) -> dict:
        """Ask the server how a (wire, native) pair binds (PROTOCOL §16).

        Returns the JSON answer: ``relation`` plus ``compatible`` /
        ``identity`` / ``projection_needed``; with it a receiver decides
        identity fast path vs. projection without downloading either
        format's ancestor schemas.
        """
        import json

        body = self.get_bytes(
            f"{base_url}/lineage/{wire_id.hex()}/compat/{native_id.hex()}"
        )
        return json.loads(body.decode("utf-8"))

    def post(self, url: str, body: bytes) -> bytes:
        """POST ``body`` under the retry policy and circuit breaker.

        Never cached.  Safe to retry because the metadata plane's only
        POSTs — the ``/cluster/*`` peer-sync messages — are idempotent
        (last-writer-wins merge ignores re-deliveries).  This is what
        the :class:`~repro.cluster.client.ClusterClient` fans quorum
        writes out through, so replica writes get the same breaker
        fail-fast and backoff discipline as reads.
        """
        answer, _ = self._fetch(url, method="POST", body=body)
        return answer

    # -- cache management ---------------------------------------------------------

    def invalidate(self, url: str | None = None) -> None:
        """Drop one cached URL, or everything when ``url`` is None."""
        if url is None:
            self._cache.clear()
            self._formats.clear()
        else:
            self._cache.pop(url, None)

    def format_cache_stats(self) -> dict:
        """LRU counters of the parsed-format cache (PROTOCOL §16)."""
        return self._formats.stats()

    def stats(self) -> dict:
        """One reporting surface over every counter the client keeps.

        Cache behavior (``hits`` / ``fetches`` / ``stale_serves`` /
        ``evictions`` / ``entries``), retry effort (``retries``), and
        breaker health — total ``breaker_trips`` plus a ``breakers``
        mapping of host → current state (``closed``/``open``/``half-open``)
        and per-host trip count — in a single dict a chaos harness or
        operator dashboard can log wholesale.  The ``cluster`` section
        carries shard-routing, replica-failover, quorum-write, and
        stale-during-failover counts when a
        :class:`~repro.cluster.client.ClusterClient` rides this client.
        """
        return {
            "cluster": dict(self.cluster),
            "hits": self.hits,
            "fetches": self.fetches,
            "retries": self.retries,
            "stale_serves": self.stale_serves,
            "evictions": self.evictions,
            "entries": len(self._cache),
            "format_cache": self._formats.stats(),
            "breaker_trips": self.breaker_trips,
            "breakers": {
                host: {"state": breaker.state, "trips": breaker.trips}
                for host, breaker in self._breakers.items()
            },
        }
