"""The metadata server: schema documents and format metadata over HTTP.

A :class:`MetadataServer` publishes three kinds of resources:

- **static schema documents** — registered with :meth:`publish_schema`
  (either XML text or a :class:`~repro.schema.SchemaDocument`, which is
  serialized on registration);
- **dynamic documents** — a callable registered with
  :meth:`publish_dynamic`, invoked per request with the
  :class:`~repro.metaserver.http.HTTPRequest`; this realizes the paper's
  "dynamically generate metadata based on information such as requestor
  location or authentication credentials" (§4.4), including
  format-scoping (serving different slices of a stream's schema to
  different subscribers);
- **PBIO format metadata** — ``GET /formats/<hex id>`` served from an
  attached :class:`~repro.pbio.FormatServer`, giving receivers an
  out-of-band resolution path over the network.

The server runs its accept loop on a daemon thread; use it as a context
manager in applications and tests.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from repro.errors import DiscoveryError, TransportError
from repro.metaserver.catalog import DynamicHandler, MetadataCatalog
from repro.metaserver.http import HTTPResponse, read_http_message
from repro.pbio.fmserver import FormatServer
from repro.schema.model import SchemaDocument
from repro.transport.tcp import TCPListener

if TYPE_CHECKING:
    from repro.faults.plan import ServerFaultPlan

__all__ = ["DynamicHandler", "FlakyMetadataServer", "MetadataServer"]


def _observe_request(started: float, plane: str) -> None:
    """Record one served request's latency (shared by both planes)."""
    from repro.obs.metrics import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.histogram(
            "metaserver_request_seconds",
            "request handling latency (parse to response written)",
            ("plane",),
        ).labels(plane).observe(time.perf_counter() - started)


class MetadataServer:
    """Threaded HTTP server for metadata documents.

    Document state lives in a :class:`~repro.metaserver.catalog.MetadataCatalog`;
    pass an existing one to serve the same documents as another front end
    (e.g. an :class:`~repro.aio.metaserver.AsyncMetadataServer`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        catalog: MetadataCatalog | None = None,
        listener: TCPListener | None = None,
    ) -> None:
        # ``listener`` injects a pre-bound acceptor: a worker pool hands
        # in an SO_REUSEPORT-bound listener (or the accept-handoff shim,
        # which duck-types ``accept``/``address``/``close``) so N server
        # instances can share one port (PROTOCOL §15).
        self._listener = listener if listener is not None else TCPListener(host, port)
        self.catalog = catalog if catalog is not None else MetadataCatalog()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.requests_served = 0

    # -- publication -----------------------------------------------------------

    def publish_schema(self, path: str, schema: SchemaDocument | str) -> str:
        """Publish a schema document at ``path``; returns its full URL."""
        self.catalog.publish_schema(path, schema)
        return self.url_for(path)

    def publish_dynamic(self, path: str, handler: DynamicHandler) -> str:
        """Publish a per-request generated document at ``path``."""
        self.catalog.publish_dynamic(path, handler)
        return self.url_for(path)

    def unpublish(self, path: str) -> None:
        """Remove a document (static or dynamic); missing paths are a no-op."""
        self.catalog.unpublish(path)

    def attach_format_server(self, format_server: FormatServer) -> None:
        """Expose ``format_server``'s formats under ``/formats/<hex id>``."""
        self.catalog.attach_format_server(format_server)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.address

    def url_for(self, path: str) -> str:
        """Absolute URL of ``path`` on this server."""
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> "MetadataServer":
        """Start the accept loop on a daemon thread (fluent)."""
        if self._thread is not None:
            raise DiscoveryError("server already started")
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and join the accept thread."""
        self._stop.set()
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetadataServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request handling ------------------------------------------------------------

    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            try:
                channel = self._listener.accept(timeout=0.2)
            except TransportError:
                continue
            except Exception:
                return  # listener closed
            worker = threading.Thread(
                target=self._handle_connection, args=(channel,), daemon=True
            )
            worker.start()

    def _handle_connection(self, channel) -> None:
        try:
            raw = read_http_message(channel._sock.recv)
            started = time.perf_counter()
            response = self._respond(raw)
            self._transmit(channel, response)
            self.requests_served += 1
            _observe_request(started, "threaded")
        except Exception:
            try:
                channel._sock.sendall(HTTPResponse(500).render())
            except OSError:
                pass
        finally:
            channel.close()

    def _transmit(self, channel, response: HTTPResponse) -> None:
        """Send the rendered response (hook for fault-injecting subclasses)."""
        channel._sock.sendall(response.render())

    def _respond(self, raw: bytes) -> HTTPResponse:
        return self.catalog.respond(raw)


class FlakyMetadataServer(MetadataServer):
    """A :class:`MetadataServer` that misbehaves on a deterministic schedule.

    Each request consults a
    :class:`~repro.faults.plan.ServerFaultPlan` and may, instead of the
    clean answer:

    - **error** — substitute a 5xx response (``plan.error_status``);
    - **hang** — stall ``plan.hang_seconds`` and drop the connection
      without sending anything, so the client sees a timeout or a
      closed-before-response failure;
    - **truncate** — send the headers (with the full ``Content-Length``)
      but only half the body, then close: the client must detect the
      short read rather than parse a cut-off document.

    Faulted requests are counted in :attr:`faults_injected` and do *not*
    increment ``requests_served``, so tests can assert exactly how many
    clean answers went out.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        plan: "ServerFaultPlan | None" = None,
    ) -> None:
        from repro.faults.plan import ServerFaultPlan

        super().__init__(host, port)
        self.plan = plan if plan is not None else ServerFaultPlan()
        self.faults_injected = 0

    def _handle_connection(self, channel) -> None:
        action = self.plan.decide()
        if action is None:
            super()._handle_connection(channel)
            return
        self.faults_injected += 1
        try:
            raw = read_http_message(channel._sock.recv)
            if action == "error":
                channel._sock.sendall(
                    HTTPResponse(
                        self.plan.error_status, body=b"injected server fault"
                    ).render()
                )
            elif action == "hang":
                time.sleep(self.plan.hang_seconds)
                # fall through to close without a response
            elif action == "truncate":
                wire = self._respond(raw).render()
                head_end = wire.find(b"\r\n\r\n") + 4
                cut = head_end + max(1, (len(wire) - head_end) // 2)
                channel._sock.sendall(wire[:cut])
        except Exception:
            pass
        finally:
            channel.close()
