"""The metadata catalog: server-independent document state and routing.

Both serving planes — the threaded
:class:`~repro.metaserver.server.MetadataServer` and the asyncio
:class:`~repro.aio.metaserver.AsyncMetadataServer` — answer requests out
of one of these.  A catalog owns the published documents (static schema
text, dynamic per-request generators, and an attached
:class:`~repro.pbio.fmserver.FormatServer` for ``/formats/<hex id>``)
and the request → response logic; the servers own sockets, threads or
tasks, and lifecycle.  Handing the *same* catalog to a threaded and an
async server puts both front ends over identical state, which is how
the cross-plane interop tests prove byte-identical behavior.

Thread safety: publication and lookup take an internal lock, so a
threaded server's worker threads and an event loop may share a catalog
freely.  Dynamic handlers run outside the lock (they may be slow) and
must be thread-safe themselves if the catalog is shared across planes.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import DiscoveryError
from repro.metaserver.http import HTTPRequest, HTTPResponse
from repro.pbio.evolution import FormatLineage
from repro.pbio.fmserver import FormatServer
from repro.schema.model import SchemaDocument
from repro.schema.writer import schema_to_xml

DynamicHandler = Callable[[HTTPRequest], str]

_XML_TYPE = "text/xml; charset=utf-8"
_JSON_TYPE = "application/json; charset=utf-8"


class MetadataCatalog:
    """Published metadata documents plus the request-answering logic."""

    def __init__(self) -> None:
        self._documents: dict[str, str] = {}
        self._dynamic: dict[str, DynamicHandler] = {}
        self._format_server: FormatServer | None = None
        self._lineage: FormatLineage | None = None
        self._prefix_handlers: dict[str, Callable[[HTTPRequest], HTTPResponse]] = {}
        self._lock = threading.Lock()

    # -- publication -----------------------------------------------------------

    def publish_schema(self, path: str, schema: SchemaDocument | str) -> None:
        """Publish a schema document (XML text or a parsed document)."""
        if not path.startswith("/"):
            raise DiscoveryError(f"paths must start with '/', got {path!r}")
        text = schema if isinstance(schema, str) else schema_to_xml(schema)
        with self._lock:
            self._documents[path] = text

    def publish_dynamic(self, path: str, handler: DynamicHandler) -> None:
        """Publish a per-request generated document at ``path``."""
        if not path.startswith("/"):
            raise DiscoveryError(f"paths must start with '/', got {path!r}")
        with self._lock:
            self._dynamic[path] = handler

    def unpublish(self, path: str) -> None:
        """Remove a document (static or dynamic); missing paths are a no-op."""
        with self._lock:
            self._documents.pop(path, None)
            self._dynamic.pop(path, None)

    def attach_format_server(self, format_server: FormatServer) -> None:
        """Expose ``format_server``'s formats under ``/formats/<hex id>``."""
        self._format_server = format_server

    @property
    def format_server(self) -> FormatServer | None:
        """The attached format server, if any."""
        return self._format_server

    def attach_lineage(self, lineage: FormatLineage) -> None:
        """Answer ``/lineage/*`` queries from ``lineage`` (PROTOCOL §16).

        Endpoints (both planes — the catalog is the shared layer):

        - ``GET /lineage/<hex id>`` — the ancestry document (JSON);
        - ``GET /lineage/<wire hex>/compat/<native hex>`` — the
          compatibility answer (JSON): ``relation`` plus the spelled-out
          ``compatible`` / ``identity`` / ``projection_needed`` flags.

        Static documents published at ``/lineage/...`` paths (e.g. the
        replicated output of :meth:`FormatLineage.documents` shipped
        through ``repro.cluster``) take precedence over the attached
        registry, exactly like any other catalog document.
        """
        self._lineage = lineage

    @property
    def lineage(self) -> FormatLineage | None:
        """The attached lineage registry, if any."""
        return self._lineage

    def attach_prefix_handler(
        self, prefix: str, handler: Callable[[HTTPRequest], HTTPResponse]
    ) -> None:
        """Route every request whose path starts with ``prefix`` (any
        method, including POST) to ``handler``.

        Prefix handlers answer *before* the GET-only gate and the
        document tables, which is how control surfaces — the cluster
        peer-sync protocol (§13) and the worker-pool catalog-sync
        protocol (§15) — ride on the same front ends as the documents.
        Catalogs without a handler answer 404 under the prefix exactly
        as before, so plain deployments are unaffected.
        """
        if not prefix.startswith("/"):
            raise DiscoveryError(f"prefixes must start with '/', got {prefix!r}")
        self._prefix_handlers[prefix] = handler

    def attach_cluster_handler(
        self, handler: Callable[[HTTPRequest], HTTPResponse]
    ) -> None:
        """Route ``/cluster/*`` requests (including POST) to ``handler``.

        Registered by a :class:`~repro.cluster.node.ClusterNode`; every
        front end serving this catalog then speaks the peer-sync
        protocol of PROTOCOL.md §13.  Shorthand for
        :meth:`attach_prefix_handler` with the ``/cluster/`` prefix.
        """
        self.attach_prefix_handler("/cluster/", handler)

    def paths(self) -> list[str]:
        """Every published path (static and dynamic)."""
        with self._lock:
            return sorted(set(self._documents) | set(self._dynamic))

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> dict[str, str]:
        """The static documents as a picklable ``{path: text}`` dict.

        Dynamic handlers, the format server, and prefix handlers are
        process-local callables and are *not* captured — each worker
        re-attaches its own (PROTOCOL §15.3).
        """
        with self._lock:
            return dict(self._documents)

    def load_snapshot(self, documents: dict[str, str]) -> None:
        """Replace the static documents with ``documents`` atomically."""
        with self._lock:
            self._documents = dict(documents)

    # -- request handling ------------------------------------------------------

    def respond(self, raw: bytes) -> HTTPResponse:
        """Answer one raw HTTP request with a response (never raises)."""
        try:
            request = HTTPRequest.parse(raw)
        except DiscoveryError:
            return HTTPResponse(400, body=b"malformed request")
        bare_path = request.path.split("?", 1)[0]
        for prefix, handler in self._prefix_handlers.items():
            if bare_path.startswith(prefix):
                # Control traffic (may POST); everything else stays GET-only.
                try:
                    return handler(request)
                except Exception as exc:
                    return HTTPResponse(
                        500, body=f"{prefix} handler failed: {exc}".encode()
                    )
        if request.method not in ("GET", "HEAD"):
            return HTTPResponse(405, body=b"only GET is supported")
        response = self.lookup(request)
        if request.method == "HEAD":
            response.headers.setdefault("Content-Length", str(len(response.body)))
            response.body = b""
        return response

    def lookup(self, request: HTTPRequest) -> HTTPResponse:
        """Resolve a parsed request against the published documents."""
        path = request.path.split("?", 1)[0]
        with self._lock:
            document = self._documents.get(path)
            handler = self._dynamic.get(path)
        if document is not None:
            return HTTPResponse(
                200, {"Content-Type": _XML_TYPE}, document.encode("utf-8")
            )
        if handler is not None:
            try:
                generated = handler(request)
            except Exception as exc:
                return HTTPResponse(500, body=f"generator failed: {exc}".encode())
            return HTTPResponse(
                200, {"Content-Type": _XML_TYPE}, generated.encode("utf-8")
            )
        if path.startswith("/formats/") and self._format_server is not None:
            return self._serve_format(path[len("/formats/"):])
        if path.startswith("/lineage/") and self._lineage is not None:
            return self._serve_lineage(path[len("/lineage/"):])
        if path == "/metrics":
            # Both serving planes answer out of this catalog, so one
            # handler here gives every front end the /metrics endpoint.
            from repro.obs.metrics import get_registry

            return HTTPResponse(
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                get_registry().render().encode("utf-8"),
            )
        return HTTPResponse(404, body=f"no document at {path}".encode())

    def _serve_format(self, hex_id: str) -> HTTPResponse:
        try:
            format_id = bytes.fromhex(hex_id)
        except ValueError:
            return HTTPResponse(400, body=b"format ids are hex strings")
        try:
            metadata = self._format_server.resolve_metadata(format_id)
        except Exception:
            return HTTPResponse(404, body=f"unknown format {hex_id}".encode())
        return HTTPResponse(
            200, {"Content-Type": "application/x-pbio-format"}, metadata
        )

    def _serve_lineage(self, rest: str) -> HTTPResponse:
        import json

        from repro.errors import DecodeError

        parts = rest.split("/")
        try:
            if len(parts) == 1:
                document = self._lineage.describe(bytes.fromhex(parts[0]))
            elif len(parts) == 3 and parts[1] == "compat":
                document = self._lineage.compatibility(
                    bytes.fromhex(parts[0]), bytes.fromhex(parts[2])
                )
            else:
                return HTTPResponse(
                    400,
                    body=b"use /lineage/<id> or /lineage/<wire>/compat/<native>",
                )
        except ValueError:
            return HTTPResponse(400, body=b"format ids are hex strings")
        except DecodeError as exc:
            return HTTPResponse(404, body=str(exc).encode())
        return HTTPResponse(
            200,
            {"Content-Type": _JSON_TYPE},
            json.dumps(document, sort_keys=True).encode("utf-8"),
        )
