"""Consistent-hash shard ring and the cluster layout it routes over.

The metadata plane scales out by splitting the key space (document
paths, format names) across **shards**, each served by **N replicas**.
Two structures express that layout:

- :class:`HashRing` — a classic consistent-hash ring over shard names
  with virtual nodes.  Every shard contributes ``vnodes`` points placed
  by a *stable* hash (BLAKE2b, not Python's per-process ``hash``), so
  every client and every server computes the identical key → shard
  mapping with no coordination.  Virtual nodes keep the per-shard load
  within a small factor of fair share, and adding or removing one shard
  moves only the keys that fall between its points and their successors
  — roughly ``1/shards`` of the key space (the minimal-movement
  property the hypothesis suite pins down).
- :class:`ClusterMap` — the shard → replica-address assignment plus a
  monotonically increasing ``version``.  A map is an immutable value:
  topology changes (join/leave) produce a *new* map, and
  :meth:`ClusterNode.set_cluster_map <repro.cluster.node.ClusterNode.set_cluster_map>`
  reconciles a node from one map to the next by streaming entries it no
  longer owns to the new owners.

Replica *preference order* for a key is the shard's replica list rotated
by the key's hash: every replica is primary for an equal slice of its
shard's keys, so read load spreads without any shared state.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from repro.errors import DiscoveryError

#: Virtual nodes per shard; 64 keeps the max/mean key imbalance well
#: under 2x for any realistic shard count while the ring stays tiny.
DEFAULT_VNODES = 64


def stable_hash(data: str | bytes) -> int:
    """A 64-bit hash that is identical across processes and runs.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so
    it can never be used for routing decisions that clients and servers
    must agree on.  BLAKE2b truncated to 8 bytes is stable, fast, and
    well distributed.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """A consistent-hash ring mapping keys onto shard names."""

    def __init__(self, shards: Iterable[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        names = list(shards)
        if not names:
            raise DiscoveryError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise DiscoveryError(f"duplicate shard names in {names}")
        if vnodes < 1:
            raise DiscoveryError("vnodes must be at least 1")
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for name in names:
            for vnode in range(vnodes):
                points.append((stable_hash(f"{name}\x00{vnode}"), name))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]
        self.shards = tuple(sorted(names))

    def shard_for(self, key: str | bytes) -> str:
        """The shard owning ``key`` (first ring point clockwise)."""
        index = bisect.bisect_right(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0  # wrap past the highest point
        return self._owners[index]


@dataclass(frozen=True)
class Shard:
    """One shard: a name on the ring plus its replica addresses."""

    name: str
    replicas: tuple[str, ...]  # "host:port" of each replica's HTTP server

    def __post_init__(self) -> None:
        if not self.replicas:
            raise DiscoveryError(f"shard {self.name!r} has no replicas")
        if len(set(self.replicas)) != len(self.replicas):
            raise DiscoveryError(f"shard {self.name!r} repeats a replica")


@dataclass(frozen=True)
class ClusterMap:
    """The versioned shard layout every participant routes by."""

    shards: tuple[Shard, ...]
    version: int = 1
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        if not self.shards:
            raise DiscoveryError("a cluster map needs at least one shard")

    @cached_property
    def ring(self) -> HashRing:
        return HashRing((shard.name for shard in self.shards), vnodes=self.vnodes)

    @cached_property
    def _by_name(self) -> dict[str, Shard]:
        return {shard.name: shard for shard in self.shards}

    def shard(self, name: str) -> Shard:
        """The shard called ``name`` (raises for unknown names)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DiscoveryError(f"no shard named {name!r}") from None

    def shard_for(self, key: str | bytes) -> Shard:
        """The shard owning ``key``."""
        return self._by_name[self.ring.shard_for(key)]

    def replicas_for(self, key: str | bytes) -> tuple[str, ...]:
        """Replica addresses for ``key``, in preference order.

        The owning shard's replica list rotated by the key hash: each
        replica is the preferred (first-tried) one for an equal share of
        the shard's keys, and every client computes the same order.
        """
        replicas = self.shard_for(key).replicas
        start = stable_hash(key) % len(replicas)
        return replicas[start:] + replicas[:start]

    def addresses(self) -> tuple[str, ...]:
        """Every distinct replica address, sorted."""
        seen: set[str] = set()
        for shard in self.shards:
            seen.update(shard.replicas)
        return tuple(sorted(seen))

    def shards_of(self, address: str) -> tuple[Shard, ...]:
        """The shards ``address`` replicates."""
        return tuple(s for s in self.shards if address in s.replicas)

    # -- construction and wire form ---------------------------------------------

    @classmethod
    def grid(
        cls,
        addresses: Sequence[str],
        *,
        shards: int,
        replicas: int,
        version: int = 1,
        vnodes: int = DEFAULT_VNODES,
    ) -> "ClusterMap":
        """Partition ``shards * replicas`` addresses into an S×R layout."""
        if shards < 1 or replicas < 1:
            raise DiscoveryError("shards and replicas must be at least 1")
        if len(addresses) != shards * replicas:
            raise DiscoveryError(
                f"need exactly {shards * replicas} addresses for a "
                f"{shards}x{replicas} cluster, got {len(addresses)}"
            )
        return cls(
            shards=tuple(
                Shard(
                    name=f"s{index}",
                    replicas=tuple(addresses[index * replicas:(index + 1) * replicas]),
                )
                for index in range(shards)
            ),
            version=version,
            vnodes=vnodes,
        )

    def to_json(self) -> dict:
        """A JSON-serializable form (the POST /cluster/map body)."""
        return {
            "version": self.version,
            "vnodes": self.vnodes,
            "shards": [
                {"name": shard.name, "replicas": list(shard.replicas)}
                for shard in self.shards
            ],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ClusterMap":
        """Rebuild a map from :meth:`to_json` output."""
        try:
            return cls(
                shards=tuple(
                    Shard(name=s["name"], replicas=tuple(s["replicas"]))
                    for s in obj["shards"]
                ),
                version=int(obj["version"]),
                vnodes=int(obj.get("vnodes", DEFAULT_VNODES)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DiscoveryError(f"malformed cluster map: {exc}") from exc
