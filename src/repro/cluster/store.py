"""Versioned catalog entries and the replica-local store that merges them.

Replication needs more than the catalog's ``path → text`` mapping: when
two replicas diverge (a write landed on one while the other was dead),
merging them must be **deterministic, commutative, and idempotent** so
anti-entropy converges every replica to the same state no matter the
order peers exchange entries.  A :class:`CatalogEntry` therefore carries
a total-orderable stamp:

``(version, origin)`` — the writer's monotonically increasing sequence
number, tie-broken by the writer's id.  Last-writer-wins: an incoming
entry replaces the local one iff its stamp is strictly greater.  Deletes
are **tombstones** (``deleted=True`` with the same stamp discipline) so
an unpublish replicates and survives merges exactly like a publish.

:class:`ReplicaStore` holds one replica's entries, projects the live
ones into a :class:`~repro.metaserver.catalog.MetadataCatalog` (so the
ordinary ``GET /path`` read path serves replicated documents with zero
changes), and answers the two questions anti-entropy asks:

- :meth:`digest` — a per-shard BLAKE2b fingerprint over the sorted
  ``(path, version, origin, deleted, text-hash)`` tuples.  Equal digests
  ⇒ byte-identical shard contents; replicas compare digests first and
  exchange entries only on mismatch.
- :meth:`entries_for_shard` — the full entry list for one shard, for
  the mismatch (and rebalance-streaming) path.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from repro.cluster.ring import ClusterMap
from repro.errors import DiscoveryError
from repro.metaserver.catalog import MetadataCatalog


@dataclass(frozen=True)
class CatalogEntry:
    """One replicated document (or its tombstone) with an LWW stamp."""

    path: str
    text: str
    version: int
    origin: str
    deleted: bool = False

    @property
    def stamp(self) -> tuple[int, str]:
        """The last-writer-wins ordering key."""
        return (self.version, self.origin)

    def to_json(self) -> dict:
        """The JSON-object form carried by ``/cluster/entries`` bodies."""
        return {
            "path": self.path,
            "text": self.text,
            "version": self.version,
            "origin": self.origin,
            "deleted": self.deleted,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "CatalogEntry":
        try:
            return cls(
                path=str(obj["path"]),
                text=str(obj["text"]),
                version=int(obj["version"]),
                origin=str(obj["origin"]),
                deleted=bool(obj.get("deleted", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DiscoveryError(f"malformed catalog entry: {exc}") from exc


class ReplicaStore:
    """One replica's versioned entries, projected into a catalog.

    Thread safe: the anti-entropy thread, server worker threads, and an
    event loop may all apply entries concurrently.
    """

    def __init__(self, catalog: MetadataCatalog | None = None) -> None:
        self.catalog = catalog if catalog is not None else MetadataCatalog()
        self._entries: dict[str, CatalogEntry] = {}
        self._lock = threading.Lock()
        self.applied = 0  # entries that won the LWW comparison
        self.ignored = 0  # entries that lost (stale or duplicate)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, path: str) -> CatalogEntry | None:
        """The stored entry (live or tombstone) at ``path``."""
        with self._lock:
            return self._entries.get(path)

    def entries(self) -> list[CatalogEntry]:
        """Every stored entry, tombstones included, sorted by path."""
        with self._lock:
            return [self._entries[path] for path in sorted(self._entries)]

    def apply(self, entry: CatalogEntry) -> bool:
        """Merge one entry; returns True iff it replaced local state.

        Strictly-greater ``(version, origin)`` wins; equal stamps are
        idempotent re-deliveries and are ignored.  Winning entries are
        projected into the catalog (publish, or unpublish for a
        tombstone) so plain HTTP reads see them immediately.
        """
        with self._lock:
            current = self._entries.get(entry.path)
            if current is not None and entry.stamp <= current.stamp:
                self.ignored += 1
                return False
            self._entries[entry.path] = entry
            self.applied += 1
        if entry.deleted:
            self.catalog.unpublish(entry.path)
        else:
            self.catalog.publish_schema(entry.path, entry.text)
        return True

    def apply_many(self, entries: list[CatalogEntry]) -> tuple[int, int]:
        """Merge a batch; returns ``(applied, ignored)`` counts."""
        applied = 0
        for entry in entries:
            if self.apply(entry):
                applied += 1
        return applied, len(entries) - applied

    def drop(self, path: str) -> bool:
        """Forget ``path`` entirely (rebalance hand-off, not a delete).

        Unlike a tombstone this erases the entry and its history: the
        path now belongs to another shard and this replica must stop
        answering for it.
        """
        with self._lock:
            removed = self._entries.pop(path, None)
        if removed is not None and not removed.deleted:
            self.catalog.unpublish(path)
        return removed is not None

    # -- per-shard views ---------------------------------------------------------

    def entries_for_shard(
        self, cluster_map: ClusterMap, shard_name: str
    ) -> list[CatalogEntry]:
        """Entries owned by ``shard_name`` under ``cluster_map``."""
        ring = cluster_map.ring
        with self._lock:
            paths = sorted(
                path for path in self._entries if ring.shard_for(path) == shard_name
            )
            return [self._entries[path] for path in paths]

    def digest(self, cluster_map: ClusterMap, shard_name: str) -> str:
        """Hex fingerprint of this replica's slice of one shard.

        Computed over the sorted entries' stamps and text hashes; two
        replicas with equal digests hold byte-identical shard contents.
        """
        hasher = hashlib.blake2b(digest_size=16)
        for entry in self.entries_for_shard(cluster_map, shard_name):
            text_hash = hashlib.blake2b(
                entry.text.encode("utf-8"), digest_size=16
            ).hexdigest()
            record = (
                f"{entry.path}\x01{entry.version}\x01{entry.origin}"
                f"\x01{int(entry.deleted)}\x01{text_hash}\x00"
            )
            hasher.update(record.encode("utf-8"))
        return hasher.hexdigest()
