"""Replica-aware client routing: quorum writes, failover reads.

:class:`ShardRouter` is the pure, transport-free core — key → owning
shard + replica preference order, straight off the
:class:`~repro.cluster.ring.ClusterMap` — shared by the sync client
here and the asyncio client
(:class:`~repro.aio.cluster.AsyncClusterClient`).

:class:`ClusterClient` drives a sharded cluster through an ordinary
:class:`~repro.metaserver.client.MetadataClient`, so every per-replica
request inherits the whole PR-1 resilience stack unchanged — the
:class:`~repro.metaserver.client.RetryPolicy` backoff, the per-host
:class:`~repro.metaserver.client.CircuitBreaker` (a dead replica fails
fast instead of costing a timeout on every read), and the stale-serve
TTL cache (a document fetched from a replica that later dies can still
be served, flagged stale, while the router fails over):

- **writes** (:meth:`publish` / :meth:`unpublish`) stamp a
  :class:`~repro.cluster.store.CatalogEntry` with this writer's next
  ``(version, origin)`` and fan it out to *every* replica of the owning
  shard.  ``write_quorum`` (W of N, default majority) acknowledgments
  make the write durable; fewer raise :class:`QuorumWriteError` carrying
  the per-replica failures.  Replicas that missed the write (W ≤ acks <
  N) are healed by server-side anti-entropy — the client does not
  retry them.
- **reads** (:meth:`get` and friends) try the key's replicas in
  preference order and fall over on any
  :class:`~repro.errors.DiscoveryError` — connection failure, open
  breaker, retry exhaustion, or an HTTP error (a diverged replica
  404ing a document its peers hold).  A replica death is a routing
  event, not a client-visible error, as long as any replica of the
  shard answers.

Routing, failover, quorum, and stale-during-failover outcomes are
counted on the underlying client (surfaced via
``MetadataClient.stats()["cluster"]``) and exported through
``repro.obs`` for ``/metrics``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.ring import ClusterMap, Shard
from repro.cluster.store import CatalogEntry
from repro.errors import DiscoveryError
from repro.metaserver.client import FetchResult, MetadataClient
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.schema.model import SchemaDocument
from repro.schema.parser import parse_schema


class QuorumWriteError(DiscoveryError):
    """A write reached fewer than ``write_quorum`` replicas."""

    def __init__(self, message: str, *, result: "QuorumResult") -> None:
        super().__init__(message)
        self.result = result


@dataclass(frozen=True)
class QuorumResult:
    """One quorum write's outcome across a shard's replicas."""

    path: str
    shard: str
    acks: int
    replicas: int
    quorum: int
    failures: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the write met its quorum."""
        return self.acks >= self.quorum

    @property
    def outcome(self) -> str:
        """``ok`` (all replicas), ``partial`` (quorum met), or ``failed``."""
        if self.acks == self.replicas:
            return "ok"
        return "partial" if self.ok else "failed"


class ShardRouter:
    """Pure key → (shard, ordered replicas) routing over a cluster map."""

    def __init__(self, cluster_map: ClusterMap) -> None:
        self.cluster_map = cluster_map

    def route(self, key: str) -> tuple[Shard, tuple[str, ...]]:
        """The owning shard and its replicas in preference order."""
        shard = self.cluster_map.shard_for(key)
        return shard, self.cluster_map.replicas_for(key)

    def update(self, cluster_map: ClusterMap) -> None:
        """Adopt a newer layout (ignores older/equal versions)."""
        if cluster_map.version > self.cluster_map.version:
            self.cluster_map = cluster_map


def majority(replicas: int) -> int:
    """The majority quorum for ``replicas`` copies (N // 2 + 1)."""
    return replicas // 2 + 1


class ClusterClient:
    """Sharded, replicated metadata access for synchronous callers.

    Parameters
    ----------
    cluster_map:
        The layout to route by.
    client:
        The :class:`~repro.metaserver.client.MetadataClient` carrying
        every per-replica request (retry, breakers, TTL/stale cache).
        A default one is built when omitted.
    write_quorum:
        Acks required for a write (W of N).  ``None`` means majority of
        the *largest* shard's replica count.  ``1`` gives
        availability-first semantics: any single live replica accepts
        the write and anti-entropy spreads it.
    origin:
        This writer's identity — the LWW tie-breaker.  Two writers with
        the same origin must not write concurrently; give each client a
        distinct origin.
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        client: MetadataClient | None = None,
        write_quorum: int | None = None,
        origin: str = "cluster-client",
    ) -> None:
        self.router = ShardRouter(cluster_map)
        self.client = client if client is not None else MetadataClient()
        widest = max(len(s.replicas) for s in cluster_map.shards)
        if write_quorum is None:
            write_quorum = majority(widest)
        if not 1 <= write_quorum <= widest:
            raise DiscoveryError(
                f"write_quorum must be in [1, {widest}], got {write_quorum}"
            )
        self.write_quorum = write_quorum
        self.origin = origin
        self._version = 0

    @property
    def cluster_map(self) -> ClusterMap:
        return self.router.cluster_map

    # -- reads -------------------------------------------------------------------

    def get(self, path: str) -> FetchResult:
        """Fetch ``path``, failing over across the owning shard's replicas.

        Returns the first replica's :class:`FetchResult` (which may be
        cached or stale-served by the underlying client).  Raises the
        *last* replica's error only when every replica failed.
        """
        shard, replicas = self.router.route(path)
        stats = self.client.cluster
        stats["shard_routes"] += 1
        self._count("cluster_client_routes_total", ("shard",), (shard.name,))
        last_error: DiscoveryError | None = None
        for index, replica in enumerate(replicas):
            try:
                result = self.client.get(f"http://{replica}{path}")
            except DiscoveryError as exc:
                last_error = exc
                stats["replica_failovers"] += 1
                self._count(
                    "cluster_client_failovers_total", ("shard",), (shard.name,)
                )
                continue
            if result.stale:
                # The replica itself was unreachable; the stale cache
                # carried the read through the failover window.
                stats["stale_failover_serves"] += 1
                self._count("cluster_client_reads_total", ("outcome",), ("stale",))
            else:
                outcome = "fallback" if index else "primary"
                self._count("cluster_client_reads_total", ("outcome",), (outcome,))
            return result
        self._count("cluster_client_reads_total", ("outcome",), ("error",))
        raise DiscoveryError(
            f"all {len(replicas)} replicas of shard {shard.name} failed for "
            f"{path}: {last_error}"
        ) from last_error

    def get_bytes(self, path: str) -> bytes:
        """Fetch ``path`` with failover; body only."""
        return self.get(path).body

    def get_schema(self, path: str) -> SchemaDocument:
        """Fetch and parse a schema document with failover."""
        body = self.get_bytes(path)
        try:
            return parse_schema(body.decode("utf-8"))
        except Exception as exc:
            raise DiscoveryError(
                f"document at {path} is not a valid schema: {exc}"
            ) from exc

    # -- writes ------------------------------------------------------------------

    def publish(self, path: str, text: str) -> QuorumResult:
        """Replicate a document to the owning shard; W-of-N quorum."""
        if not path.startswith("/"):
            raise DiscoveryError(f"paths must start with '/', got {path!r}")
        return self._write(self._stamp(path, text, deleted=False))

    def unpublish(self, path: str) -> QuorumResult:
        """Replicate a tombstone for ``path`` (same quorum rules)."""
        return self._write(self._stamp(path, "", deleted=True))

    def _stamp(self, path: str, text: str, *, deleted: bool) -> CatalogEntry:
        self._version += 1
        return CatalogEntry(
            path=path, text=text, version=self._version,
            origin=self.origin, deleted=deleted,
        )

    def _write(self, entry: CatalogEntry) -> QuorumResult:
        shard, replicas = self.router.route(entry.path)
        quorum = min(self.write_quorum, len(replicas))
        body = json.dumps({"entries": [entry.to_json()]}).encode("utf-8")
        acks = 0
        failures: list[str] = []
        with get_tracer().start_span("cluster.quorum_write") as span:
            for replica in replicas:
                try:
                    self.client.post(f"http://{replica}/cluster/entries", body)
                    acks += 1
                except DiscoveryError as exc:
                    failures.append(f"{replica}: {exc}")
            span.set_tag("shard", shard.name)
            span.set_tag("acks", acks)
            span.set_tag("quorum", quorum)
        result = QuorumResult(
            path=entry.path, shard=shard.name, acks=acks,
            replicas=len(replicas), quorum=quorum, failures=tuple(failures),
        )
        self.client.cluster[f"quorum_{result.outcome}"] += 1
        self._count(
            "cluster_client_quorum_writes_total", ("outcome",), (result.outcome,)
        )
        if not result.ok:
            raise QuorumWriteError(
                f"write of {entry.path} reached {acks}/{len(replicas)} replicas "
                f"of shard {shard.name} (quorum {quorum}): "
                f"{'; '.join(failures)}",
                result=result,
            )
        return result

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict:
        """The underlying client's stats (cluster counters included)."""
        return self.client.stats()

    @staticmethod
    def _count(name: str, label_names: tuple[str, ...],
               labels: tuple[str, ...]) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                name, "cluster client routing/fan-out outcomes", label_names
            ).labels(*labels).inc()
