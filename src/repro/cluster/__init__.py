"""``repro.cluster`` — the sharded, replicated metadata plane.

The single metadata server is the paper architecture's one outage
domain: every client resolves formats against it.  This package removes
that domain by splitting the catalog across **consistent-hash shards**,
each served by **N replicas**, with the client routing around dead
replicas and the servers repairing divergence behind the scenes:

- :class:`ClusterMap` / :class:`HashRing` (:mod:`~repro.cluster.ring`)
  — the shared, coordination-free layout: a stable-hash ring with
  virtual nodes that every client and server computes identically;
- :class:`CatalogEntry` / :class:`ReplicaStore`
  (:mod:`~repro.cluster.store`) — versioned documents with
  last-writer-wins merge and per-shard digests, projected into a
  :class:`~repro.metaserver.catalog.MetadataCatalog` so plain HTTP
  reads serve replicated state unchanged;
- :class:`ClusterNode` (:mod:`~repro.cluster.node`) — the
  ``/cluster/*`` peer protocol (served by either plane's front end),
  the digest-exchange anti-entropy loop, and the rebalance path that
  streams entries to new owners on a map change;
- :class:`ClusterClient` / :class:`ShardRouter`
  (:mod:`~repro.cluster.client`) — quorum (W-of-N) write fan-out and
  read failover, riding the resilient
  :class:`~repro.metaserver.client.MetadataClient` so breakers, retry,
  and the stale-serve cache apply per replica.

The asyncio counterpart is
:class:`~repro.aio.cluster.AsyncClusterClient`.  Single-server
deployments are untouched: everything here is opt-in, and a catalog
without an attached node serves exactly as before.

See docs/PROTOCOL.md §13 for the peer-sync message formats, quorum
semantics, and ring layout.
"""

from repro.cluster.client import (
    ClusterClient,
    QuorumResult,
    QuorumWriteError,
    ShardRouter,
    majority,
)
from repro.cluster.node import ClusterNode
from repro.cluster.ring import ClusterMap, HashRing, Shard, stable_hash
from repro.cluster.store import CatalogEntry, ReplicaStore

__all__ = [
    "CatalogEntry",
    "ClusterClient",
    "ClusterMap",
    "ClusterNode",
    "HashRing",
    "QuorumResult",
    "QuorumWriteError",
    "ReplicaStore",
    "Shard",
    "ShardRouter",
    "majority",
    "stable_hash",
]
