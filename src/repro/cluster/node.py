"""One metadata replica's cluster brain: peer sync, anti-entropy, rebalance.

A :class:`ClusterNode` attaches to a
:class:`~repro.metaserver.catalog.MetadataCatalog` and gives whichever
front end serves that catalog — the threaded
:class:`~repro.metaserver.server.MetadataServer`, the asyncio
:class:`~repro.aio.metaserver.AsyncMetadataServer`, or both at once —
the ``/cluster/*`` peer-protocol endpoints (PROTOCOL.md §13):

- ``GET  /cluster/info``              — identity, map version, entry count
- ``GET  /cluster/digest?shard=S``    — per-shard content fingerprint
- ``GET  /cluster/entries?shard=S``   — full entry dump for one shard
- ``POST /cluster/entries``           — merge a batch of versioned entries
- ``POST /cluster/map``               — install a newer cluster map

Everything rides the same HTTP/1.0 subset as document retrieval, so the
peer protocol needs no new transport and works identically against
either serving plane.  ``POST /cluster/entries`` is **idempotent** (the
store's LWW merge ignores re-deliveries), which is what makes client
retries and multi-path delivery — quorum fan-out, anti-entropy pull
*and* push, rebalance streaming — safe to overlap arbitrarily.

**Anti-entropy** (:meth:`anti_entropy_round`): for every shard this node
replicates, compare per-shard digests with each peer replica; on
mismatch, pull the peer's entries, merge, and push the merged set back.
One successful exchange converges both sides (LWW merge is commutative
and idempotent), so a partitioned-then-healed pair needs exactly one
clean round.  Peer failures are counted, never raised — a dead peer
makes a round *degraded*, not broken.  Run rounds manually for
deterministic tests, or :meth:`start` the background loop.

**Rebalance** (:meth:`set_cluster_map`): installing a newer map streams
every entry this node no longer owns to the new owner shard's replicas,
then drops the local copy — but only after at least one new owner
acknowledged it, so a failed hand-off never loses data (the entry is
retried on the next map install or picked up by anti-entropy).
"""

from __future__ import annotations

import json
import threading
from urllib.parse import parse_qs

from repro.cluster.ring import ClusterMap
from repro.cluster.store import CatalogEntry, ReplicaStore
from repro.errors import DiscoveryError, ReproError
from repro.metaserver.catalog import MetadataCatalog
from repro.metaserver.http import HTTPRequest, HTTPResponse
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

_JSON_TYPE = "application/json; charset=utf-8"


def _json_response(status: int, payload: dict) -> HTTPResponse:
    return HTTPResponse(
        status, {"Content-Type": _JSON_TYPE}, json.dumps(payload).encode("utf-8")
    )


class ClusterNode:
    """The cluster-protocol endpoint set and sync loops for one replica.

    Parameters
    ----------
    node_id:
        Stable identity for logs, /cluster/info, and obs labels.
    address:
        This replica's ``host:port`` as it appears in the cluster map —
        how the node recognizes which shards it owns and skips itself
        when iterating a shard's replicas.
    cluster_map:
        The initial layout; replaced wholesale by rebalances.
    catalog / store:
        Attach to an existing catalog (and optionally an existing
        :class:`~repro.cluster.store.ReplicaStore`); by default a fresh
        pair is created.  The node registers its HTTP handler on the
        catalog so any server fronting it serves ``/cluster/*``.
    interval:
        Background anti-entropy period in seconds (:meth:`start`).
    timeout:
        Per-peer-request socket timeout.
    """

    def __init__(
        self,
        node_id: str,
        address: str,
        cluster_map: ClusterMap,
        *,
        catalog: MetadataCatalog | None = None,
        store: ReplicaStore | None = None,
        interval: float = 1.0,
        timeout: float = 2.0,
    ) -> None:
        if store is not None:
            self.store = store
        else:
            self.store = ReplicaStore(catalog)
        if catalog is not None and store is not None and store.catalog is not catalog:
            raise DiscoveryError("catalog and store.catalog must be the same object")
        self.node_id = node_id
        self.address = address
        self.cluster_map = cluster_map
        self.interval = interval
        self.timeout = timeout
        self.catalog = self.store.catalog
        self.catalog.attach_cluster_handler(self.handle)
        self.rounds = 0  # anti-entropy rounds completed
        self.peer_errors = 0  # unreachable/failed peer exchanges
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- HTTP endpoint surface ---------------------------------------------------

    def handle(self, request: HTTPRequest) -> HTTPResponse:
        """Answer one ``/cluster/*`` request (registered on the catalog)."""
        path, _, query = request.path.partition("?")
        params = parse_qs(query)
        if path == "/cluster/info" and request.method in ("GET", "HEAD"):
            return _json_response(200, self.info())
        if path == "/cluster/digest" and request.method in ("GET", "HEAD"):
            return self._handle_digest(params)
        if path == "/cluster/entries" and request.method in ("GET", "HEAD"):
            return self._handle_entries_get(params)
        if path == "/cluster/entries" and request.method == "POST":
            return self._handle_entries_post(request)
        if path == "/cluster/map" and request.method == "POST":
            return self._handle_map_post(request)
        if request.method not in ("GET", "HEAD", "POST"):
            return HTTPResponse(405, body=b"unsupported cluster method")
        return HTTPResponse(404, body=f"no cluster endpoint at {path}".encode())

    def info(self) -> dict:
        """The /cluster/info payload."""
        return {
            "node": self.node_id,
            "address": self.address,
            "map_version": self.cluster_map.version,
            "entries": len(self.store),
            "shards": [s.name for s in self.cluster_map.shards_of(self.address)],
            "rounds": self.rounds,
        }

    def _shard_param(self, params: dict) -> str:
        values = params.get("shard", [])
        if len(values) != 1:
            raise DiscoveryError("exactly one shard=NAME parameter is required")
        self.cluster_map.shard(values[0])  # raises for unknown shards
        return values[0]

    def _handle_digest(self, params: dict) -> HTTPResponse:
        try:
            shard = self._shard_param(params)
        except DiscoveryError as exc:
            return _json_response(400, {"error": str(exc)})
        entries = self.store.entries_for_shard(self.cluster_map, shard)
        return _json_response(
            200,
            {
                "shard": shard,
                "digest": self.store.digest(self.cluster_map, shard),
                "count": len(entries),
                "map_version": self.cluster_map.version,
            },
        )

    def _handle_entries_get(self, params: dict) -> HTTPResponse:
        try:
            shard = self._shard_param(params)
        except DiscoveryError as exc:
            return _json_response(400, {"error": str(exc)})
        entries = self.store.entries_for_shard(self.cluster_map, shard)
        return _json_response(
            200, {"shard": shard, "entries": [e.to_json() for e in entries]}
        )

    def _handle_entries_post(self, request: HTTPRequest) -> HTTPResponse:
        try:
            payload = json.loads(request.body.decode("utf-8"))
            entries = [CatalogEntry.from_json(obj) for obj in payload["entries"]]
        except (ValueError, KeyError, TypeError, DiscoveryError) as exc:
            return _json_response(400, {"error": f"malformed entry batch: {exc}"})
        applied, ignored = self.store.apply_many(entries)
        self._count_applied(applied, ignored)
        return _json_response(
            200, {"node": self.node_id, "applied": applied, "ignored": ignored}
        )

    def _handle_map_post(self, request: HTTPRequest) -> HTTPResponse:
        try:
            new_map = ClusterMap.from_json(json.loads(request.body.decode("utf-8")))
        except (ValueError, DiscoveryError) as exc:
            return _json_response(400, {"error": f"malformed cluster map: {exc}"})
        if new_map.version <= self.cluster_map.version:
            return _json_response(
                200, {"installed": False, "map_version": self.cluster_map.version}
            )
        report = self.set_cluster_map(new_map)
        return _json_response(200, {"installed": True, **report})

    # -- anti-entropy ------------------------------------------------------------

    def anti_entropy_round(self) -> dict:
        """Digest-compare with every peer; reconcile divergence both ways.

        Returns a report dict (``peers_checked`` / ``in_sync`` /
        ``synced`` / ``pulled`` / ``pushed`` / ``errors``).  Never
        raises: unreachable peers are counted in ``errors`` and retried
        on the next round.
        """
        from repro.metaserver.client import http_get, http_post

        report = {
            "peers_checked": 0,
            "in_sync": 0,
            "synced": 0,
            "pulled": 0,
            "pushed": 0,
            "errors": 0,
        }
        cluster_map = self.cluster_map
        with get_tracer().start_span("cluster.anti_entropy") as span:
            for shard in cluster_map.shards_of(self.address):
                for peer in shard.replicas:
                    if peer == self.address:
                        continue
                    report["peers_checked"] += 1
                    try:
                        self._sync_with_peer(
                            peer, shard.name, cluster_map, report, http_get, http_post
                        )
                    except ReproError:
                        report["errors"] += 1
                        self.peer_errors += 1
            span.set_tag("node", self.node_id)
            span.set_tag("synced", report["synced"])
            span.set_tag("errors", report["errors"])
        self.rounds += 1
        self._count_round(report)
        return report

    def _sync_with_peer(
        self, peer: str, shard_name: str, cluster_map: ClusterMap,
        report: dict, http_get, http_post,
    ) -> None:
        local_digest = self.store.digest(cluster_map, shard_name)
        from urllib.parse import quote

        shard_q = quote(shard_name, safe="")
        raw = http_get(
            f"http://{peer}/cluster/digest?shard={shard_q}", timeout=self.timeout
        )
        try:
            remote = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise DiscoveryError(f"peer {peer} sent a malformed digest") from exc
        if remote.get("digest") == local_digest:
            report["in_sync"] += 1
            return
        # Divergence: pull the peer's slice, merge, push the merged set
        # back.  LWW makes the double delivery harmless and the exchange
        # symmetric — one clean round converges both replicas.
        raw = http_get(
            f"http://{peer}/cluster/entries?shard={shard_q}", timeout=self.timeout
        )
        try:
            payload = json.loads(raw.decode("utf-8"))
            theirs = [CatalogEntry.from_json(obj) for obj in payload["entries"]]
        except (ValueError, KeyError, TypeError) as exc:
            raise DiscoveryError(f"peer {peer} sent malformed entries") from exc
        applied, _ = self.store.apply_many(theirs)
        report["pulled"] += applied
        merged = self.store.entries_for_shard(cluster_map, shard_name)
        http_post(
            f"http://{peer}/cluster/entries",
            json.dumps({"entries": [e.to_json() for e in merged]}).encode("utf-8"),
            timeout=self.timeout,
        )
        report["pushed"] += len(merged)
        report["synced"] += 1

    # -- rebalance ---------------------------------------------------------------

    def set_cluster_map(self, new_map: ClusterMap) -> dict:
        """Install a new layout, streaming disowned entries to new owners.

        Entries whose owner shard no longer includes this node are
        POSTed to every replica of the new owner; the local copy is
        dropped only once at least one new owner acknowledged, so a
        fully-partitioned hand-off keeps the data here (and a later
        rebalance or an operator retry can move it).
        """
        from repro.metaserver.client import http_post

        self.cluster_map = new_map
        report = {"map_version": new_map.version, "moved": 0, "dropped": 0,
                  "kept": 0, "errors": 0}
        # Group disowned entries by their new owner shard so each target
        # replica receives one batch per shard, not one POST per entry.
        outgoing: dict[str, list[CatalogEntry]] = {}
        for entry in self.store.entries():
            shard = new_map.shard_for(entry.path)
            if self.address in shard.replicas:
                continue
            outgoing.setdefault(shard.name, []).append(entry)
        for shard_name, entries in outgoing.items():
            replicas = new_map.shard(shard_name).replicas
            body = json.dumps(
                {"entries": [e.to_json() for e in entries]}
            ).encode("utf-8")
            acks = 0
            for replica in replicas:
                try:
                    http_post(
                        f"http://{replica}/cluster/entries", body,
                        timeout=self.timeout,
                    )
                    acks += 1
                except ReproError:
                    report["errors"] += 1
            if acks:
                report["moved"] += len(entries)
                for entry in entries:
                    self.store.drop(entry.path)
                    report["dropped"] += 1
            else:
                report["kept"] += len(entries)
        self._count_rebalance(report)
        return report

    # -- background loop ---------------------------------------------------------

    def start(self) -> "ClusterNode":
        """Run :meth:`anti_entropy_round` every ``interval`` seconds."""
        if self._thread is not None:
            raise DiscoveryError("cluster node already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background anti-entropy loop."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ClusterNode":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.anti_entropy_round()

    # -- observability -----------------------------------------------------------

    def _count_applied(self, applied: int, ignored: int) -> None:
        registry = get_registry()
        if registry.enabled:
            family = registry.counter(
                "cluster_entries_applied_total",
                "replicated entries merged (applied) or already-known (ignored)",
                ("result",),
            )
            if applied:
                family.labels("applied").inc(applied)
            if ignored:
                family.labels("ignored").inc(ignored)

    def _count_round(self, report: dict) -> None:
        registry = get_registry()
        if registry.enabled:
            if report["errors"]:
                outcome = "degraded"
            elif report["synced"]:
                outcome = "synced"
            else:
                outcome = "clean"
            registry.counter(
                "cluster_anti_entropy_rounds_total",
                "anti-entropy rounds by outcome",
                ("outcome",),
            ).labels(outcome).inc()

    def _count_rebalance(self, report: dict) -> None:
        registry = get_registry()
        if registry.enabled and (report["moved"] or report["kept"]):
            family = registry.counter(
                "cluster_rebalance_entries_total",
                "entries streamed to new owners (moved) or retained after "
                "failed hand-off (kept)",
                ("action",),
            )
            if report["moved"]:
                family.labels("moved").inc(report["moved"])
            if report["kept"]:
                family.labels("kept").inc(report["kept"])
