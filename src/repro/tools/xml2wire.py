"""The xml2wire command: schema documents in, PBIO metadata out.

Examples::

    python -m repro.tools.xml2wire schemas/asdoff.xsd
    python -m repro.tools.xml2wire schemas/asdoff.xsd --arch sparc_32
    python -m repro.tools.xml2wire http://host:port/asdoff.xsd --arch x86_64
    python -m repro.tools.xml2wire schemas/asdoff.xsd --stubs asdoff_stubs.py

Output mirrors the paper's Figure 8 IOField arrays, with sizes and
offsets computed for the requested architecture.
"""

from __future__ import annotations

import argparse
import sys

from repro.arch import NATIVE, all_architectures, get_architecture
from repro.core.stubgen import generate_stub_source
from repro.core.xml2wire import XML2Wire
from repro.errors import ReproError
from repro.metaserver.client import MetadataClient
from repro.pbio.context import IOContext
from repro.schema.parser import parse_schema, parse_schema_file


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="xml2wire",
        description="Convert XML Schema message metadata to PBIO metadata.",
    )
    parser.add_argument(
        "schema",
        help="path to a schema document, '-' for stdin, or an http:// URL",
    )
    parser.add_argument(
        "--arch",
        default=NATIVE.name,
        choices=sorted(model.name for model in all_architectures()),
        help=f"target architecture for sizes/offsets (default: {NATIVE.name})",
    )
    parser.add_argument(
        "--stubs",
        metavar="FILE",
        help="also write Python dataclass stubs to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--c-header",
        metavar="FILE",
        help="also write a C header (typedefs + IOField arrays) to FILE",
    )
    parser.add_argument(
        "--ids",
        action="store_true",
        help="print each format's content-addressed wire id",
    )
    return parser


def load_schema(source: str):
    """Load a schema from a path, stdin ('-'), or an http:// URL."""
    if source == "-":
        return parse_schema(sys.stdin.read())
    if source.startswith("http://"):
        return MetadataClient().get_schema(source)
    return parse_schema_file(source)


def render_format(fmt, show_id: bool) -> str:
    """Render one format as a Figure-8-style IOField table."""
    lines = [f"/* {fmt.name}: {fmt.record_length} bytes on {fmt.arch.name} */"]
    if show_id:
        lines.append(f"/* format id: {fmt.format_id.hex()} */")
    lines.append(f"IOField {fmt.name}Fields[] = {{")
    for field in fmt.fields:
        lines.append(
            f'    {{ "{field.name}", "{field.type}", {field.size}, {field.offset} }},'
        )
    lines.append("    { NULL, NULL, 0, 0 }")
    lines.append("};")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        schema = load_schema(args.schema)
        tool = XML2Wire(IOContext(get_architecture(args.arch)))
        formats = tool.register_schema(schema)
    except ReproError as exc:
        print(f"xml2wire: error: {exc}", file=sys.stderr)
        return 1
    print("\n\n".join(render_format(fmt, args.ids) for fmt in formats))
    if args.stubs:
        stub_source = generate_stub_source(schema)
        if args.stubs == "-":
            print("\n" + stub_source)
        else:
            with open(args.stubs, "w", encoding="utf-8") as handle:
                handle.write(stub_source)
            print(f"\n/* stubs written to {args.stubs} */")
    if args.c_header:
        from repro.core.cgen import generate_c_header

        header_source = generate_c_header(schema)
        if args.c_header == "-":
            print("\n" + header_source)
        else:
            with open(args.c_header, "w", encoding="utf-8") as handle:
                handle.write(header_source)
            print(f"/* C header written to {args.c_header} */")
    return 0


if __name__ == "__main__":
    sys.exit(main())
