"""Dump the contents of a PBIO data file.

The archive analogue of a packet dumper: prints the formats a file
carries (from its embedded metadata) and each record, on any machine
regardless of who wrote the file::

    python -m repro.tools.pbdump flights.pbio
    python -m repro.tools.pbdump flights.pbio --format json
    python -m repro.tools.pbdump flights.pbio --metadata-only
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.pbio.context import IOContext
from repro.pbio.iofile import IOFileReader


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="pbdump",
        description="Dump records and format metadata from a PBIO data file.",
    )
    parser.add_argument("file", help="path to the .pbio file")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--metadata-only",
        action="store_true",
        help="print only the formats the file carries, not the records",
    )
    parser.add_argument(
        "--limit", type=int, default=0, help="stop after N records (0 = all)"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="after the dump, print the metrics collected while reading "
        "(decode counts and durations, codegen cache events)",
    )
    parser.add_argument(
        "--lineage",
        action="store_true",
        help="after the dump, print each format's ancestry chain (formats "
        "sharing a name version-link in file order) and the projection "
        "plan from every ancestor to its latest version — the format-"
        "drift debugging view",
    )
    return parser


def render_lineage(lineage) -> list[str]:
    """Render a :class:`~repro.pbio.FormatLineage` as report lines."""
    from repro.pbio.evolution import compare_formats, describe_projection

    lines: list[str] = []
    seen: set[str] = set()
    for format_id in lineage.known_ids():
        fmt = lineage.format(format_id)
        if fmt.name in seen:
            continue
        seen.add(fmt.name)
        latest = lineage.latest(fmt.name)
        chain = lineage.ancestry(latest.format_id)
        document = lineage.describe(latest.format_id)
        lines.append(
            f"lineage {latest.name!r}: {len(chain)} version(s), "
            f"latest v{document['version']} id {latest.format_id.hex()}"
        )
        for ancestor in chain[1:]:
            old = lineage.format(ancestor)
            relation = compare_formats(old, latest)
            lines.append(
                f"  ancestor id {ancestor.hex()} on {old.arch.name} "
                f"({relation.value})"
            )
            for step in describe_projection(old, latest):
                lines.append(f"    {step}")
    return lines


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    lineage = None
    if args.lineage:
        from repro.pbio.evolution import FormatLineage

        lineage = FormatLineage()
    context = IOContext(lineage=lineage)
    printed_formats: set[str] = set()
    try:
        with IOFileReader(args.file, context) as reader:
            count = 0
            for record in reader.records():
                wire = record.wire_format
                if wire.name not in printed_formats:
                    printed_formats.add(wire.name)
                    if args.format == "text":
                        print(
                            f"# format {wire.name!r}: {len(wire.fields)} fields, "
                            f"{wire.record_length} B native on {wire.arch.name}, "
                            f"id {wire.format_id.hex()}"
                        )
                if args.metadata_only:
                    continue
                count += 1
                if args.format == "json":
                    print(json.dumps({"format": record.format_name, **record.values}))
                else:
                    rendered = ", ".join(
                        f"{k}={v!r}" for k, v in record.values.items()
                    )
                    print(f"[{count}] {record.format_name}: {rendered}")
                if args.limit and count >= args.limit:
                    break
            if not args.metadata_only and args.format == "text":
                print(f"# {count} record(s)")
    except (ReproError, OSError) as exc:
        print(f"pbdump: error: {exc}", file=sys.stderr)
        return 1
    if lineage is not None:
        print("# --- lineage ---")
        for line in render_lineage(lineage):
            print(line)
    if args.stats:
        from repro.obs.metrics import get_registry

        print("# --- metrics ---")
        print(get_registry().render(), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
