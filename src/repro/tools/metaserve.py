"""Serve a directory of schema documents over HTTP.

Every ``*.xsd`` file in the directory is published at
``/schemas/<filename>``; the daemon logs each URL at startup and serves
until interrupted.  This is the "publicly known intranet server" of the
paper's §4.4, as a command::

    python -m repro.tools.metaserve ./schemas --port 8800
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

from repro.errors import ReproError
from repro.metaserver.server import MetadataServer
from repro.schema.parser import parse_schema


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="metaserve",
        description="Publish a directory of XML Schema documents over HTTP.",
    )
    parser.add_argument("directory", help="directory containing *.xsd files")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate each document as a schema before publishing",
    )
    return parser


def publish_directory(server: MetadataServer, directory: Path, check: bool) -> list[str]:
    """Publish every *.xsd in ``directory``; returns the URLs."""
    urls = []
    for path in sorted(directory.glob("*.xsd")):
        text = path.read_text(encoding="utf-8")
        if check:
            parse_schema(text)  # raises on invalid documents
        urls.append(server.publish_schema(f"/schemas/{path.name}", text))
    return urls


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"metaserve: error: {directory} is not a directory", file=sys.stderr)
        return 1
    server = MetadataServer(args.host, args.port)
    try:
        urls = publish_directory(server, directory, args.check)
    except ReproError as exc:
        print(f"metaserve: error: {exc}", file=sys.stderr)
        return 1
    if not urls:
        print(f"metaserve: warning: no *.xsd files in {directory}", file=sys.stderr)
    server.start()
    for url in urls:
        print(f"serving {url}")
    host, port = server.address
    print(f"metadata server listening on {host}:{port} (Ctrl-C to stop)")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait()
    server.stop()
    print("stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
