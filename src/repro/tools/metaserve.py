"""Serve a directory of schema documents over HTTP.

Every ``*.xsd`` file in the directory is published at
``/schemas/<filename>``; the daemon logs each URL at startup and serves
until interrupted.  This is the "publicly known intranet server" of the
paper's §4.4, as a command::

    python -m repro.tools.metaserve ./schemas --port 8800
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import threading
from pathlib import Path

from repro.aio import AsyncMetadataServer
from repro.errors import ReproError
from repro.metaserver.catalog import MetadataCatalog
from repro.metaserver.server import MetadataServer
from repro.schema.parser import parse_schema


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="metaserve",
        description="Publish a directory of XML Schema documents over HTTP.",
    )
    parser.add_argument(
        "directory",
        nargs="?",
        help="directory containing *.xsd files (not needed with --status)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="serve from a pool of N worker processes sharing the port "
        "(SO_REUSEPORT where available, accept-handoff fallback)",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="query a running pool's /mp/status at --host:--port, print "
        "the worker health JSON, and exit",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate each document as a schema before publishing",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve from the asyncio plane (keep-alive + pipelining)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="announce the /metrics endpoint (Prometheus text format) "
        "at startup; the endpoint itself is always served",
    )
    parser.add_argument(
        "--lineage",
        action="store_true",
        help="scan the directory's *.pbio archives for format metadata, "
        "build the format-lineage registry (formats sharing a name "
        "version-link in observation order) and serve it under "
        "/lineage/ (PROTOCOL §16); in --cluster mode the ancestry "
        "documents are quorum-published across the ring instead",
    )
    parser.add_argument(
        "--cluster",
        metavar="SxR",
        help="launch a local sharded cluster of S shards x R replicas "
        "(e.g. 3x2) instead of one server; documents are quorum-written "
        "across the ring and anti-entropy runs between replicas",
    )
    parser.add_argument(
        "--anti-entropy-interval",
        type=float,
        default=1.0,
        help="seconds between anti-entropy rounds in --cluster mode",
    )
    return parser


def parse_cluster_spec(spec: str) -> tuple[int, int]:
    """Parse an ``SxR`` cluster spec (shards x replicas)."""
    shards, sep, replicas = spec.lower().partition("x")
    if not sep or not shards.isdigit() or not replicas.isdigit():
        raise ReproError(f"--cluster wants SxR (e.g. 3x2), got {spec!r}")
    parsed = int(shards), int(replicas)
    if parsed[0] < 1 or parsed[1] < 1:
        raise ReproError(f"--cluster needs at least 1x1, got {spec!r}")
    return parsed


def serve_cluster(args: argparse.Namespace, directory: Path) -> int:
    """Launch a local S×R sharded cluster and serve until interrupted."""
    from repro.cluster import ClusterClient, ClusterMap, ClusterNode

    shards, replicas = parse_cluster_spec(args.cluster)
    count = shards * replicas
    catalogs = [MetadataCatalog() for _ in range(count)]
    # Bind every listener first (ephemeral ports resolve at construction
    # when --port is 0; otherwise consecutive ports from --port).
    servers = [
        MetadataServer(
            args.host, 0 if args.port == 0 else args.port + index,
            catalog=catalogs[index],
        )
        for index in range(count)
    ]
    addresses = ["%s:%d" % server.address for server in servers]
    cluster_map = ClusterMap.grid(addresses, shards=shards, replicas=replicas)
    nodes = [
        ClusterNode(
            f"node{index}", addresses[index], cluster_map,
            catalog=catalogs[index], interval=args.anti_entropy_interval,
        )
        for index in range(count)
    ]
    for server in servers:
        server.start()
    client = ClusterClient(cluster_map, origin="metaserve")
    published = 0
    try:
        for path in sorted(directory.glob("*.xsd")):
            text = path.read_text(encoding="utf-8")
            if args.check:
                parse_schema(text)
            result = client.publish(f"/schemas/{path.name}", text)
            owner = ", ".join(cluster_map.shard(result.shard).replicas)
            print(f"published /schemas/{path.name} -> shard {result.shard} "
                  f"[{owner}] ({result.acks}/{result.replicas} acks)")
            published += 1
    except ReproError as exc:
        print(f"metaserve: error: {exc}", file=sys.stderr)
        for server in servers:
            server.stop()
        return 1
    if not published:
        print(f"metaserve: warning: no *.xsd files in {directory}", file=sys.stderr)
    if args.lineage:
        lineage = collect_lineage(directory)
        for path, text in sorted(lineage.documents().items()):
            result = client.publish(path, text)
            print(f"published {path} -> shard {result.shard} "
                  f"({result.acks}/{result.replicas} acks)")
        print(f"lineage: {len(lineage)} format(s) quorum-published")
    for node in nodes:
        node.start()
    for shard in cluster_map.shards:
        print(f"shard {shard.name}: {', '.join(shard.replicas)}")
    if args.metrics:
        for address in addresses:
            print(f"metrics at http://{address}/metrics")
    print(f"cluster of {shards}x{replicas} metadata servers up "
          f"(quorum {client.write_quorum}, Ctrl-C to stop)")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait()
    for node in nodes:
        node.stop()
    for server in servers:
        server.stop()
    print("stopped")
    return 0


def collect_lineage(directory: Path):
    """Build a format-lineage registry from the directory's archives.

    Every ``*.pbio`` file is scanned for embedded format metadata;
    formats sharing a name version-link in observation order.  Returns
    the :class:`~repro.pbio.FormatLineage` (possibly empty).
    """
    from repro.pbio import FormatLineage, IOContext
    from repro.pbio.iofile import IOFileReader

    lineage = FormatLineage()
    for path in sorted(directory.glob("*.pbio")):
        context = IOContext(lineage=lineage)
        with IOFileReader(path, context) as reader:
            for _ in reader.records():
                pass
    return lineage


def publish_directory(
    server: MetadataServer | MetadataCatalog, directory: Path, check: bool
) -> list[str]:
    """Publish every *.xsd in ``directory`` into ``server`` (a
    :class:`MetadataServer` or a bare :class:`MetadataCatalog`);
    returns one entry per published document (URLs for a server)."""
    urls = []
    for path in sorted(directory.glob("*.xsd")):
        text = path.read_text(encoding="utf-8")
        if check:
            parse_schema(text)  # raises on invalid documents
        urls.append(server.publish_schema(f"/schemas/{path.name}", text))
    return urls


async def serve_async(args: argparse.Namespace, catalog: MetadataCatalog) -> int:
    """Serve ``catalog`` from the asyncio plane until interrupted."""
    server = await AsyncMetadataServer(args.host, args.port, catalog=catalog).start()
    for path in catalog.paths():
        print(f"serving {server.url_for(path)}")
    if args.metrics:
        print(f"metrics at {server.url_for('/metrics')}")
    host, port = server.address
    print(f"metadata server listening on {host}:{port} "
          f"(async plane, Ctrl-C to stop)")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    await server.stop()
    print("stopped")
    return 0


def show_status(args: argparse.Namespace) -> int:
    """Print a running pool's ``/mp/status`` health JSON and exit."""
    import json

    from repro.metaserver.client import http_get

    if args.port == 0:
        print("metaserve: error: --status needs --port", file=sys.stderr)
        return 1
    url = f"http://{args.host}:{args.port}/mp/status"
    try:
        body = http_get(url)
    except ReproError as exc:
        print(f"metaserve: error: {exc}", file=sys.stderr)
        return 1
    try:
        status = json.loads(body)
    except ValueError:
        print(f"metaserve: error: {url} did not return JSON", file=sys.stderr)
        return 1
    print(json.dumps(status, indent=2))
    return 0


def serve_pool(args: argparse.Namespace, directory: Path) -> int:
    """Serve from a multi-core worker pool until interrupted."""
    from repro.mp.pool import WorkerPool

    pool = WorkerPool(
        args.host,
        args.port,
        args.workers,
        plane="async" if args.use_async else "threaded",
    )
    pool.start()
    pool.wait_ready()
    try:
        urls = publish_directory(pool, directory, args.check)
    except ReproError as exc:
        print(f"metaserve: error: {exc}", file=sys.stderr)
        pool.stop()
        return 1
    if not urls:
        print(f"metaserve: warning: no *.xsd files in {directory}", file=sys.stderr)
    if args.lineage:
        # Workers are separate processes: ship the ancestry answers as
        # static documents through catalog sync instead of a registry.
        lineage = collect_lineage(directory)
        for path, text in sorted(lineage.documents().items()):
            pool.publish_schema(path, text)
        print(f"lineage: {len(lineage)} format(s) under /lineage/")
    for url in urls:
        print(f"serving {url}")
    if args.metrics:
        print(f"metrics at {pool.url_for('/metrics')}")
    host, port = pool.address
    print(
        f"metadata pool listening on {host}:{port} "
        f"({args.workers} workers, {pool.mode} mode, Ctrl-C to stop; "
        f"status: metaserve --status --port {port})"
    )
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait()
    pool.stop()
    print("stopped")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.status:
        return show_status(args)
    if args.directory is None:
        print("metaserve: error: directory is required (unless --status)",
              file=sys.stderr)
        return 1
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"metaserve: error: {directory} is not a directory", file=sys.stderr)
        return 1
    if args.workers > 1:
        if args.cluster:
            print("metaserve: error: --workers and --cluster are exclusive",
                  file=sys.stderr)
            return 1
        try:
            return serve_pool(args, directory)
        except ReproError as exc:
            print(f"metaserve: error: {exc}", file=sys.stderr)
            return 1
    if args.cluster:
        if args.use_async:
            print("metaserve: error: --cluster serves from the threaded plane; "
                  "drop --async", file=sys.stderr)
            return 1
        try:
            return serve_cluster(args, directory)
        except ReproError as exc:
            print(f"metaserve: error: {exc}", file=sys.stderr)
            return 1
    if args.use_async:
        # Same catalog contents, served from the asyncio plane (the
        # threaded server is never constructed: it would bind the port).
        catalog = MetadataCatalog()
        try:
            published = publish_directory(catalog, directory, args.check)
        except ReproError as exc:
            print(f"metaserve: error: {exc}", file=sys.stderr)
            return 1
        if not published:
            print(f"metaserve: warning: no *.xsd files in {directory}",
                  file=sys.stderr)
        if args.lineage:
            lineage = collect_lineage(directory)
            catalog.attach_lineage(lineage)
            print(f"lineage: {len(lineage)} format(s) under /lineage/")
        return asyncio.run(serve_async(args, catalog))
    server = MetadataServer(args.host, args.port)
    try:
        urls = publish_directory(server, directory, args.check)
    except ReproError as exc:
        print(f"metaserve: error: {exc}", file=sys.stderr)
        return 1
    if not urls:
        print(f"metaserve: warning: no *.xsd files in {directory}", file=sys.stderr)
    if args.lineage:
        lineage = collect_lineage(directory)
        server.catalog.attach_lineage(lineage)
        print(f"lineage: {len(lineage)} format(s) under /lineage/")
    server.start()
    for url in urls:
        print(f"serving {url}")
    if args.metrics:
        print(f"metrics at {server.url_for('/metrics')}")
    host, port = server.address
    print(f"metadata server listening on {host}:{port} (Ctrl-C to stop)")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait()
    server.stop()
    print("stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
