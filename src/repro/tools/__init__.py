"""Command-line tools.

- ``python -m repro.tools.xml2wire`` — the paper's tool as a command:
  schema document in, PBIO metadata (Figure 5/8/11 style) out; can also
  emit Python dataclass stubs.
- ``python -m repro.tools.metaserve`` — serve a directory of schema
  documents over HTTP (the "publicly known intranet server" of §4.4).
- ``python -m repro.tools.validate`` — schema-check an instance
  document, or classify it against every type in a schema (§4.1.1's
  "determine which of a set of structure definitions a message most
  closely fits").
"""
