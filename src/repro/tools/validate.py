"""Schema-check or classify instance documents.

The paper (§4.1.1): "since the structure of a message will be
represented using XML, schema-checking tools will be applicable to live
messages received from other parties.  This ability could be used to
determine which of a set of structure definitions a message most closely
fits."  Both operations, as a command::

    python -m repro.tools.validate schema.xsd message.xml --type Track
    python -m repro.tools.validate schema.xsd message.xml --classify
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.schema.parser import parse_schema_file
from repro.schema.validator import classify_instance, collect_issues
from repro.xmlparse.tree import parse_document


def build_parser() -> argparse.ArgumentParser:
    """The tool's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="validate",
        description="Validate or classify an XML instance against a schema.",
    )
    parser.add_argument("schema", help="path to the schema document")
    parser.add_argument("instance", help="path to the instance document, or '-'")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--type", help="complex type to validate against")
    group.add_argument(
        "--classify",
        action="store_true",
        help="report the complex type the instance most closely fits",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        schema = parse_schema_file(args.schema)
        if args.instance == "-":
            instance = parse_document(sys.stdin.read())
        else:
            with open(args.instance, encoding="utf-8") as handle:
                instance = parse_document(handle.read())
    except (ReproError, OSError) as exc:
        print(f"validate: error: {exc}", file=sys.stderr)
        return 2
    if args.classify:
        try:
            name, issues = classify_instance(instance, schema)
        except ReproError as exc:
            print(f"validate: error: {exc}", file=sys.stderr)
            return 2
        print(f"best fit: {name} ({len(issues)} issue(s))")
        for issue in issues:
            print(f"  {issue}")
        return 0 if not issues else 1
    try:
        complex_type = schema.complex_type(args.type)
    except ReproError as exc:
        print(f"validate: error: {exc}", file=sys.stderr)
        return 2
    issues = collect_issues(instance, complex_type, schema)
    if not issues:
        print(f"valid: instance conforms to {args.type}")
        return 0
    print(f"invalid: {len(issues)} issue(s) against {args.type}")
    for issue in issues:
        print(f"  {issue}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
