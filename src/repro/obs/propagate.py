"""Trace-context piggybacking on PBIO context messages.

When wire tracing is on (:func:`repro.obs.trace.set_wire_tracing`), the
sending endpoints append a 16-byte block — ``u64 trace_id, u64
span_id``, big-endian — *after* the message body and set bit 0 of the
header's reserved field (PROTOCOL §11).  The header's ``length`` field
is untouched, so:

- receivers that predate this layer keep working: ``parse_header``
  ignores ``reserved`` and ``decode`` slices the body by ``length``,
  so the trailing block is invisible to them;
- :func:`extract` recovers the original message *byte-exactly* (strip
  the block, clear the bit), which the golden-vector suite asserts.

Injection happens at the connection/endpoint layer
(``RecordConnection``, the broker publishers) — never inside
``IOContext.encode`` — so NDR bytes are provably never perturbed.

This module mirrors the §2 header layout locally instead of importing
``repro.pbio.context`` because pbio's hot path imports the obs package;
a pbio import here would be a cycle.
"""

from __future__ import annotations

import struct

from repro.obs.trace import (
    TraceContext,
    current_trace_context,
    wire_tracing_enabled,
)

# PROTOCOL §2 context header: kind, version, reserved, length, format id.
_HEADER = struct.Struct(">BBHI8s")
_HEADER_SIZE = _HEADER.size
_KIND_DATA = 1

#: Bit 0 of the header's u16 reserved field: "trace block appended".
TRACE_FLAG = 0x0001

#: The trailing block: u64 trace id, u64 span id, big-endian.
TRACE_BLOCK = struct.Struct(">QQ")
TRACE_BLOCK_SIZE = TRACE_BLOCK.size


def inject(message: bytes, context: TraceContext | None = None) -> bytes:
    """Append the trace block to a data message, if tracing warrants it.

    Returns ``message`` unchanged when wire tracing is off, when there
    is no context to propagate, when the message is not a well-formed
    kind-1 context message, or when a block is already present.
    """
    if context is None:
        if not wire_tracing_enabled():
            return message
        context = current_trace_context()
        if context is None:
            return message
    if len(message) < _HEADER_SIZE:
        return message
    kind, version, reserved, length, format_id = _HEADER.unpack_from(message)
    if kind != _KIND_DATA or reserved & TRACE_FLAG:
        return message
    header = _HEADER.pack(kind, version, reserved | TRACE_FLAG, length, format_id)
    block = TRACE_BLOCK.pack(context.trace_id, context.span_id)
    return header + message[_HEADER_SIZE:] + block


def extract(message: bytes) -> tuple[bytes, TraceContext | None]:
    """Strip a trace block from a message, recovering the original bytes.

    Returns ``(original_message, context)``; ``context`` is ``None``
    and the message is returned untouched when no block is flagged.
    Extraction does not consult the feature flag — a receiver always
    understands a flagged message, whether or not it emits them.
    """
    if len(message) < _HEADER_SIZE:
        return message, None
    kind, version, reserved, length, format_id = _HEADER.unpack_from(message)
    if not reserved & TRACE_FLAG:
        return message, None
    if len(message) < _HEADER_SIZE + length + TRACE_BLOCK_SIZE:
        # Flag set but no room for a block: malformed; leave it to the
        # decoder to complain about the body rather than guessing here.
        return message, None
    trace_id, span_id = TRACE_BLOCK.unpack_from(
        message, len(message) - TRACE_BLOCK_SIZE
    )
    header = _HEADER.pack(kind, version, reserved & ~TRACE_FLAG, length, format_id)
    original = header + message[_HEADER_SIZE:len(message) - TRACE_BLOCK_SIZE]
    return original, TraceContext(trace_id, span_id)
