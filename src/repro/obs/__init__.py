"""Observability: metrics registry, spans, and wire trace propagation.

Three small, dependency-free pieces (ISSUE 4 tentpole):

- :mod:`repro.obs.metrics` — :class:`Registry` of counters, gauges and
  fixed-bucket histograms; per-thread sharded writes, snapshot on read,
  Prometheus-style :meth:`Registry.render`.
- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` with
  contextvars propagation through both the threaded and asyncio planes.
- :mod:`repro.obs.propagate` — the opt-in 16-byte trace block that
  rides PBIO messages across processes without perturbing NDR bytes
  (PROTOCOL §11; proven by the golden-vector suite).

The built-in instrumentation (transport, pbio, metaserver, events)
writes to :func:`get_registry` and is gated on its ``enabled`` flag.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    Registry,
    get_registry,
    set_enabled,
    set_registry,
)
from repro.obs.propagate import TRACE_BLOCK_SIZE, TRACE_FLAG, extract, inject
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    current_span,
    current_trace_context,
    get_tracer,
    set_tracer,
    set_wire_tracing,
    wire_tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Registry",
    "get_registry",
    "set_enabled",
    "set_registry",
    "TRACE_BLOCK_SIZE",
    "TRACE_FLAG",
    "extract",
    "inject",
    "Span",
    "TraceContext",
    "Tracer",
    "current_span",
    "current_trace_context",
    "get_tracer",
    "set_tracer",
    "set_wire_tracing",
    "wire_tracing_enabled",
]
