"""Zero-dependency metrics: counters, gauges, and fixed-bucket histograms.

A :class:`Registry` owns named metric *families*; a family plus one
concrete label-value tuple is a *series* (`family.labels(...)` returns a
bound handle).  The design goals mirror the hot paths being measured:

- **lock-free writes** — counters and histograms shard per thread: each
  writing thread owns a private cell (a plain Python list it alone
  mutates), registered once under a lock at first touch.  ``inc`` and
  ``observe`` after that are pure local mutation — no lock, no CAS —
  so instrumenting ``pbio.encode`` or a channel ``send`` does not
  serialize threads that the transport layer deliberately keeps apart.
  Snapshots sum across cells; a reader may see a write a beat late but
  never torn (each cell has exactly one writer) and never lost.
- **snapshot on read** — :meth:`Registry.snapshot` and
  :meth:`Registry.render` aggregate on demand; nothing is aggregated on
  the write path.
- **a kill switch** — hot call sites gate on :attr:`Registry.enabled`
  so a disabled registry costs one attribute check per operation; the
  overhead benchmark (``benchmarks/test_obs_overhead.py``) holds the
  enabled-vs-disabled delta under 5 %.

Gauges are last-write-wins and rarely hot, so they take a small lock.

The process-global default registry (:func:`get_registry` /
:func:`set_registry`) is what the built-in instrumentation and the
``/metrics`` endpoint on both metadata servers use; tests swap in a
fresh one to isolate themselves.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass

from repro.errors import ReproError

#: Default histogram bucket upper bounds, in seconds: 5 µs to 5 s, a
#: span that resolves both a generated-converter decode and a slow
#: metadata fetch through the retry policy.
DEFAULT_BUCKETS = (
    0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """One histogram series, aggregated across threads at read time."""

    count: int
    sum: float
    #: (upper_bound, cumulative_count) pairs; the implicit +Inf bucket
    #: is not listed — its cumulative count is :attr:`count`.
    buckets: tuple[tuple[float, int], ...]


class Counter:
    """A monotonically increasing series, sharded per writing thread."""

    __slots__ = ("_tl", "_cells", "_cells_lock")

    def __init__(self) -> None:
        self._tl = threading.local()
        self._cells: list[list[float]] = []
        self._cells_lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to this series."""
        if amount < 0:
            raise ReproError("counters only go up; use a gauge to decrease")
        try:
            cell = self._tl.cell
        except AttributeError:
            cell = self._tl.cell = [0]
            with self._cells_lock:
                self._cells.append(cell)
        cell[0] += amount

    def value(self) -> float:
        """Current total, summed across every thread that ever wrote."""
        with self._cells_lock:
            cells = list(self._cells)
        return sum(cell[0] for cell in cells)


class Gauge:
    """A point-in-time value: set, add, subtract."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram, sharded per writing thread.

    Each per-thread cell is ``[sum, c_0, ..., c_n]`` where ``c_i`` is
    the *non-cumulative* count of bucket ``i`` and the last bucket is
    the implicit +Inf overflow.  Cumulation happens at snapshot time.
    """

    __slots__ = ("bounds", "_tl", "_cells", "_cells_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self._tl = threading.local()
        self._cells: list[list[float]] = []
        self._cells_lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        try:
            cell = self._tl.cell
        except AttributeError:
            cell = self._tl.cell = [0.0] + [0] * (len(self.bounds) + 1)
            with self._cells_lock:
                self._cells.append(cell)
        cell[0] += value
        # bisect_left gives Prometheus "le" semantics: an observation
        # exactly on a bound counts in that bound's bucket.
        cell[1 + bisect_left(self.bounds, value)] += 1

    def snapshot(self) -> HistogramSnapshot:
        """Aggregate across threads into cumulative-bucket form."""
        with self._cells_lock:
            cells = [list(cell) for cell in self._cells]
        total_sum = 0.0
        per_bucket = [0] * (len(self.bounds) + 1)
        for cell in cells:
            total_sum += cell[0]
            for index, count in enumerate(cell[1:]):
                per_bucket[index] += count
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, per_bucket):
            running += count
            cumulative.append((bound, running))
        return HistogramSnapshot(
            count=running + per_bucket[-1], sum=total_sum,
            buckets=tuple(cumulative),
        )


class _Family:
    """A named metric plus its per-label-value children."""

    kind = "untyped"

    def __init__(self, registry: "Registry", name: str, help_text: str,
                 label_names: tuple[str, ...]) -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, *values) -> object:
        """The series for one concrete label-value tuple (created once)."""
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.label_names):
                raise ReproError(
                    f"metric {self.name!r} declares labels {self.label_names}, "
                    f"got {len(key)} value(s)"
                )
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def series(self) -> list[tuple[tuple[str, ...], object]]:
        """Every (label values, child) pair, sorted by label values."""
        with self._lock:
            return sorted(self._children.items())


class CounterFamily(_Family):
    """A named counter metric; :meth:`labels` binds concrete series."""

    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1) -> None:
        """Convenience for label-less counters."""
        self.labels().inc(amount)

    def value(self) -> float:
        """Total across every series of this family."""
        return sum(child.value() for _, child in self.series())


class GaugeFamily(_Family):
    """A named gauge metric; :meth:`labels` binds concrete series."""

    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        """Convenience for label-less gauges."""
        self.labels().set(value)


class HistogramFamily(_Family):
    """A named histogram metric with shared fixed bucket bounds."""

    kind = "histogram"

    def __init__(self, registry, name, help_text, label_names,
                 buckets: tuple[float, ...]) -> None:
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise ReproError("histograms need at least one bucket bound")
        super().__init__(registry, name, help_text, label_names)
        self.buckets = bounds

    def _make_child(self) -> Histogram:
        return Histogram(self.buckets)

    def observe(self, value: float) -> None:
        """Convenience for label-less histograms."""
        self.labels().observe(value)


class Registry:
    """Named metric families plus text exposition.

    ``enabled`` is the cooperative kill switch: the registry itself
    always accepts writes, but every built-in instrumentation site
    checks the flag first, so ``Registry(enabled=False)`` (or
    :meth:`disable`) reduces the whole observability layer to one
    attribute test per hot operation.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        """Turn the cooperative kill switch on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn the cooperative kill switch off (instrumentation no-ops)."""
        self.enabled = False

    # -- family creation ----------------------------------------------------

    def _family(self, cls, name: str, help_text: str,
                label_names: tuple[str, ...], **extra) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(self, name, help_text, tuple(label_names), **extra)
                    self._families[name] = family
        if not isinstance(family, cls):
            raise ReproError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        if tuple(label_names) != family.label_names:
            raise ReproError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names}, not {tuple(label_names)}"
            )
        return family

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()) -> CounterFamily:
        """Get or create a counter family (idempotent per name)."""
        return self._family(CounterFamily, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = ()) -> GaugeFamily:
        """Get or create a gauge family."""
        return self._family(GaugeFamily, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> HistogramFamily:
        """Get or create a histogram family with fixed bucket bounds."""
        return self._family(HistogramFamily, name, help_text, labels,
                            buckets=buckets)

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Every series' current value, keyed ``name -> {labels: value}``.

        Counter and gauge series map to floats; histogram series map to
        :class:`HistogramSnapshot`.  Label keys are tuples of
        ``(label_name, value)`` pairs.
        """
        with self._lock:
            families = list(self._families.values())
        out: dict[str, dict] = {}
        for family in families:
            series: dict[tuple, object] = {}
            for values, child in family.series():
                key = tuple(zip(family.label_names, values))
                if isinstance(child, Histogram):
                    series[key] = child.snapshot()
                else:
                    series[key] = child.value()
            out[family.name] = series
        return out

    def render(self) -> str:
        """Text exposition (Prometheus 0.0.4 style)."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: list[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.series():
                label_text = _render_labels(family.label_names, values)
                if isinstance(child, Histogram):
                    snap = child.snapshot()
                    for bound, cumulative in snap.buckets:
                        bucket_labels = _render_labels(
                            family.label_names + ("le",),
                            values + (_format_bound(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{bucket_labels} {cumulative}"
                        )
                    inf_labels = _render_labels(
                        family.label_names + ("le",), values + ("+Inf",)
                    )
                    lines.append(f"{family.name}_bucket{inf_labels} {snap.count}")
                    lines.append(f"{family.name}_sum{label_text} {_format_value(snap.sum)}")
                    lines.append(f"{family.name}_count{label_text} {snap.count}")
                else:
                    lines.append(
                        f"{family.name}{label_text} {_format_value(child.value())}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_bound(bound: float) -> str:
    return repr(bound)


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# -- the process-global default registry -----------------------------------

_default_registry = Registry()


def get_registry() -> Registry:
    """The registry the built-in instrumentation writes to."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry (tests install a fresh one); fluent."""
    global _default_registry
    _default_registry = registry
    return registry


def set_enabled(flag: bool) -> None:
    """Enable/disable the default registry's hot-path instrumentation."""
    _default_registry.enabled = flag
