"""Cached metric handles for the built-in instrumentation.

Hot paths must not pay a dict lookup chain (`registry → family →
series`) per operation, so each call site resolves its bound series
once and caches the handles:

- per-format pbio handles live on the :class:`IOFormat` instance
  itself (the same trick as ``fmt._encode_plan``), invalidated when the
  default registry is swapped;
- per-plane channel handles live in a WeakKeyDictionary keyed by
  registry, so test registries are collectable.

Durations on the *encode/decode* path are sampled 1 in
:data:`SAMPLE_EVERY` calls — two ``perf_counter`` calls cost ~0.3 µs,
which an A-record encode (~2 µs) cannot absorb every call within the
<5 % overhead budget the CI smoke enforces.  Counters are exact.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.obs.metrics import Registry

#: pbio durations are timed once per this many operations.
SAMPLE_EVERY = 16
SAMPLE_MASK = SAMPLE_EVERY - 1


@dataclass(frozen=True)
class PbioHandles:
    """Bound *methods* for one format's encode/decode instrumentation.

    Holding ``Counter.inc`` / ``Histogram.observe`` directly (rather
    than the series objects) saves an attribute hop per operation — the
    difference between ~230 ns and ~150 ns per count on the encode hot
    path, which matters inside the 5 % budget.
    """

    registry: Registry
    encode_inc: object
    encode_observe: object
    decode_inc: object
    decode_observe: object


def pbio_handles(fmt, registry: Registry) -> PbioHandles:
    """The (cached) pbio series for ``fmt`` against ``registry``."""
    cached = getattr(fmt, "_obs_pbio", None)
    if cached is not None and cached.registry is registry:
        return cached
    name = fmt.name
    cached = PbioHandles(
        registry=registry,
        encode_inc=registry.counter(
            "pbio_encode_total", "records encoded", ("format",)
        ).labels(name).inc,
        encode_observe=registry.histogram(
            "pbio_encode_seconds",
            f"encode duration, sampled 1/{SAMPLE_EVERY}",
            ("format",),
        ).labels(name).observe,
        decode_inc=registry.counter(
            "pbio_decode_total", "data messages decoded", ("format",)
        ).labels(name).inc,
        decode_observe=registry.histogram(
            "pbio_decode_seconds",
            f"decode duration, sampled 1/{SAMPLE_EVERY}",
            ("format",),
        ).labels(name).observe,
    )
    fmt._obs_pbio = cached
    return cached


@dataclass(frozen=True)
class ChannelHandles:
    """Bound series for one serving plane's channel instrumentation."""

    send_frames: object
    send_bytes: object
    send_seconds: object
    recv_frames: object
    recv_bytes: object
    recv_seconds: object


_channel_cache: "weakref.WeakKeyDictionary[Registry, dict[str, ChannelHandles]]" = (
    weakref.WeakKeyDictionary()
)


def channel_handles(registry: Registry, plane: str) -> ChannelHandles:
    """The (cached) transport series for ``plane`` against ``registry``."""
    per_registry = _channel_cache.get(registry)
    if per_registry is None:
        per_registry = {}
        _channel_cache[registry] = per_registry
    handles = per_registry.get(plane)
    if handles is None:
        frames = registry.counter(
            "transport_frames_total", "frames moved", ("plane", "direction")
        )
        volume = registry.counter(
            "transport_bytes_total", "message bytes moved (sans length prefix)",
            ("plane", "direction"),
        )
        latency = registry.histogram(
            "transport_op_seconds", "send/recv operation duration",
            ("plane", "direction"),
        )
        handles = ChannelHandles(
            send_frames=frames.labels(plane, "send"),
            send_bytes=volume.labels(plane, "send"),
            send_seconds=latency.labels(plane, "send"),
            recv_frames=frames.labels(plane, "recv"),
            recv_bytes=volume.labels(plane, "recv"),
            recv_seconds=latency.labels(plane, "recv"),
        )
        per_registry[plane] = handles
    return handles
