"""Spans and trace propagation for both serving planes.

A :class:`Span` is a named interval with a 64-bit trace id shared by
every span in one causal chain and a 64-bit span id of its own.  The
*current* span rides a :mod:`contextvars` variable, which gives both
planes the right semantics for free: asyncio tasks inherit (and
isolate) their context automatically, and each thread starts fresh.

Cross-process propagation does not happen here — spans only carry ids.
:mod:`repro.obs.propagate` packs the current ``(trace_id, span_id)``
into a trailing block on wire messages when the feature flag
(:func:`set_wire_tracing`) is on; the endpoint layers call it.

Ids come from a module-level ``random.Random`` behind a lock rather
than ``random.getrandbits`` so tests can seed the tracer and get
reproducible ids without disturbing the global RNG.
"""

from __future__ import annotations

import contextvars
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceContext:
    """The minimal cross-process identity of a span: two u64 ids."""

    trace_id: int
    span_id: int


@dataclass
class Span:
    """One named interval in a trace; a context manager."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None = None
    start: float = 0.0
    end: float | None = None
    tags: dict[str, object] = field(default_factory=dict)
    _tracer: "Tracer | None" = field(default=None, repr=False)
    _token: contextvars.Token | None = field(default=None, repr=False)

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    def context(self) -> TraceContext:
        """This span's propagatable identity."""
        return TraceContext(self.trace_id, self.span_id)

    def set_tag(self, key: str, value: object) -> "Span":
        """Attach a key/value annotation; fluent."""
        self.tags[key] = value
        return self

    def finish(self) -> None:
        """End the span, deactivate it, and record it (idempotent)."""
        if self.end is not None:
            return
        self.end = time.monotonic()
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if self._tracer is not None:
            self._tracer._record(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()


#: The active span for the current thread / asyncio task.
_current_span: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Span | None:
    """The span active in this thread or task, if any."""
    return _current_span.get()


def current_trace_context() -> TraceContext | None:
    """The (trace id, span id) to propagate from this context, if any."""
    span = _current_span.get()
    if span is None:
        return None
    return span.context()


class Tracer:
    """Creates spans and keeps a bounded ring of finished ones."""

    def __init__(self, *, max_finished: int = 256, seed: int | None = None) -> None:
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self.finished: deque[Span] = deque(maxlen=max_finished)
        self._finished_lock = threading.Lock()

    def _new_id(self) -> int:
        with self._rng_lock:
            # Never zero: propagation treats trace_id 0 as "absent".
            return self._rng.randrange(1, 1 << 64)

    def _record(self, span: Span) -> None:
        with self._finished_lock:
            self.finished.append(span)

    def start_span(self, name: str, *,
                   parent: TraceContext | Span | None = None,
                   activate: bool = True) -> Span:
        """Start a span, child of ``parent`` or of the current span.

        ``activate=True`` (default) installs it as the context's
        current span until :meth:`Span.finish` / ``with`` exit.
        """
        if parent is None:
            parent = _current_span.get()
        if isinstance(parent, Span):
            parent = parent.context()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._new_id()
            parent_id = None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start=time.monotonic(),
            _tracer=self,
        )
        if activate:
            span._token = _current_span.set(span)
        return span

    def drain_finished(self) -> list[Span]:
        """Pop and return every finished span recorded so far."""
        with self._finished_lock:
            spans = list(self.finished)
            self.finished.clear()
        return spans


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The tracer the built-in instrumentation uses."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (tests install a seeded one); fluent."""
    global _default_tracer
    _default_tracer = tracer
    return tracer


# -- wire-propagation feature flag ------------------------------------------
#
# Off by default: the golden-vector suite proves the wire is
# byte-identical either way, but pre-obs peers should never see the
# trailing block unless an operator asked for it.

_wire_tracing = False


def set_wire_tracing(flag: bool) -> None:
    """Enable/disable piggybacking trace context on wire messages."""
    global _wire_tracing
    _wire_tracing = bool(flag)


def wire_tracing_enabled() -> bool:
    """Whether wire messages carry the trailing trace block."""
    return _wire_tracing
