"""The broker: stream registry, routing, and metadata replay."""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass, field

from repro.errors import TransportError
from repro.obs.metrics import get_registry
from repro.pbio.context import KIND_FORMAT, IOContext


@dataclass
class StreamStats:
    """Per-stream routing counters."""

    data_messages: int = 0
    metadata_messages: int = 0
    bytes_routed: int = 0
    subscribers: int = 0


@dataclass
class _Stream:
    name: str
    queues: list["_SubscriberQueue"] = field(default_factory=list)
    metadata_cache: list[bytes] = field(default_factory=list)
    cached_ids: set[bytes] = field(default_factory=set)
    stats: StreamStats = field(default_factory=StreamStats)
    metadata_url: str | None = None


class RoutedFrame:
    """One routed message, shared by every subscriber of a fan-out.

    The backbone wraps each message in a single :class:`RoutedFrame`
    before delivery, so all N subscriber queues hold the *same* object.
    Remote broker fronts call :meth:`envelope` to get the OP_EVENT wire
    frame — built lazily and cached on the shared object, so a stream
    with N remote subscribers serializes the envelope once instead of N
    times.  Frames are immutable by convention: sinks treat ``message``
    and the envelope as read-only.
    """

    __slots__ = ("stream", "message", "_envelope")

    def __init__(self, stream: str, message: bytes) -> None:
        self.stream = stream
        self.message = message
        self._envelope: bytes | None = None

    def envelope(self) -> bytes:
        """The cached OP_EVENT envelope carrying this frame."""
        env = self._envelope
        if env is None:
            # Imported here: remote depends on backbone, not vice versa.
            from repro.events.remote import OP_EVENT, pack_envelope

            env = pack_envelope(OP_EVENT, self.stream, payload=self.message)
            # Benign race: concurrent builders produce identical bytes.
            self._envelope = env
        return env


class _SubscriberQueue:
    """One subscriber's inbox: (stream, message-or-frame) pairs."""

    def __init__(self) -> None:
        self._items: list[tuple[str, object]] = []
        self._condition = threading.Condition()
        self._closed = False

    def put(self, stream: str, message) -> None:
        with self._condition:
            if self._closed:
                return
            self._items.append((stream, message))
            self._condition.notify()

    def _pop(self, timeout: float | None) -> tuple[str, object]:
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                raise TransportError(f"no event within {timeout}s")
            if self._items:
                return self._items.pop(0)
            raise TransportError("subscription cancelled")

    def get(self, timeout: float | None = None) -> tuple[str, bytes]:
        stream, item = self._pop(timeout)
        if isinstance(item, RoutedFrame):
            return stream, item.message
        return stream, item

    def get_frame(self, timeout: float | None = None) -> RoutedFrame:
        """Like :meth:`get`, but returns the shared :class:`RoutedFrame`.

        Used by remote broker fronts so sibling delivery loops reuse one
        cached envelope.  Items enqueued as raw bytes (metadata replay)
        are wrapped on the way out.
        """
        stream, item = self._pop(timeout)
        if isinstance(item, RoutedFrame):
            return item
        return RoutedFrame(stream, item)

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)


class EventBackbone:
    """A thread-safe publish/subscribe broker for encoded messages.

    Use :meth:`~repro.events.endpoints.Publisher`-returning
    :meth:`publisher` and :meth:`subscribe` rather than the raw
    :meth:`route` / :meth:`add_queue` plumbing.
    """

    def __init__(self, *, sink_failure_limit: int = 3) -> None:
        if sink_failure_limit < 1:
            raise TransportError("sink_failure_limit must be at least 1")
        self._streams: dict[str, _Stream] = {}
        self._patterns: list[tuple[str, _SubscriberQueue]] = []
        self._lock = threading.Lock()
        self.sink_failure_limit = sink_failure_limit
        self._sink_failures: dict[int, int] = {}  # id(queue) -> consecutive
        self.dropped_sinks = 0

    # -- high-level endpoints -----------------------------------------------

    def publisher(self, stream: str, context: IOContext) -> "Publisher":
        """Create a publishing endpoint for ``stream``."""
        from repro.events.endpoints import Publisher

        return Publisher(self, stream, context)

    def subscribe(
        self, pattern: str, context: IOContext, *, expect: str | None = None
    ) -> "Subscription":
        """Subscribe ``context`` to every stream matching ``pattern``.

        ``pattern`` is a glob (``flights.*`` matches present *and
        future* streams).  ``expect`` optionally projects records onto a
        format registered in ``context`` (evolution tolerance).
        """
        from repro.events.endpoints import Subscription

        queue = _SubscriberQueue()
        self.attach_queue(pattern, queue)
        return Subscription(self, pattern, context, queue, expect=expect)

    def attach_queue(self, pattern: str, queue: "_SubscriberQueue") -> None:
        """Plumbing: register a raw queue for ``pattern``.

        Replays cached format metadata for already-matching streams and
        remembers the pattern for streams created later.  Used by
        :meth:`subscribe` and by remote broker fronts
        (:mod:`repro.events.remote`); application code wants
        :meth:`subscribe`.
        """
        with self._lock:
            replay: list[tuple[str, bytes]] = []
            for stream in self._streams.values():
                if fnmatch.fnmatchcase(stream.name, pattern):
                    if queue not in stream.queues:
                        stream.queues.append(queue)
                        stream.stats.subscribers += 1
                    replay.extend(
                        (stream.name, message) for message in stream.metadata_cache
                    )
            self._subscribe_pattern(pattern, queue)
        for stream_name, message in replay:
            queue.put(stream_name, message)

    # -- plumbing ---------------------------------------------------------------

    def _subscribe_pattern(self, pattern: str, queue: _SubscriberQueue) -> None:
        # Remembered so the pattern also matches streams created later.
        self._patterns.append((pattern, queue))

    def _stream(self, name: str) -> _Stream:
        stream = self._streams.get(name)
        if stream is None:
            stream = _Stream(name)
            self._streams[name] = stream
            for pattern, queue in self._patterns:
                if fnmatch.fnmatchcase(name, pattern):
                    stream.queues.append(queue)
                    stream.stats.subscribers += 1
        return stream

    def route(self, stream_name: str, message: bytes) -> int:
        """Route one encoded message; returns delivery count.

        Format-metadata messages are cached per stream (keyed by content)
        for replay to late subscribers.  A sink whose ``put`` raises is
        tolerated up to ``sink_failure_limit`` consecutive failures, then
        detached (bounded failure handling: one wedged subscriber must
        not take the broker down or stall other sinks forever).

        The message is wrapped in one shared :class:`RoutedFrame` for
        the whole fan-out — every subscriber (and every remote delivery
        loop) sees the same object, so the OP_EVENT envelope is built at
        most once per publish, not once per sink.
        """
        # Store-and-forward takes ownership: a view into a reusable
        # transport/encode buffer must be pinned before queues hold it
        # past this call.  (bytes messages — the common case — pass
        # through untouched.)
        if not isinstance(message, bytes):
            message = bytes(message)
        kind, _, _, _, _ = IOContext.parse_header(message)
        with self._lock:
            stream = self._stream(stream_name)
            if kind == KIND_FORMAT:
                digest = hash(message)
                if digest not in stream.cached_ids:
                    stream.cached_ids.add(digest)
                    stream.metadata_cache.append(message)
                stream.stats.metadata_messages += 1
            else:
                stream.stats.data_messages += 1
            stream.stats.bytes_routed += len(message)
            queues = list(stream.queues)
        registry = get_registry()
        if registry.enabled:
            message_kind = "metadata" if kind == KIND_FORMAT else "data"
            registry.counter(
                "events_routed_total", "messages routed by the backbone",
                ("stream", "kind"),
            ).labels(stream_name, message_kind).inc()
            registry.counter(
                "events_routed_bytes_total", "message bytes routed", ("stream",)
            ).labels(stream_name).inc(len(message))
        delivered = 0
        frame = RoutedFrame(stream_name, message)
        for queue in queues:
            try:
                queue.put(stream_name, frame)
            except Exception:
                failures = self._sink_failures.get(id(queue), 0) + 1
                self._sink_failures[id(queue)] = failures
                if failures >= self.sink_failure_limit:
                    self.unsubscribe(queue)
                    self._sink_failures.pop(id(queue), None)
                    self.dropped_sinks += 1
                    if registry.enabled:
                        registry.counter(
                            "events_dropped_sinks_total",
                            "subscriber queues detached after repeated failures",
                        ).inc()
            else:
                delivered += 1
                self._sink_failures.pop(id(queue), None)
        if registry.enabled and queues:
            # Deepest inbox after this fan-out: a rising value means a
            # consumer is falling behind the publisher.
            registry.gauge(
                "events_queue_depth", "deepest subscriber inbox per stream",
                ("stream",),
            ).labels(stream_name).set(max(len(queue) for queue in queues))
        return delivered

    def unsubscribe(self, queue: _SubscriberQueue) -> None:
        """Detach a queue from every stream and pattern; closes it."""
        with self._lock:
            for stream in self._streams.values():
                if queue in stream.queues:
                    stream.queues.remove(queue)
                    stream.stats.subscribers -= 1
            self._patterns = [
                (pattern, q) for pattern, q in self._patterns if q is not queue
            ]
        queue.close()

    # -- introspection -------------------------------------------------------------

    def streams(self) -> list[str]:
        """Names of every stream the backbone has seen."""
        with self._lock:
            return list(self._streams)

    def stats(self, stream_name: str) -> StreamStats:
        """Routing counters for ``stream_name`` (raises if unknown)."""
        with self._lock:
            stream = self._streams.get(stream_name)
            if stream is None:
                raise TransportError(f"no stream named {stream_name!r}")
            return stream.stats

    def set_metadata_url(self, stream_name: str, url: str) -> None:
        """Associate a stream with its schema document URL (discovery)."""
        with self._lock:
            self._stream(stream_name).metadata_url = url

    def metadata_url(self, stream_name: str) -> str | None:
        """The schema URL advertised for ``stream_name``, if any."""
        with self._lock:
            stream = self._streams.get(stream_name)
            return stream.metadata_url if stream else None
