"""The event backbone (substrate S8).

The paper's application scenario (Figures 1 and 3) is an airline
operational information system: capture points publish structured
information streams onto a system-wide *event backbone*; display points,
data access points and transient handheld clients subscribe at run time.

This package implements that backbone as an in-process, thread-safe
publish/subscribe broker carrying *encoded PBIO messages*:

- publishers encode records with their own
  :class:`~repro.pbio.IOContext` (their own architecture — capture
  points are heterogeneous);
- the broker routes opaque message bytes per stream and *caches each
  stream's format-metadata messages*, replaying them to late joiners
  (the paper's handheld devices "which join the network when activated");
- subscribers decode with their own context, learning formats from the
  in-stream metadata — including formats they discovered via xml2wire
  moments earlier.

The broker never decodes data messages: like TIBCO or a multicast
fabric, it is payload-agnostic, which is exactly why NDR's
sender-native encoding works end to end.
"""

from repro.events.backbone import EventBackbone, StreamStats
from repro.events.endpoints import Event, Publisher, Subscription
from repro.events.remote import BrokerServer, RemoteBackboneClient

__all__ = [
    "EventBackbone",
    "StreamStats",
    "Event",
    "Publisher",
    "Subscription",
    "BrokerServer",
    "RemoteBackboneClient",
]
