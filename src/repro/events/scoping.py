"""Scoped publication: one capture point, per-audience stream slices.

Pairs :mod:`repro.core.scoping` with the event backbone: a
:class:`ScopedPublisher` owns one *full* stream and any number of named
scopes; each ``publish`` fans the record out as

- ``<stream>`` — the full record, full format;
- ``<stream>.<scope>`` — the projected record, scoped format;

so subscription *patterns* become the access-control surface: a gate
agent's display subscribes ``flights.departures.public`` while
operations dashboards subscribe ``flights.departures``.  Combined with
the metadata server's dynamic generation (serving each audience its
scoped schema document), this realizes the paper's §4.4 format-scoping
story end to end.
"""

from __future__ import annotations

from repro.core.scoping import project_record, scope_schema
from repro.core.xml2wire import XML2Wire
from repro.errors import SchemaError
from repro.pbio.context import IOContext
from repro.schema.model import SchemaDocument
from repro.schema.parser import parse_schema
from repro.schema.writer import schema_to_xml


class ScopedPublisher:
    """Publish one stream plus named scoped slices of it.

    Parameters
    ----------
    backbone:
        The event backbone (or any object with ``publisher()``).
    stream:
        Base stream name; scopes publish to ``<stream>.<scope>``.
    context:
        The capture point's BCM context.
    schema:
        The full format's schema document (text or parsed).
    type_name:
        The complex type being published.
    scopes:
        Mapping of scope name → list of exposed field names.
    """

    def __init__(
        self,
        backbone,
        stream: str,
        context: IOContext,
        schema: SchemaDocument | str,
        type_name: str,
        scopes: dict[str, list[str]],
    ) -> None:
        if isinstance(schema, str):
            schema = parse_schema(schema)
        self.stream = stream
        self.context = context
        self.type_name = type_name
        tool = XML2Wire(context)
        tool.register_schema(schema)
        self._full_publisher = backbone.publisher(stream, context)
        self._scoped: dict[str, tuple[object, object, object]] = {}
        self.scoped_schemas: dict[str, SchemaDocument] = {}
        for scope_name, fields in scopes.items():
            scoped_type_name = f"{type_name}__{scope_name}"
            scoped_schema = scope_schema(
                schema, type_name, fields, scoped_name=scoped_type_name
            )
            tool.register_schema(scoped_schema)
            scoped_type = scoped_schema.complex_type(scoped_type_name)
            publisher = backbone.publisher(f"{stream}.{scope_name}", context)
            self._scoped[scope_name] = (scoped_type, scoped_type_name, publisher)
            self.scoped_schemas[scope_name] = scoped_schema

    @property
    def scope_names(self) -> list[str]:
        return list(self._scoped)

    def scoped_schema_xml(self, scope_name: str) -> str:
        """The scoped schema document, for the metadata server."""
        try:
            schema = self.scoped_schemas[scope_name]
        except KeyError:
            raise SchemaError(f"no scope named {scope_name!r}") from None
        return schema_to_xml(schema)

    def publish(self, record: dict) -> int:
        """Publish to the full stream and every scope; returns total
        deliveries."""
        delivered = self._full_publisher.publish(self.type_name, record)
        for scoped_type, scoped_type_name, publisher in self._scoped.values():
            projected = project_record(scoped_type, record)
            delivered += publisher.publish(scoped_type_name, projected)
        return delivered
