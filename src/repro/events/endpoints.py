"""Publisher and subscription endpoints for the event backbone."""

from __future__ import annotations

from dataclasses import dataclass

from collections import deque

from repro.obs.propagate import extract, inject
from repro.obs.trace import TraceContext
from repro.pbio.context import (
    HEADER_SIZE,
    KIND_BATCH,
    KIND_DATA,
    KIND_FORMAT,
    IOContext,
)
from repro.pbio.format import IOFormat


class Publisher:
    """A capture point's handle on one stream.

    Encoding happens in the publisher's own context (its own simulated
    architecture); format metadata is pushed onto the stream once per
    format, where the broker caches it for late joiners.
    """

    def __init__(self, backbone, stream: str, context: IOContext) -> None:
        self.backbone = backbone
        self.stream = stream
        self.context = context
        self._announced: set[bytes] = set()
        self.published = 0

    def publish(self, fmt: IOFormat | str, record: dict) -> int:
        """Encode and publish one record; returns the delivery count."""
        if isinstance(fmt, str):
            fmt = self.context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            self.backbone.route(self.stream, self.context.format_message(fmt))
            self._announced.add(fmt.format_id)
        # Injection after encode: subscribers on any plane strip the
        # trace block back off and decode the identical NDR bytes.
        return self.backbone.route(
            self.stream, inject(self.context.encode(fmt, record))
        )

    def publish_batch(self, fmt: IOFormat | str, records, *, use_numpy=None) -> int:
        """Publish ``records`` as ONE columnar batch message.

        The backbone routes a single immutable frame that every matching
        subscriber shares — fan-out cost is per-batch, not per-record.
        Returns the delivery count (subscribers reached).
        """
        if isinstance(fmt, str):
            fmt = self.context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            self.backbone.route(self.stream, self.context.format_message(fmt))
            self._announced.add(fmt.format_id)
        message = self.context.encode_batch(fmt, records, use_numpy=use_numpy)
        return self.backbone.route(self.stream, message)

    def advertise_metadata(self, url: str) -> None:
        """Advertise the stream's schema document URL on the backbone."""
        self.backbone.set_metadata_url(self.stream, url)


@dataclass(frozen=True)
class Event:
    """One decoded event: where it came from plus the record."""

    stream: str
    format_name: str
    values: dict
    #: Trace context piggybacked by the publisher, when wire tracing is
    #: on at the sending end (None otherwise).
    trace: TraceContext | None = None

    def __getitem__(self, name: str):
        return self.values[name]


class Subscription:
    """A consumer's handle on all streams matching a pattern.

    ``next()`` transparently absorbs in-stream format metadata (learning
    the publishers' wire formats) and returns decoded data events.
    """

    def __init__(
        self,
        backbone,
        pattern: str,
        context: IOContext,
        queue,
        *,
        expect: str | None = None,
    ) -> None:
        self.backbone = backbone
        self.pattern = pattern
        self.context = context
        self.expect = expect
        self._queue = queue
        # Events expanded from an already-delivered batch message,
        # handed out one per next() call in batch order.
        self._ready: deque[Event] = deque()
        self.received = 0
        self._active = True

    def next(self, timeout: float | None = None) -> Event:
        """Block for the next data event on any matched stream.

        Columnar batch messages are expanded transparently: each record
        in the batch becomes one event, in batch order.
        """
        while True:
            if self._ready:
                self.received += 1
                return self._ready.popleft()
            stream_name, message = self._queue.get(timeout)
            message, trace = extract(message)
            kind, _, _, length, _ = IOContext.parse_header(message)
            if kind == KIND_FORMAT:
                self.context.learn_format(message[HEADER_SIZE : HEADER_SIZE + length])
                continue
            if kind == KIND_BATCH:
                batch = self.context.decode_batch(message)
                self._ready.extend(
                    Event(
                        stream=stream_name,
                        format_name=batch.format_name,
                        values=values,
                        trace=trace,
                    )
                    for values in batch.records
                )
                continue
            if kind != KIND_DATA:
                continue
            decoded = self.context.decode(message, expect=self.expect)
            self.received += 1
            return Event(
                stream=stream_name,
                format_name=decoded.format_name,
                values=decoded.values,
                trace=trace,
            )

    def drain(self, limit: int, timeout: float | None = 1.0) -> list[Event]:
        """Collect up to ``limit`` events (convenience for tests/examples)."""
        return [self.next(timeout) for _ in range(limit)]

    def pending(self) -> int:
        """Messages queued (data and metadata) awaiting :meth:`next`."""
        return len(self._queue)

    def cancel(self) -> None:
        """Unsubscribe; a blocked :meth:`next` raises TransportError."""
        if self._active:
            self._active = False
            self.backbone.unsubscribe(self._queue)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()
