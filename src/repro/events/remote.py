"""The networked event backbone: broker server and remote clients.

Figure 3's deployment has capture points and consumers on *different
machines*, connected through the backbone.  This module puts the broker
behind a TCP listener so that the in-process
:class:`~repro.events.EventBackbone` semantics — streams, pattern
subscriptions, metadata replay for late joiners — are available across
real sockets.

Wire protocol (per framed message, after the shared length prefix)::

    u8   op          1=SUBSCRIBE  2=PUBLISH  3=EVENT  4=ADVERTISE
    u16  name_len    stream name (PUBLISH/EVENT/ADVERTISE) or pattern
    ...  name          (SUBSCRIBE), UTF-8
    u16  extra_len   metadata URL for ADVERTISE; empty otherwise
    ...  extra
    ...  payload     the opaque application message (PUBLISH/EVENT):
                     a standard PBIO context message, metadata or data

The broker never looks inside payloads — it is subject-based routing in
the TIBCO style the paper names as a delivery substrate.  Application
format metadata flows *through* the broker as ordinary routed messages
and is replayed from the broker's per-stream cache to late subscribers,
so a remote handheld that joins mid-stream decodes without publisher
cooperation, exactly like the in-process case.
"""

from __future__ import annotations

import struct
import threading

from repro.errors import ChannelClosedError, TransportError, WireError
from repro.events.backbone import EventBackbone, _SubscriberQueue
from repro.events.endpoints import Event
from repro.obs.propagate import extract, inject
from repro.pbio.context import (
    HEADER_SIZE,
    KIND_BATCH,
    KIND_DATA,
    KIND_FORMAT,
    IOContext,
)
from repro.pbio.format import IOFormat
from repro.transport.channel import Channel
from repro.transport.tcp import ReconnectingTCPChannel, TCPListener, connect

OP_SUBSCRIBE = 1
OP_PUBLISH = 2
OP_EVENT = 3
OP_ADVERTISE = 4
OP_SUBSCRIBED = 5  # broker -> client: subscription is active
OP_PING = 6
OP_PONG = 7


def pack_envelope(op: int, name: str, extra: str = "", payload: bytes = b"") -> bytes:
    """Build one broker envelope (see docs/PROTOCOL.md §7)."""
    name_bytes = name.encode("utf-8")
    extra_bytes = extra.encode("utf-8")
    return (
        struct.pack(">BH", op, len(name_bytes))
        + name_bytes
        + struct.pack(">H", len(extra_bytes))
        + extra_bytes
        + payload
    )


def unpack_envelope(message: bytes) -> tuple[int, str, str, bytes]:
    """Split an envelope into (op, name, extra, payload)."""
    try:
        op, name_len = struct.unpack_from(">BH", message, 0)
        cursor = 3
        name = message[cursor : cursor + name_len].decode("utf-8")
        cursor += name_len
        (extra_len,) = struct.unpack_from(">H", message, cursor)
        cursor += 2
        extra = message[cursor : cursor + extra_len].decode("utf-8")
        cursor += extra_len
    except (struct.error, UnicodeDecodeError) as exc:
        raise WireError(f"malformed backbone envelope: {exc}") from exc
    return op, name, extra, message[cursor:]


class BrokerServer:
    """A TCP front end over an :class:`EventBackbone`.

    One thread accepts connections; each connection gets a reader
    thread (handling SUBSCRIBE/PUBLISH/ADVERTISE) and a delivery thread
    (pumping matched events back as EVENT envelopes).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        backbone: EventBackbone | None = None,
    ) -> None:
        self.backbone = backbone if backbone is not None else EventBackbone()
        self._listener = TCPListener(host, port)
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self.connections_served = 0

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.address

    def start(self) -> "BrokerServer":
        """Start the accept loop on a daemon thread (fluent)."""
        if self._accept_thread is not None:
            raise TransportError("broker already started")
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, join the accept thread."""
        self._stop.set()
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection handling --------------------------------------------------

    def serve_channel(self, channel: Channel) -> None:
        """Serve a subscriber/publisher over an already-connected channel.

        The broker protocol is channel-agnostic; this entry point is how
        co-located clients skip TCP entirely and attach over an
        :class:`~repro.mp.shm.ShmChannel` (PROTOCOL §15): create a pair,
        hand one end here, drive the other with
        :class:`RemoteBackboneClient`.  Spawns the same reader/delivery
        threads as an accepted connection and returns immediately.
        """
        self.connections_served += 1
        worker = threading.Thread(
            target=self._serve_connection, args=(channel,), daemon=True
        )
        worker.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                channel = self._listener.accept(timeout=0.2)
            except TransportError:
                continue
            except Exception:
                return
            self.connections_served += 1
            worker = threading.Thread(
                target=self._serve_connection, args=(channel,), daemon=True
            )
            worker.start()

    def _serve_connection(self, channel: Channel) -> None:
        queue = _SubscriberQueue()
        send_lock = threading.Lock()
        deliverer = threading.Thread(
            target=self._delivery_loop, args=(channel, queue, send_lock), daemon=True
        )
        deliverer.start()
        subscribed = False
        try:
            while not self._stop.is_set():
                try:
                    message = channel.recv(timeout=0.5)
                except ChannelClosedError:
                    break
                except TransportError as exc:
                    if getattr(exc, "mid_frame", False):
                        break  # stream desynchronized: drop the connection
                    continue  # recv timeout: poll the stop flag
                op, name, extra, payload = unpack_envelope(message)
                if op == OP_SUBSCRIBE:
                    self.backbone.attach_queue(name, queue)
                    subscribed = True
                    # Acknowledge so the client knows routing is active
                    # before it lets publishers race ahead.
                    with send_lock:
                        channel.send(pack_envelope(OP_SUBSCRIBED, name))
                elif op == OP_PUBLISH:
                    self.backbone.route(name, payload)
                elif op == OP_ADVERTISE:
                    self.backbone.set_metadata_url(name, extra)
                elif op == OP_PING:
                    # Messages on one connection are processed in order,
                    # so the pong confirms every earlier publish routed.
                    with send_lock:
                        channel.send(pack_envelope(OP_PONG, name))
                else:
                    raise WireError(f"unexpected op {op} from client")
        except (ChannelClosedError, WireError, OSError):
            pass
        finally:
            if subscribed:
                self.backbone.unsubscribe(queue)
            else:
                queue.close()
            channel.close()

    def _delivery_loop(self, channel: Channel, queue: _SubscriberQueue, lock) -> None:
        while not self._stop.is_set():
            try:
                frame = queue.get_frame(timeout=0.5)
            except TransportError as exc:
                if "cancelled" in str(exc):
                    return
                continue
            try:
                with lock:
                    # envelope() is cached on the frame shared by every
                    # subscriber of this publish: serialized once, sent N
                    # times — no per-sink re-framing.
                    channel.send(frame.envelope())
            except (ChannelClosedError, TransportError, OSError):
                return


class RemoteBackboneClient:
    """A client endpoint on a remote broker.

    Mirrors the in-process API: :meth:`publisher` returns an object with
    ``publish``/``advertise_metadata``; :meth:`subscribe` registers a
    pattern; :meth:`next_event` blocks for the next decoded event across
    all subscribed patterns (learning application formats from in-stream
    metadata, exactly like a local subscription).
    """

    def __init__(self, channel: Channel, context: IOContext) -> None:
        self.channel = channel
        self.context = context
        self._send_lock = threading.Lock()
        self._pending: list[bytes] = []  # events buffered during subscribe
        self._ready: list[Event] = []  # events expanded from a batch message
        self.patterns: list[str] = []

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        context: IOContext,
        *,
        max_reconnects: int = 0,
    ) -> "RemoteBackboneClient":
        """Connect to a broker; ``max_reconnects > 0`` enables bounded
        redial-on-failure with automatic re-subscription of this
        client's patterns (events published while disconnected are
        lost — at-most-once, like the socket itself)."""
        if max_reconnects <= 0:
            return cls(connect(host, port), context)
        client_ref: list["RemoteBackboneClient"] = []

        def resubscribe(fresh_channel) -> None:
            for pattern in client_ref[0].patterns:
                fresh_channel.send(pack_envelope(OP_SUBSCRIBE, pattern))

        channel = ReconnectingTCPChannel(
            host, port, max_reconnects=max_reconnects, on_reconnect=resubscribe
        )
        client = cls(channel, context)
        client_ref.append(client)
        return client

    # -- publishing ----------------------------------------------------------

    def publisher(self, stream: str) -> "RemotePublisher":
        """A publishing handle on ``stream`` over this connection."""
        return RemotePublisher(self, stream)

    def _send(self, message: bytes) -> None:
        with self._send_lock:
            self.channel.send(message)

    # -- subscribing ----------------------------------------------------------

    def subscribe(self, pattern: str, timeout: float = 10.0) -> None:
        """Register ``pattern``; returns once the broker confirms.

        The confirmation matters: without it, a publish on another
        connection could be routed before this subscription exists and
        the event would be silently missed.  Events arriving for earlier
        subscriptions while waiting are buffered for :meth:`next_event`.
        """
        self._send(pack_envelope(OP_SUBSCRIBE, pattern))
        while True:
            message = self.channel.recv(timeout)
            op, name, _, _ = unpack_envelope(message)
            if op == OP_SUBSCRIBED and name == pattern:
                break
            if op == OP_EVENT:
                self._pending.append(message)
                continue
            raise WireError(f"unexpected op {op} while awaiting subscribe ack")
        self.patterns.append(pattern)

    def flush(self, timeout: float = 10.0) -> None:
        """Block until the broker has processed everything sent so far."""
        self._send(pack_envelope(OP_PING, "sync"))
        while True:
            message = self.channel.recv(timeout)
            op, _, _, _ = unpack_envelope(message)
            if op == OP_PONG:
                return
            if op == OP_EVENT:
                self._pending.append(message)
                continue
            raise WireError(f"unexpected op {op} while awaiting pong")

    def next_event(
        self, timeout: float | None = None, *, expect: str | None = None
    ) -> Event:
        """Block for the next data event on any subscribed pattern.

        Columnar batch messages are expanded transparently: each record
        in the batch becomes one event, in batch order.
        """
        while True:
            if self._ready:
                return self._ready.pop(0)
            if self._pending:
                message = self._pending.pop(0)
            else:
                message = self.channel.recv(timeout)
            op, stream_name, _, payload = unpack_envelope(message)
            if op in (OP_SUBSCRIBED, OP_PONG):
                # Late acks (e.g. automatic re-subscription after a
                # reconnect) are not events; skip them.
                continue
            if op != OP_EVENT:
                raise WireError(f"unexpected op {op} from broker")
            payload, trace = extract(payload)
            kind, _, _, length, _ = IOContext.parse_header(payload)
            if kind == KIND_FORMAT:
                self.context.learn_format(payload[HEADER_SIZE : HEADER_SIZE + length])
                continue
            if kind == KIND_BATCH:
                batch = self.context.decode_batch(payload)
                self._ready.extend(
                    Event(
                        stream=stream_name,
                        format_name=batch.format_name,
                        values=values,
                        trace=trace,
                    )
                    for values in batch.records
                )
                continue
            if kind != KIND_DATA:
                continue
            decoded = self.context.decode(payload, expect=expect)
            return Event(
                stream=stream_name,
                format_name=decoded.format_name,
                values=decoded.values,
                trace=trace,
            )

    def close(self) -> None:
        """Disconnect from the broker."""
        self.channel.close()

    def __enter__(self) -> "RemoteBackboneClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemotePublisher:
    """A capture point's handle on one stream of a remote broker."""

    def __init__(self, client: RemoteBackboneClient, stream: str) -> None:
        self.client = client
        self.stream = stream
        self._announced: set[bytes] = set()
        self.published = 0

    def publish(self, fmt: IOFormat | str, record: dict) -> None:
        """Encode and publish one record (metadata pushed on first use)."""
        context = self.client.context
        if isinstance(fmt, str):
            fmt = context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            self.client._send(
                pack_envelope(
                    OP_PUBLISH, self.stream, payload=context.format_message(fmt)
                )
            )
            self._announced.add(fmt.format_id)
        self.client._send(
            pack_envelope(
                OP_PUBLISH, self.stream, payload=inject(context.encode(fmt, record))
            )
        )
        self.published += 1

    def publish_batch(self, fmt: IOFormat | str, records, *, use_numpy=None) -> int:
        """Publish ``records`` as ONE columnar batch message; returns
        the record count.  The broker routes the single frame to every
        matching subscriber — fan-out cost is per-batch, not per-record.
        """
        context = self.client.context
        if isinstance(fmt, str):
            fmt = context.lookup_format(fmt)
        if fmt.format_id not in self._announced:
            self.client._send(
                pack_envelope(
                    OP_PUBLISH, self.stream, payload=context.format_message(fmt)
                )
            )
            self._announced.add(fmt.format_id)
        message = context.encode_batch(fmt, records, use_numpy=use_numpy)
        self.client._send(pack_envelope(OP_PUBLISH, self.stream, payload=message))
        self.published += 1
        return len(records)

    def advertise_metadata(self, url: str) -> None:
        """Advertise the stream's schema document URL on the broker."""
        self.client._send(pack_envelope(OP_ADVERTISE, self.stream, extra=url))
