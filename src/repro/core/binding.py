"""Binding: associating discovered metadata with program data.

"Binding usually results in the construction of some type of message
format descriptor or token which the programmer can use during
marshaling" (§3.1).  :class:`BoundFormat` is that token: a format plus
the context it was registered with, exposing marshal/unmarshal and a
structural pre-check of record shapes (the programmer-responsibility
compatibility check that compiled-metadata systems leave implicit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.model import TypeKind
from repro.errors import BindingError
from repro.pbio.context import DecodedRecord, IOContext
from repro.pbio.format import CompiledField, IOFormat


def bind(context: IOContext, fmt: IOFormat | str) -> "BoundFormat":
    """Bind a registered format to ``context``, returning the token."""
    if isinstance(fmt, str):
        fmt = context.lookup_format(fmt)
    return BoundFormat(context=context, format=fmt)


@dataclass(frozen=True)
class BoundFormat:
    """A marshaling token: (context, format) ready for data exchange."""

    context: IOContext
    format: IOFormat

    @property
    def name(self) -> str:
        return self.format.name

    def encode(self, record: dict) -> bytes:
        """Marshal ``record`` into a framed message."""
        return self.context.encode(self.format, record)

    def decode(self, message: bytes) -> DecodedRecord:
        """Unmarshal a framed message (projecting onto this format)."""
        return self.context.decode(message, expect=self.format.name)

    def check(self, record: dict) -> None:
        """Structurally validate ``record`` against the format.

        Raises :class:`~repro.errors.BindingError` describing every
        mismatch (missing fields, wrong shapes, non-numeric values in
        numeric fields).  Cheap enough to run on first use; the encode
        path repeats the checks anyway, so this is a debugging aid.
        """
        problems: list[str] = []
        _check_record(self.format, record, "", problems)
        if problems:
            raise BindingError(
                f"record does not fit format {self.format.name!r}: "
                + "; ".join(problems[:10])
            )


def validate_record(fmt: IOFormat, record: dict) -> list[str]:
    """Return a list of structural problems (empty when compatible)."""
    problems: list[str] = []
    _check_record(fmt, record, "", problems)
    return problems


def _check_record(fmt: IOFormat, record: dict, prefix: str, problems: list[str]) -> None:
    if not isinstance(record, dict):
        problems.append(f"{prefix or fmt.name}: expected a dict")
        return
    known = set(fmt.field_names())
    for name in record:
        if name not in known:
            problems.append(f"{prefix}{name}: not a field of {fmt.name!r}")
    for field in fmt.compiled_fields:
        path = f"{prefix}{field.name}"
        if field.name not in record:
            if field.name in fmt.length_field_names:
                continue  # counts are derived at encode time
            problems.append(f"{path}: missing")
            continue
        _check_value(field, record[field.name], path, problems)


def _check_value(field: CompiledField, value, path: str, problems: list[str]) -> None:
    if field.nested is not None:
        if field.static_count == 1:
            _check_record(field.nested, value, path + ".", problems)
        elif not isinstance(value, (list, tuple)) or len(value) != field.static_count:
            problems.append(f"{path}: expected {field.static_count} nested records")
        else:
            for index, element in enumerate(value):
                _check_record(field.nested, element, f"{path}[{index}].", problems)
        return
    if field.type.is_dynamic_array:
        if value is not None and not isinstance(value, (list, tuple)):
            problems.append(f"{path}: expected a sequence or None")
        elif value:
            _check_scalars(field, value, path, problems)
        return
    if field.is_string:
        expected = field.static_count
        if expected == 1:
            if value is not None and not isinstance(value, str):
                problems.append(f"{path}: expected str or None")
        elif not isinstance(value, (list, tuple)) or len(value) != expected:
            problems.append(f"{path}: expected {expected} strings")
        return
    if field.kind == TypeKind.CHAR and field.type.is_static_array:
        if not isinstance(value, (str, bytes)):
            problems.append(f"{path}: expected str or bytes")
        return
    if field.type.is_static_array:
        if not isinstance(value, (list, tuple)) or len(value) != field.static_count:
            problems.append(f"{path}: expected {field.static_count} elements")
        else:
            _check_scalars(field, value, path, problems)
        return
    _check_scalars(field, [value], path, problems)


def _check_scalars(field: CompiledField, values, path: str, problems: list[str]) -> None:
    for value in values:
        if field.kind in (TypeKind.SIGNED_INT, TypeKind.UNSIGNED_INT, TypeKind.ENUMERATION):
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"{path}: expected int, got {type(value).__name__}")
                return
        elif field.kind == TypeKind.FLOAT:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{path}: expected float, got {type(value).__name__}")
                return
        elif field.kind == TypeKind.CHAR:
            if not isinstance(value, (str, bytes, int)):
                problems.append(f"{path}: expected a character")
                return
