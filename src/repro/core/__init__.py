"""xml2wire — the paper's primary contribution (S9).

The tool decomposes metadata handling into the paper's three orthogonal
steps and provides each as an explicit API surface:

1. **Discovery** (:mod:`~repro.core.discovery`) — find the XML Schema
   document describing a message format: from a URL on a metadata
   server, from a local file, or from compiled-in metadata as the
   fault-tolerant fallback; a :class:`DiscoveryChain` tries sources in
   order.
2. **Binding** (:mod:`~repro.core.binding`) — associate a discovered
   format with program data, yielding a :class:`BoundFormat` token used
   during marshaling (and able to pre-validate record shapes).
3. **Marshaling** — performed by the unchanged PBIO engine
   (:mod:`repro.pbio`); xml2wire never touches the data path, which is
   why its per-message overhead is zero.

:class:`~repro.core.xml2wire.XML2Wire` itself is the bridge: it parses
schema documents, computes the native structure layout for the target
context's architecture (the run-time analogue of the paper's
``sizeof``/C++-template offset computation), builds the
:class:`~repro.core.catalog.Catalog` of Format/Field structures of
Figure 2, and registers the resulting formats with the BCM.
"""

from repro.core.binding import BoundFormat, bind, validate_record
from repro.core.catalog import Catalog, CatalogEntry
from repro.core.discovery import (
    CompiledSource,
    DiscoveryAttempt,
    DiscoveryChain,
    DiscoveryReport,
    DiscoveryResult,
    FileSource,
    SourceHealth,
    URLSource,
)
from repro.core.mapping import map_primitive
from repro.core.xml2wire import XML2Wire

__all__ = [
    "BoundFormat",
    "bind",
    "validate_record",
    "Catalog",
    "CatalogEntry",
    "CompiledSource",
    "DiscoveryAttempt",
    "DiscoveryChain",
    "DiscoveryReport",
    "DiscoveryResult",
    "FileSource",
    "SourceHealth",
    "URLSource",
    "map_primitive",
    "XML2Wire",
]
