"""XML2Wire: parse XML Schema metadata and register it with the BCM.

The registration pipeline for each complex type (paper §4.2.2):

1. **Field Type** — map the element's ``type`` attribute to a PBIO type
   (primitives via :mod:`~repro.core.mapping`; previously defined names
   via the :class:`~repro.core.catalog.Catalog`).
2. **Field Size** — ``sizeof`` the mapped C type *on the target
   architecture* (the layout engine plays the role of the C compiler, so
   "the platform-dependent calculations are carried out ... on the same
   machine which will actually perform the PBIO calls").
3. **Field Offset** — computed with full padding awareness by the layout
   engine; the naive sum-of-sizes the paper warns about is demonstrably
   wrong on these structures (see ``tests/arch``).

Dynamic arrays follow the paper's three ``maxOccurs`` forms; a wildcard
array synthesizes the ``<name>_count`` integer field that Figure 8's
PBIO metadata shows but Figure 9's XML omits.

xml2wire performs no marshaling: the produced
:class:`~repro.pbio.IOFormat` objects are handed to the programmer (and
registered with the supplied context) "for later use".
"""

from __future__ import annotations

import os

from repro.arch.layout import FieldDecl, StructLayout, layout_struct
from repro.core.catalog import Catalog, CatalogEntry
from repro.core.mapping import map_primitive
from repro.errors import SchemaError
from repro.pbio.context import IOContext
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat
from repro.schema.datatypes import is_xsd_namespace, lookup_primitive
from repro.schema.model import ComplexType, ElementDecl, SchemaDocument
from repro.schema.parser import parse_schema, parse_schema_file


class XML2Wire:
    """The metadata tool: schema documents in, registered formats out.

    Parameters
    ----------
    context:
        The BCM endpoint to register formats with.  The context's
        architecture model determines all sizes and offsets, exactly as
        running the original tool on that machine would.
    """

    def __init__(self, context: IOContext) -> None:
        self.context = context
        self.catalog = Catalog()

    # -- registration entry points -----------------------------------------

    def register_schema(self, schema: SchemaDocument | str) -> list[IOFormat]:
        """Register every complex type of a schema document.

        ``schema`` may be a parsed document or XML text.  Returns the
        registered formats in definition order.  Complex types already
        in the catalog with identical metadata are skipped idempotently.
        """
        if isinstance(schema, str):
            schema = parse_schema(schema)
        registered: list[IOFormat] = []
        for complex_type in schema.complex_types.values():
            registered.append(self._register_complex_type(complex_type, schema))
        return registered

    def register_file(self, path: str | os.PathLike) -> list[IOFormat]:
        """Register formats from a schema document on the file system."""
        return self.register_schema(parse_schema_file(path))

    def register_url(self, url: str, client) -> list[IOFormat]:
        """Register formats from a remote schema document.

        ``client`` is a :class:`~repro.metaserver.MetadataClient` (or
        anything with a ``get_schema(url)`` method).
        """
        return self.register_schema(client.get_schema(url))

    def lookup(self, name: str) -> IOFormat:
        """Return a previously registered format by name."""
        return self.catalog.get(name).io_format

    # -- the Figure 2 pipeline ------------------------------------------------

    def _register_complex_type(
        self, complex_type: ComplexType, schema: SchemaDocument
    ) -> IOFormat:
        if complex_type.name in self.catalog:
            return self.catalog.get(complex_type.name).io_format
        layout = self._build_layout(complex_type, schema)
        io_fields = self._build_io_fields(complex_type, schema, layout)
        io_format = IOFormat(
            complex_type.name,
            io_fields,
            self.context.arch,
            record_length=layout.size,
            catalog=self.catalog.formats(),
        )
        io_format = self.context.adopt_format(io_format)
        self.catalog.add(
            CatalogEntry(
                name=complex_type.name,
                layout=layout,
                io_fields=tuple(io_fields),
                io_format=io_format,
            )
        )
        return io_format

    def _build_layout(
        self, complex_type: ComplexType, schema: SchemaDocument
    ) -> StructLayout:
        """Compute the native structure layout for the target machine."""
        decls: list[FieldDecl] = []
        declared = set(complex_type.element_names())
        for element in complex_type.elements:
            decls.extend(self._field_decls(complex_type, element, schema, declared))
        return layout_struct(self.context.arch, complex_type.name, decls)

    def _field_decls(
        self,
        complex_type: ComplexType,
        element: ElementDecl,
        schema: SchemaDocument,
        declared: set[str],
    ) -> list[FieldDecl]:
        occurs = element.occurs
        if is_xsd_namespace(element.type_namespace) or element.type_name in schema.simple_types:
            mapping = self._mapping_for(element, schema)
            if occurs.is_dynamic_array:
                if mapping.is_string:
                    raise SchemaError(
                        f"complex type {complex_type.name!r}: dynamic arrays of "
                        f"strings are not supported by the BCM "
                        f"(element {element.name!r})"
                    )
                decls = [FieldDecl(element.name, mapping.c_type + "*")]
                if occurs.synthesized_length and occurs.length_field not in declared:
                    decls.append(FieldDecl(occurs.length_field, "int"))
                    declared.add(occurs.length_field)
                return decls
            if occurs.is_fixed_array:
                if mapping.is_string:
                    return [FieldDecl(element.name, "char*", occurs.count)]
                return [FieldDecl(element.name, mapping.c_type, occurs.count)]
            return [FieldDecl(element.name, mapping.c_type)]
        # Composition by nesting: a previously defined complex type.
        nested = self.catalog.get(element.type_name)
        if occurs.is_dynamic_array:
            raise SchemaError(
                f"complex type {complex_type.name!r}: dynamic arrays of nested "
                f"types are not supported by the BCM (element {element.name!r})"
            )
        return [FieldDecl(element.name, nested.layout, occurs.count)]

    def _build_io_fields(
        self,
        complex_type: ComplexType,
        schema: SchemaDocument,
        layout: StructLayout,
    ) -> list[IOField]:
        fields: list[IOField] = []
        handled: set[str] = set()
        for element in complex_type.elements:
            occurs = element.occurs
            is_primitive = is_xsd_namespace(element.type_namespace) or (
                element.type_name in schema.simple_types
            )
            if is_primitive:
                mapping = self._mapping_for(element, schema)
                if occurs.is_dynamic_array:
                    element_size = self.context.arch.sizeof(mapping.c_type)
                    fields.append(
                        IOField(
                            element.name,
                            f"{mapping.pbio_type}[{occurs.length_field}]",
                            element_size,
                            layout.offsetof(element.name),
                        )
                    )
                    if occurs.synthesized_length and occurs.length_field not in handled:
                        fields.append(
                            IOField(
                                occurs.length_field,
                                "integer",
                                self.context.arch.sizeof("int"),
                                layout.offsetof(occurs.length_field),
                            )
                        )
                        handled.add(occurs.length_field)
                    continue
                slot = layout.slot(element.name)
                if occurs.is_fixed_array:
                    type_string = f"{mapping.pbio_type}[{occurs.count}]"
                else:
                    type_string = mapping.pbio_type
                fields.append(
                    IOField(element.name, type_string, slot.element_size, slot.offset)
                )
                continue
            # Nested user type.
            nested = self.catalog.get(element.type_name)
            slot = layout.slot(element.name)
            if occurs.is_fixed_array:
                type_string = f"{element.type_name}[{occurs.count}]"
            else:
                type_string = element.type_name
            fields.append(
                IOField(element.name, type_string, nested.structure_size, slot.offset)
            )
        return fields

    def _mapping_for(self, element: ElementDecl, schema: SchemaDocument):
        if is_xsd_namespace(element.type_namespace):
            return map_primitive(lookup_primitive(element.type_name))
        simple = schema.simple_types.get(element.type_name)
        if simple is None:
            raise SchemaError(
                f"element {element.name!r} references unknown type "
                f"{element.type_name!r}"
            )
        return map_primitive(simple.base)
