"""Metadata discovery: ordered sources with fault-tolerant fallback.

The paper's §3.3 architecture: remote discovery as the primary method,
compiled-in metadata as the degraded-mode fallback when "a broken
network link or hardware failure" makes the metadata server unreachable.
A :class:`DiscoveryChain` expresses that policy as an ordered list of
sources; :meth:`~DiscoveryChain.discover` returns the first source that
yields a valid schema document, along with where it came from, and
raises a :class:`~repro.errors.DiscoveryError` listing every failure if
all sources are exhausted.

Resilience semantics on top of plain first-success:

- **per-source health** — every source carries a :class:`SourceHealth`
  record (consecutive and total failures, successes); a source that
  fails ``demote_after`` consecutive times is *demoted* for
  ``demotion_period`` seconds: it moves to the back of the try order so
  a known-dead metadata server stops costing a timeout on every
  discovery, yet is still available as a last resort and is retried
  (and, on success, restored) once the demotion expires;
- **structured reporting** — each :meth:`~DiscoveryChain.discover`
  produces a :class:`DiscoveryReport` listing every attempt (source,
  outcome, error, elapsed seconds), attached to the
  :class:`DiscoveryResult`, so degraded operation is observable rather
  than silent.
"""

from __future__ import annotations

import abc
import os
import time
from dataclasses import dataclass, field

from repro.errors import DiscoveryError, ReproError
from repro.schema.model import SchemaDocument
from repro.schema.parser import parse_schema, parse_schema_file


class MetadataSource(abc.ABC):
    """One place a schema document may come from."""

    @abc.abstractmethod
    def fetch(self) -> SchemaDocument:
        """Return the schema, or raise any ReproError on failure."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable identity for logs and error messages."""


class URLSource(MetadataSource):
    """Remote discovery: a schema document on a metadata server."""

    def __init__(self, url: str, client) -> None:
        self.url = url
        self.client = client
        self.last_stale = False

    def fetch(self) -> SchemaDocument:
        """Retrieve and parse the document from the URL."""
        schema = self.client.get_schema(self.url)
        last = getattr(self.client, "last_result", None)
        self.last_stale = bool(last is not None and last.stale)
        return schema

    def describe(self) -> str:
        """``url:<location>``."""
        return f"url:{self.url}"


class FileSource(MetadataSource):
    """Local discovery: a schema document on the file system."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)

    def fetch(self) -> SchemaDocument:
        """Parse the document from the file system."""
        if not os.path.exists(self.path):
            raise DiscoveryError(f"no schema file at {self.path}")
        return parse_schema_file(self.path)

    def describe(self) -> str:
        """``file:<path>``."""
        return f"file:{self.path}"


class CompiledSource(MetadataSource):
    """Compiled-in metadata: the fault-tolerant last resort.

    Holds a schema that shipped with the application ("a small set of
    compiled-in message formats" letting it reach a configuration server
    even when discovery infrastructure is down).
    """

    def __init__(self, schema: SchemaDocument | str, label: str = "builtin") -> None:
        self._schema = parse_schema(schema) if isinstance(schema, str) else schema
        self.label = label

    def fetch(self) -> SchemaDocument:
        """Return the schema shipped with the application."""
        return self._schema

    def describe(self) -> str:
        """``compiled:<label>``."""
        return f"compiled:{self.label}"


@dataclass
class SourceHealth:
    """Rolling health of one source across discoveries."""

    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    demoted_until: float = 0.0  # clock time; 0 when never demoted

    def demoted(self, now: float) -> bool:
        """True while the source is pushed to the back of the try order."""
        return now < self.demoted_until


@dataclass(frozen=True)
class DiscoveryAttempt:
    """One source tried during one discovery."""

    source: str
    ok: bool
    error: str | None = None
    elapsed: float = 0.0
    stale: bool = False  # succeeded, but from an expired cache entry


@dataclass
class DiscoveryReport:
    """Everything one :meth:`DiscoveryChain.discover` call tried."""

    attempts: list[DiscoveryAttempt] = field(default_factory=list)

    @property
    def failures(self) -> list[DiscoveryAttempt]:
        return [attempt for attempt in self.attempts if not attempt.ok]

    @property
    def tried(self) -> int:
        return len(self.attempts)

    def describe(self) -> str:
        """One line per attempt, for logs."""
        lines = []
        for attempt in self.attempts:
            status = "ok" if attempt.ok else f"failed: {attempt.error}"
            if attempt.ok and attempt.stale:
                status = "ok (stale)"
            lines.append(f"{attempt.source} -> {status} ({attempt.elapsed * 1e3:.1f}ms)")
        return "\n".join(lines)


@dataclass(frozen=True)
class DiscoveryResult:
    """A successful discovery: the schema plus provenance."""

    schema: SchemaDocument
    source: str
    attempts: tuple[str, ...]  # sources tried before this one succeeded
    report: DiscoveryReport | None = None
    stale: bool = False  # schema came from an expired metadata cache

    @property
    def degraded(self) -> bool:
        """True if any earlier (preferred) source had to be skipped."""
        return bool(self.attempts) or self.stale


class DiscoveryChain:
    """Ordered metadata sources with first-success semantics.

    Parameters
    ----------
    demote_after:
        Consecutive failures before a source is temporarily demoted
        to the back of the try order.
    demotion_period:
        Seconds a demotion lasts; afterwards the source resumes its
        configured position (and a success clears its failure streak).
    reprobe_interval:
        Seconds between background re-probes of demoted sources.  A
        demoted source is normally only restored when a discovery
        reaches it — which never happens while an earlier source keeps
        succeeding, and leaves a *fully*-demoted chain waiting out every
        demotion period even after the servers came back.  With an
        interval set, :meth:`discover` re-probes demoted sources (at
        most once per interval) and a successful probe restores the
        source's health immediately — a revived metadata server regains
        its configured position without a process restart.  ``None``
        disables re-probing (the pre-existing behavior).
    clock:
        Injectable monotonic clock, for deterministic tests.
    """

    def __init__(
        self,
        sources: list[MetadataSource] | None = None,
        *,
        demote_after: int = 3,
        demotion_period: float = 30.0,
        reprobe_interval: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if demote_after < 1:
            raise DiscoveryError("demote_after must be at least 1")
        if reprobe_interval is not None and reprobe_interval <= 0:
            raise DiscoveryError("reprobe_interval must be positive")
        self.sources: list[MetadataSource] = list(sources or [])
        self.demote_after = demote_after
        self.demotion_period = demotion_period
        self.reprobe_interval = reprobe_interval
        self._last_reprobe = float("-inf")
        self.reprobes = 0  # re-probe fetches attempted
        self._health: dict[int, SourceHealth] = {}
        self._clock = clock
        self.last_report: DiscoveryReport | None = None

    def add(self, source: MetadataSource) -> "DiscoveryChain":
        """Append a source (fluent)."""
        self.sources.append(source)
        return self

    def health(self, source: MetadataSource) -> SourceHealth:
        """The health record for ``source`` (created on first access)."""
        record = self._health.get(id(source))
        if record is None:
            record = SourceHealth()
            self._health[id(source)] = record
        return record

    def _try_order(self, now: float) -> list[MetadataSource]:
        healthy = [s for s in self.sources if not self.health(s).demoted(now)]
        demoted = [s for s in self.sources if self.health(s).demoted(now)]
        return healthy + demoted

    def reprobe(self) -> int:
        """Probe every currently-demoted source; restore the revived ones.

        Each demoted source gets one :meth:`~MetadataSource.fetch`; a
        success clears its failure streak and demotion (the source
        resumes its configured position on the next discovery), a
        failure re-arms the demotion window from now.  Returns how many
        sources were restored.  Safe to call from a timer thread; also
        invoked automatically by :meth:`discover` when
        ``reprobe_interval`` is set.
        """
        now = self._clock()
        restored = 0
        for source in self.sources:
            health = self.health(source)
            if not health.demoted(now):
                continue
            self.reprobes += 1
            try:
                source.fetch()
            except ReproError:
                health.failures += 1
                health.consecutive_failures += 1
                health.demoted_until = self._clock() + self.demotion_period
                continue
            health.consecutive_failures = 0
            health.successes += 1
            health.demoted_until = 0.0
            restored += 1
        return restored

    def _maybe_reprobe(self, now: float) -> None:
        if self.reprobe_interval is None:
            return
        if now - self._last_reprobe < self.reprobe_interval:
            return
        self._last_reprobe = now
        self.reprobe()

    def discover(self) -> DiscoveryResult:
        """Try each source in order; return the first schema found.

        Demoted sources are tried last but never skipped outright, so a
        chain whose preferred server is down still terminates at the
        compiled-in fallback.  Raises
        :class:`~repro.errors.DiscoveryError` naming every failed source
        and its reason when the chain is exhausted.
        """
        if not self.sources:
            raise DiscoveryError("discovery chain has no sources")
        now = self._clock()
        self._maybe_reprobe(now)
        report = DiscoveryReport()
        self.last_report = report
        failures: list[str] = []
        for source in self._try_order(now):
            health = self.health(source)
            started = self._clock()
            try:
                schema = source.fetch()
            except ReproError as exc:
                health.consecutive_failures += 1
                health.failures += 1
                if health.consecutive_failures >= self.demote_after:
                    health.demoted_until = self._clock() + self.demotion_period
                failures.append(f"{source.describe()}: {exc}")
                report.attempts.append(
                    DiscoveryAttempt(
                        source=source.describe(),
                        ok=False,
                        error=str(exc),
                        elapsed=self._clock() - started,
                    )
                )
                continue
            health.consecutive_failures = 0
            health.successes += 1
            health.demoted_until = 0.0
            stale = bool(getattr(source, "last_stale", False))
            report.attempts.append(
                DiscoveryAttempt(
                    source=source.describe(),
                    ok=True,
                    elapsed=self._clock() - started,
                    stale=stale,
                )
            )
            return DiscoveryResult(
                schema=schema,
                source=source.describe(),
                attempts=tuple(failures),
                report=report,
                stale=stale,
            )
        details = "; ".join(failures)
        raise DiscoveryError(f"all metadata sources failed: {details}")
