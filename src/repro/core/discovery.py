"""Metadata discovery: ordered sources with fault-tolerant fallback.

The paper's §3.3 architecture: remote discovery as the primary method,
compiled-in metadata as the degraded-mode fallback when "a broken
network link or hardware failure" makes the metadata server unreachable.
A :class:`DiscoveryChain` expresses that policy as an ordered list of
sources; :meth:`~DiscoveryChain.discover` returns the first source that
yields a valid schema document, along with where it came from, and
raises a :class:`~repro.errors.DiscoveryError` listing every failure if
all sources are exhausted.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass

from repro.errors import DiscoveryError, ReproError
from repro.schema.model import SchemaDocument
from repro.schema.parser import parse_schema, parse_schema_file


class MetadataSource(abc.ABC):
    """One place a schema document may come from."""

    @abc.abstractmethod
    def fetch(self) -> SchemaDocument:
        """Return the schema, or raise any ReproError on failure."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable identity for logs and error messages."""


class URLSource(MetadataSource):
    """Remote discovery: a schema document on a metadata server."""

    def __init__(self, url: str, client) -> None:
        self.url = url
        self.client = client

    def fetch(self) -> SchemaDocument:
        """Retrieve and parse the document from the URL."""
        return self.client.get_schema(self.url)

    def describe(self) -> str:
        """``url:<location>``."""
        return f"url:{self.url}"


class FileSource(MetadataSource):
    """Local discovery: a schema document on the file system."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)

    def fetch(self) -> SchemaDocument:
        """Parse the document from the file system."""
        if not os.path.exists(self.path):
            raise DiscoveryError(f"no schema file at {self.path}")
        return parse_schema_file(self.path)

    def describe(self) -> str:
        """``file:<path>``."""
        return f"file:{self.path}"


class CompiledSource(MetadataSource):
    """Compiled-in metadata: the fault-tolerant last resort.

    Holds a schema that shipped with the application ("a small set of
    compiled-in message formats" letting it reach a configuration server
    even when discovery infrastructure is down).
    """

    def __init__(self, schema: SchemaDocument | str, label: str = "builtin") -> None:
        self._schema = parse_schema(schema) if isinstance(schema, str) else schema
        self.label = label

    def fetch(self) -> SchemaDocument:
        """Return the schema shipped with the application."""
        return self._schema

    def describe(self) -> str:
        """``compiled:<label>``."""
        return f"compiled:{self.label}"


@dataclass(frozen=True)
class DiscoveryResult:
    """A successful discovery: the schema plus provenance."""

    schema: SchemaDocument
    source: str
    attempts: tuple[str, ...]  # sources tried before this one succeeded

    @property
    def degraded(self) -> bool:
        """True if any earlier (preferred) source had to be skipped."""
        return bool(self.attempts)


class DiscoveryChain:
    """Ordered metadata sources with first-success semantics."""

    def __init__(self, sources: list[MetadataSource] | None = None) -> None:
        self.sources: list[MetadataSource] = list(sources or [])

    def add(self, source: MetadataSource) -> "DiscoveryChain":
        """Append a source (fluent)."""
        self.sources.append(source)
        return self

    def discover(self) -> DiscoveryResult:
        """Try each source in order; return the first schema found.

        Raises :class:`~repro.errors.DiscoveryError` naming every failed
        source and its reason when the chain is exhausted.
        """
        if not self.sources:
            raise DiscoveryError("discovery chain has no sources")
        failures: list[str] = []
        for source in self.sources:
            try:
                schema = source.fetch()
            except ReproError as exc:
                failures.append(f"{source.describe()}: {exc}")
                continue
            return DiscoveryResult(
                schema=schema,
                source=source.describe(),
                attempts=tuple(failures),
            )
        details = "; ".join(failures)
        raise DiscoveryError(f"all metadata sources failed: {details}")
