"""The XSD → PBIO type mapping (paper §4.2.2, "Field Type").

"A straightforward mapping is performed between the type attribute
(which denotes one of the XML Schema data types) and a corresponding
PBIO type."  Each schema primitive maps to:

- a PBIO base type string (the marshaling technique), and
- a C type name (whose ``sizeof`` on the *target* architecture supplies
  the field size — "there is no size information specified in the XML
  format definition", §4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.schema.datatypes import LogicalKind, PrimitiveType


@dataclass(frozen=True)
class TypeMapping:
    """The PBIO realization of one schema primitive."""

    pbio_type: str
    c_type: str

    @property
    def is_string(self) -> bool:
        return self.pbio_type == "string"


def map_primitive(primitive: PrimitiveType) -> TypeMapping:
    """Map a schema primitive to its PBIO type and native C type."""
    if primitive.kind == LogicalKind.STRING:
        return TypeMapping("string", "char*")
    if primitive.kind == LogicalKind.SIGNED:
        return TypeMapping("integer", primitive.c_type)
    if primitive.kind == LogicalKind.UNSIGNED:
        return TypeMapping("unsigned integer", primitive.c_type)
    if primitive.kind == LogicalKind.FLOAT:
        # PBIO separates float (4-byte) from double (8-byte) marshaling.
        pbio = "float" if primitive.c_type == "float" else "double"
        return TypeMapping(pbio, primitive.c_type)
    if primitive.kind == LogicalKind.BOOLEAN:
        return TypeMapping("boolean", primitive.c_type)
    if primitive.kind == LogicalKind.CHAR:
        return TypeMapping("char", "char")
    raise SchemaError(f"no PBIO mapping for schema kind {primitive.kind}")
