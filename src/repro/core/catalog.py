"""The Catalog of Format and Field structures (paper Figure 2).

"For data types that are built by composition of other previously
defined data types, a Catalog is kept of known format definitions"
(§4.2.2).  The catalog is the intermediate representation between parsed
XML metadata and registered PBIO metadata: for every format it holds the
computed native layout, the PBIO field list, and the resulting
:class:`~repro.pbio.IOFormat` — everything Figure 2's middle box shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.layout import StructLayout
from repro.errors import SchemaError
from repro.pbio.field import IOField
from repro.pbio.format import IOFormat


@dataclass(frozen=True)
class CatalogEntry:
    """One known format: layout, PBIO fields, and the registered format."""

    name: str
    layout: StructLayout
    io_fields: tuple[IOField, ...]
    io_format: IOFormat

    @property
    def structure_size(self) -> int:
        """``sizeof`` of the native structure this format describes."""
        return self.layout.size


@dataclass
class Catalog:
    """Insertion-ordered registry of known format definitions.

    Lookups by name serve two purposes: size information for composed
    types ("this name is used to retrieve size information from the
    Catalog") and nested-format resolution at PBIO registration.
    """

    entries: dict[str, CatalogEntry] = field(default_factory=dict)

    def add(self, entry: CatalogEntry) -> None:
        """Register a new entry; duplicate names are rejected."""
        if entry.name in self.entries:
            raise SchemaError(f"catalog already holds a format named {entry.name!r}")
        self.entries[entry.name] = entry

    def get(self, name: str) -> CatalogEntry:
        """Return the entry named ``name`` (raises SchemaError)."""
        try:
            return self.entries[name]
        except KeyError:
            known = ", ".join(self.entries) or "(none)"
            raise SchemaError(
                f"catalog has no format named {name!r}; known: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def names(self) -> list[str]:
        """Format names in registration order."""
        return list(self.entries)

    def formats(self) -> dict[str, IOFormat]:
        """Name → IOFormat view, usable as a PBIO nested-format catalog."""
        return {name: entry.io_format for name, entry in self.entries.items()}
