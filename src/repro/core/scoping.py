"""Format scoping: per-audience slices of a message format (§4.4).

"With sufficient support from the BCM, this ability can introduce
'format-scoping' behaviors where certain 'slices' of each information
stream are exposed or hidden based on attributes of each subscribing
application."

A *scope* is a named subset of a complex type's elements.  This module
derives the scoped :class:`~repro.schema.ComplexType` (and, through
xml2wire, its registered format) from the full one:

- retained elements keep their order and types;
- dynamic arrays drag their length fields along automatically (a scope
  that exposes ``eta`` is meaningless without ``eta_count``);
- nested types are retained whole (slicing inside a nested type is a
  scope on that type's own stream).

Scoped schema documents can then be published per audience on the
metadata server (its dynamic-generation hook), and
:class:`~repro.events.scoping.ScopedPublisher` publishes each record to
per-scope sub-streams — privileged subscribers see the full stream,
public ones the redacted slice, and neither can tell the other exists.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.model import ComplexType, SchemaDocument


def scope_complex_type(
    complex_type: ComplexType, fields: list[str], *, name: str | None = None
) -> ComplexType:
    """Return a copy of ``complex_type`` exposing only ``fields``.

    Length fields of retained dynamic arrays are pulled in implicitly
    (whether synthesized or declared).  Raises
    :class:`~repro.errors.SchemaError` if a requested field does not
    exist or the scope would be empty.
    """
    available = set(complex_type.element_names())
    missing = [field for field in fields if field not in available]
    if missing:
        raise SchemaError(
            f"scope on {complex_type.name!r} names unknown fields: {missing}"
        )
    keep = set(fields)
    for element in complex_type.elements:
        if element.name in keep and element.occurs.is_dynamic_array:
            length_field = element.occurs.length_field
            if length_field in available:
                keep.add(length_field)
    retained = tuple(
        element for element in complex_type.elements if element.name in keep
    )
    if not retained:
        raise SchemaError(f"scope on {complex_type.name!r} retains no fields")
    return ComplexType(
        name=name or complex_type.name,
        elements=retained,
        documentation=complex_type.documentation,
    )


def scope_schema(
    schema: SchemaDocument,
    type_name: str,
    fields: list[str],
    *,
    scoped_name: str | None = None,
) -> SchemaDocument:
    """A schema document containing the scoped type (plus dependencies).

    Nested user types referenced by retained elements are carried over
    unsliced; simple types likewise.  The result serializes through
    :func:`~repro.schema.schema_to_xml` for the metadata server.
    """
    scoped = scope_complex_type(
        schema.complex_type(type_name), fields, name=scoped_name
    )
    result = SchemaDocument(
        target_namespace=schema.target_namespace,
        documentation=schema.documentation,
    )
    # Dependencies first, in original declaration order.
    needed_types = {
        element.type_name
        for element in scoped.elements
        if element.type_namespace is None
    }
    for name, simple in schema.simple_types.items():
        if name in needed_types:
            result.simple_types[name] = simple
    for name, complex_type in schema.complex_types.items():
        if name in needed_types and name != scoped.name:
            result.complex_types[name] = complex_type
    result.complex_types[scoped.name] = scoped
    return result


def project_record(complex_type: ComplexType, record: dict) -> dict:
    """Restrict ``record`` to the fields ``complex_type`` exposes."""
    names = set(complex_type.element_names())
    projected = {}
    for name, value in record.items():
        if name in names:
            projected[name] = value
    return projected
