"""Exception hierarchy for the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
applications can catch failures from this library with a single handler
while still being able to discriminate by subsystem.

The hierarchy mirrors the package layout:

- :class:`ArchError` — architecture model / struct layout problems.
- :class:`XMLError` (with :class:`XMLSyntaxError`) — XML parsing.
- :class:`SchemaError` — XML Schema model construction and validation.
- :class:`PBIOError` family — binary I/O (format registration, encoding,
  decoding, conversion).
- :class:`WireError` — baseline wire formats (XDR, text XML) and framing.
- :class:`TransportError` — channel-level communication failures
  (with :class:`ChannelClosedError` and :class:`TransportTimeoutError`).
- :class:`DiscoveryError` — metadata discovery (all sources exhausted,
  malformed documents, unreachable servers), with
  :class:`MetadataHTTPError`, :class:`RetryExhaustedError` and
  :class:`CircuitOpenError` for the resilient retrieval path.
- :class:`BindingError` — associating formats with application data.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ArchError(ReproError):
    """Invalid architecture model or impossible struct layout request."""


class XMLError(ReproError):
    """Base class for XML processing errors."""


class XMLSyntaxError(XMLError):
    """The document is not well-formed XML.

    Carries the 1-based ``line`` and ``column`` of the offending input so
    callers can produce actionable diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """The XML Schema document is invalid or uses unsupported constructs."""


class SchemaValidationError(SchemaError):
    """An instance document does not conform to its schema."""


class PBIOError(ReproError):
    """Base class for PBIO binary I/O errors."""


class FormatRegistrationError(PBIOError):
    """A format could not be registered (bad fields, duplicate names...)."""


class EncodeError(PBIOError):
    """A record could not be encoded to the wire."""


class DecodeError(PBIOError):
    """A wire buffer could not be decoded (truncation, unknown format...)."""


class ConversionError(PBIOError):
    """No conversion exists between a wire format and a native format."""


class WireError(ReproError):
    """Baseline wire-format (XDR / text XML) or framing failure."""


class TransportError(ReproError):
    """A channel could not deliver or receive a message."""


class ChannelClosedError(TransportError):
    """The peer closed the channel (clean EOF or reset)."""


class TransportTimeoutError(TransportError):
    """A channel operation exceeded its deadline.

    ``mid_frame`` is True when the timeout struck after part of a frame
    had already been consumed, leaving the byte stream desynchronized:
    the channel is then poisoned and refuses further reads rather than
    decoding garbage.
    """

    def __init__(self, message: str, *, mid_frame: bool = False) -> None:
        super().__init__(message)
        self.mid_frame = mid_frame


class DiscoveryError(ReproError):
    """Metadata discovery failed across all configured sources."""


class MetadataHTTPError(DiscoveryError):
    """The metadata server answered with a non-200 status.

    Carries the ``status`` so retry policies can distinguish transient
    server-side failures (5xx, worth retrying) from definitive answers
    (404, not worth retrying).
    """

    def __init__(self, message: str, status: int) -> None:
        super().__init__(message)
        self.status = status


class RetryExhaustedError(DiscoveryError):
    """Every attempt allowed by the retry policy failed.

    ``attempts`` is how many requests were actually made; ``last_error``
    is the failure that ended the final attempt.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(DiscoveryError):
    """The per-host circuit breaker is open: no request was attempted.

    Raised *before* touching the network when a host has failed enough
    consecutive times; ``retry_after`` says how long until the breaker
    will allow a probe.
    """

    def __init__(self, message: str, *, host: str = "",
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.host = host
        self.retry_after = retry_after


class BindingError(ReproError):
    """Program data could not be bound to a registered message format."""
