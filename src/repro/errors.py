"""Exception hierarchy for the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
applications can catch failures from this library with a single handler
while still being able to discriminate by subsystem.

The hierarchy mirrors the package layout:

- :class:`ArchError` — architecture model / struct layout problems.
- :class:`XMLError` (with :class:`XMLSyntaxError`) — XML parsing.
- :class:`SchemaError` — XML Schema model construction and validation.
- :class:`PBIOError` family — binary I/O (format registration, encoding,
  decoding, conversion).
- :class:`WireError` — baseline wire formats (XDR, text XML) and framing.
- :class:`TransportError` — channel-level communication failures.
- :class:`DiscoveryError` — metadata discovery (all sources exhausted,
  malformed documents, unreachable servers).
- :class:`BindingError` — associating formats with application data.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ArchError(ReproError):
    """Invalid architecture model or impossible struct layout request."""


class XMLError(ReproError):
    """Base class for XML processing errors."""


class XMLSyntaxError(XMLError):
    """The document is not well-formed XML.

    Carries the 1-based ``line`` and ``column`` of the offending input so
    callers can produce actionable diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """The XML Schema document is invalid or uses unsupported constructs."""


class SchemaValidationError(SchemaError):
    """An instance document does not conform to its schema."""


class PBIOError(ReproError):
    """Base class for PBIO binary I/O errors."""


class FormatRegistrationError(PBIOError):
    """A format could not be registered (bad fields, duplicate names...)."""


class EncodeError(PBIOError):
    """A record could not be encoded to the wire."""


class DecodeError(PBIOError):
    """A wire buffer could not be decoded (truncation, unknown format...)."""


class ConversionError(PBIOError):
    """No conversion exists between a wire format and a native format."""


class WireError(ReproError):
    """Baseline wire-format (XDR / text XML) or framing failure."""


class TransportError(ReproError):
    """A channel could not deliver or receive a message."""


class ChannelClosedError(TransportError):
    """The peer closed the channel (clean EOF or reset)."""


class DiscoveryError(ReproError):
    """Metadata discovery failed across all configured sources."""


class BindingError(ReproError):
    """Program data could not be bound to a registered message format."""
