"""XDR (RFC 1014) encoding over IOFormat metadata — the canonical-format baseline.

XDR's defining property is the *canonical intermediate form*: every datum
is converted to big-endian, 4-byte-quantized representation on send and
converted again into native form on receive — even when both endpoints
are identical little-endian machines.  That double conversion (plus the
widening of small types to 4 bytes) is exactly the cost the paper's NDR
eliminates, so this implementation is deliberately faithful to the RFC:

- integers of 1/2/4 bytes → 4-byte big-endian (``int``/``unsigned int``);
- 8-byte integers → 8-byte ``hyper``;
- ``float``/``double`` → IEEE 754, big-endian;
- ``boolean`` and ``enumeration`` → 4-byte signed int;
- ``char`` → 4-byte int; ``char[n]`` → fixed opaque, NUL-padded to 4;
- strings → u32 length + bytes + pad to 4 (``None`` as length
  ``0xFFFFFFFF``, an out-of-band sentinel for NULL pointers, a common
  ONC RPC extension);
- fixed arrays → elements in sequence;
- dynamic arrays → u32 count + elements (count fields are *also* encoded
  in place so records round-trip unchanged);
- nested formats → fields in order.

The codec is architecture-independent by construction — that is the
point of a canonical format — so it takes only the format, never an
architecture model.
"""

from __future__ import annotations

import struct

from repro.arch.model import TypeKind
from repro.errors import WireError
from repro.pbio.format import CompiledField, IOFormat

_PAD = b"\x00\x00\x00"
_NULL_STRING = 0xFFFFFFFF

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_U64 = struct.Struct(">Q")
_F32 = struct.Struct(">f")
_F64 = struct.Struct(">d")


def _pad4(length: int) -> bytes:
    return _PAD[: (-length) % 4]


class XDRCodec:
    """Encode/decode records of one :class:`~repro.pbio.IOFormat` as XDR."""

    def __init__(self, fmt: IOFormat) -> None:
        self.format = fmt

    # -- encoding ------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        """Encode ``record`` to XDR bytes."""
        parts: list[bytes] = []
        self._encode_fields(self.format, record, parts)
        return b"".join(parts)

    def _encode_fields(self, fmt: IOFormat, record: dict, parts: list[bytes]) -> None:
        for field in fmt.compiled_fields:
            try:
                value = record[field.name]
            except (KeyError, TypeError):
                if field.name in fmt.length_field_names:
                    value = self._derive_count(fmt, field, record)
                else:
                    raise WireError(
                        f"XDR: record for {fmt.name!r} is missing field "
                        f"{field.name!r}"
                    ) from None
            self._encode_field(fmt, field, value, record, parts)

    def _derive_count(self, fmt: IOFormat, field: CompiledField, record: dict) -> int:
        for other in fmt.compiled_fields:
            if other.type.length_field == field.name:
                array = record.get(other.name)
                return 0 if array is None else len(array)
        return 0

    def _encode_field(
        self,
        fmt: IOFormat,
        field: CompiledField,
        value,
        record: dict,
        parts: list[bytes],
    ) -> None:
        if field.nested is not None:
            elements = [value] if field.static_count == 1 else value
            if len(elements) != field.static_count:
                raise WireError(
                    f"XDR: field {field.name!r} expects {field.static_count} "
                    f"nested records"
                )
            for element in elements:
                self._encode_fields(field.nested, element, parts)
            return
        if field.type.is_dynamic_array:
            elements = value or []
            parts.append(_U32.pack(len(elements)))
            for element in elements:
                parts.append(self._encode_scalar(field, element))
            return
        if field.is_string:
            strings = [value] if field.static_count == 1 else value
            if len(strings) != field.static_count:
                raise WireError(
                    f"XDR: field {field.name!r} expects {field.static_count} strings"
                )
            for text in strings:
                parts.append(self._encode_string(field, text))
            return
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
            raw = raw[: field.static_count].ljust(field.static_count, b"\x00")
            parts.append(raw + _pad4(len(raw)))
            return
        if field.type.is_static_array:
            if len(value) != field.static_count:
                raise WireError(
                    f"XDR: field {field.name!r} expects {field.static_count} elements"
                )
            for element in value:
                parts.append(self._encode_scalar(field, element))
            return
        parts.append(self._encode_scalar(field, value))

    def _encode_string(self, field: CompiledField, text: str | None) -> bytes:
        if text is None:
            return _U32.pack(_NULL_STRING)
        if not isinstance(text, str):
            raise WireError(f"XDR: field {field.name!r} expects a string")
        raw = text.encode("utf-8")
        return _U32.pack(len(raw)) + raw + _pad4(len(raw))

    def _encode_scalar(self, field: CompiledField, value) -> bytes:
        kind, size = field.kind, field.size
        try:
            if kind == TypeKind.SIGNED_INT:
                return (_I64 if size == 8 else _I32).pack(value)
            if kind in (TypeKind.UNSIGNED_INT, TypeKind.ENUMERATION):
                return (_U64 if size == 8 else _U32).pack(value)
            if kind == TypeKind.FLOAT:
                return (_F64 if size == 8 else _F32).pack(value)
            if kind == TypeKind.BOOLEAN:
                return _I32.pack(1 if value else 0)
            if kind == TypeKind.CHAR:
                if isinstance(value, str):
                    value = value.encode("utf-8")[:1] or b"\x00"
                if isinstance(value, bytes):
                    value = value[0] if value else 0
                return _I32.pack(value)
        except struct.error as exc:
            raise WireError(
                f"XDR: cannot encode {value!r} for field {field.name!r}: {exc}"
            ) from exc
        raise WireError(f"XDR: unsupported kind {kind} for field {field.name!r}")

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        """Decode XDR bytes back into a record dict."""
        record, cursor = self._decode_fields(self.format, data, 0)
        if cursor != len(data):
            raise WireError(
                f"XDR: {len(data) - cursor} trailing bytes after decoding "
                f"{self.format.name!r}"
            )
        return record

    def _decode_fields(self, fmt: IOFormat, data: bytes, cursor: int) -> tuple[dict, int]:
        record: dict = {}
        for field in fmt.compiled_fields:
            record[field.name], cursor = self._decode_field(field, data, cursor)
        return record, cursor

    def _decode_field(self, field: CompiledField, data: bytes, cursor: int):
        try:
            if field.nested is not None:
                if field.static_count == 1:
                    return self._decode_fields(field.nested, data, cursor)
                elements = []
                for _ in range(field.static_count):
                    element, cursor = self._decode_fields(field.nested, data, cursor)
                    elements.append(element)
                return elements, cursor
            if field.type.is_dynamic_array:
                (count,) = _U32.unpack_from(data, cursor)
                cursor += 4
                elements = []
                for _ in range(count):
                    element, cursor = self._decode_scalar(field, data, cursor)
                    elements.append(element)
                return elements, cursor
            if field.is_string:
                if field.static_count == 1:
                    return self._decode_string(data, cursor)
                strings = []
                for _ in range(field.static_count):
                    text, cursor = self._decode_string(data, cursor)
                    strings.append(text)
                return strings, cursor
            if field.kind == TypeKind.CHAR and field.type.is_static_array:
                raw = data[cursor : cursor + field.static_count]
                if len(raw) != field.static_count:
                    raise WireError("XDR: truncated opaque data")
                cursor += field.static_count + len(_pad4(field.static_count))
                try:
                    return raw.split(b"\x00", 1)[0].decode("utf-8"), cursor
                except UnicodeDecodeError as exc:
                    raise WireError(f"XDR: corrupt char buffer: {exc}") from exc
            if field.type.is_static_array:
                elements = []
                for _ in range(field.static_count):
                    element, cursor = self._decode_scalar(field, data, cursor)
                    elements.append(element)
                return elements, cursor
            return self._decode_scalar(field, data, cursor)
        except struct.error as exc:
            raise WireError(f"XDR: truncated data in field {field.name!r}") from exc

    def _decode_string(self, data: bytes, cursor: int) -> tuple[str | None, int]:
        (length,) = _U32.unpack_from(data, cursor)
        cursor += 4
        if length == _NULL_STRING:
            return None, cursor
        raw = data[cursor : cursor + length]
        if len(raw) != length:
            raise WireError("XDR: truncated string")
        cursor += length + len(_pad4(length))
        try:
            return raw.decode("utf-8"), cursor
        except UnicodeDecodeError as exc:
            raise WireError(f"XDR: corrupt string data: {exc}") from exc

    def _decode_scalar(self, field: CompiledField, data: bytes, cursor: int):
        kind, size = field.kind, field.size
        if kind == TypeKind.SIGNED_INT:
            codec = _I64 if size == 8 else _I32
        elif kind in (TypeKind.UNSIGNED_INT, TypeKind.ENUMERATION):
            codec = _U64 if size == 8 else _U32
        elif kind == TypeKind.FLOAT:
            codec = _F64 if size == 8 else _F32
        elif kind == TypeKind.BOOLEAN:
            (raw,) = _I32.unpack_from(data, cursor)
            return bool(raw), cursor + 4
        elif kind == TypeKind.CHAR:
            (raw,) = _I32.unpack_from(data, cursor)
            return chr(raw), cursor + 4
        else:  # pragma: no cover - registration prevents this
            raise WireError(f"XDR: unsupported kind {kind}")
        (value,) = codec.unpack_from(data, cursor)
        return value, cursor + codec.size


def xdr_encoded_size(fmt: IOFormat, record: dict) -> int:
    """Size of the XDR encoding of ``record`` (no framing)."""
    return len(XDRCodec(fmt).encode(record))
