"""The text-XML wire format — the paper's order-of-magnitude baseline.

"Systems using XML as a wire format" (paper §6, XML-RPC [10]) transmit
every record as an ASCII XML document: each field becomes an element,
every number is converted binary→decimal-text on send and text→binary on
receive, and the markup itself inflates the message 6–8× over the binary
original.  This codec reproduces that cost structure faithfully:

- encoding renders a full document (via this repo's XML writer);
- decoding runs the full XML parser and converts every value back;
- repeated elements express arrays (one element per item, as XML does);
- nested formats nest elements;
- NULL strings are distinguished from empty ones with a ``nil="true"``
  attribute (XML Schema Instance convention).

The codec shares record shapes with PBIO/XDR, so the three wire formats
are interchangeable behind the same workloads in the benchmark harness.
"""

from __future__ import annotations

from io import StringIO

from repro.arch.model import TypeKind
from repro.errors import WireError, XMLError
from repro.pbio.format import CompiledField, IOFormat
from repro.xmlparse import chars as _xml_chars
from repro.xmlparse.tree import Element, parse_document
from repro.xmlparse.writer import escape_text


def _xml_safe(text: str, field_name: str) -> str:
    """Escape ``text``, rejecting characters XML 1.0 cannot carry.

    This is a genuine limitation of text-XML as a wire format: control
    characters that are perfectly legal in binary strings (NDR and XDR
    transmit them untouched) have no XML representation at all.
    """
    for ch in text:
        if not _xml_chars.is_xml_char(ch):
            raise WireError(
                f"XML: field {field_name!r} contains U+{ord(ch):04X}, which "
                f"has no XML 1.0 representation (binary wire formats carry "
                f"it; text XML cannot)"
            )
    return escape_text(text)


class XMLTextCodec:
    """Encode/decode records of one format as XML text documents."""

    def __init__(self, fmt: IOFormat, *, encoding: str = "utf-8") -> None:
        self.format = fmt
        self.encoding = encoding

    # -- encoding --------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        """Render ``record`` as an XML document, returned as bytes."""
        out = StringIO()
        out.write('<?xml version="1.0"?>')
        self._write_record(out, self.format, record)
        return out.getvalue().encode(self.encoding)

    def _write_record(self, out: StringIO, fmt: IOFormat, record: dict) -> None:
        out.write(f"<{fmt.name}>")
        for field in fmt.compiled_fields:
            try:
                value = record[field.name]
            except (KeyError, TypeError):
                raise WireError(
                    f"XML: record for {fmt.name!r} is missing field {field.name!r}"
                ) from None
            self._write_field(out, field, value)
        out.write(f"</{fmt.name}>")

    def _write_field(self, out: StringIO, field: CompiledField, value) -> None:
        name = field.name
        if field.nested is not None:
            elements = [value] if field.static_count == 1 else value
            for element in elements:
                out.write(f"<{name}>")
                for inner in field.nested.compiled_fields:
                    self._write_field(out, inner, element[inner.name])
                out.write(f"</{name}>")
            return
        if field.type.is_dynamic_array:
            for element in value or []:
                out.write(f"<{name}>{self._scalar_text(field, element)}</{name}>")
            return
        if field.is_string:
            strings = [value] if field.static_count == 1 else value
            for text in strings:
                if text is None:
                    out.write(f'<{name} nil="true"/>')
                else:
                    out.write(f"<{name}>{_xml_safe(text, name)}</{name}>")
            return
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            out.write(f"<{name}>{_xml_safe(str(value), name)}</{name}>")
            return
        if field.type.is_static_array:
            for element in value:
                out.write(f"<{name}>{self._scalar_text(field, element)}</{name}>")
            return
        out.write(f"<{name}>{self._scalar_text(field, value)}</{name}>")

    def _scalar_text(self, field: CompiledField, value) -> str:
        if field.kind == TypeKind.FLOAT:
            return repr(float(value))
        if field.kind == TypeKind.BOOLEAN:
            return "true" if value else "false"
        if field.kind == TypeKind.CHAR:
            return _xml_safe(value if isinstance(value, str) else chr(value), field.name)
        return str(int(value))

    # -- decoding --------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        """Parse an XML document back into a record dict."""
        try:
            root = parse_document(data.decode(self.encoding))
        except (XMLError, UnicodeDecodeError) as exc:
            raise WireError(f"XML: cannot parse message: {exc}") from exc
        if root.tag != self.format.name:
            raise WireError(
                f"XML: expected <{self.format.name}> message, got <{root.tag}>"
            )
        return self._read_record(self.format, root)

    def _read_record(self, fmt: IOFormat, node: Element) -> dict:
        record: dict = {}
        children = list(node.children)
        index = 0
        for field in fmt.compiled_fields:
            matches: list[Element] = []
            while index < len(children) and children[index].tag == field.name:
                matches.append(children[index])
                index += 1
            record[field.name] = self._read_field(fmt, field, matches)
        if index != len(children):
            raise WireError(
                f"XML: unexpected element <{children[index].tag}> in "
                f"{fmt.name!r} message"
            )
        return record

    def _read_field(self, fmt: IOFormat, field: CompiledField, matches: list[Element]):
        if field.nested is not None:
            if len(matches) != field.static_count:
                raise WireError(
                    f"XML: field {field.name!r} expects {field.static_count} "
                    f"element(s), found {len(matches)}"
                )
            records = [self._read_record(field.nested, match) for match in matches]
            return records[0] if field.static_count == 1 else records
        if field.type.is_dynamic_array:
            return [self._scalar_value(field, match.text) for match in matches]
        if field.is_string:
            if len(matches) != field.static_count:
                raise WireError(
                    f"XML: field {field.name!r} expects {field.static_count} "
                    f"element(s), found {len(matches)}"
                )
            strings = [
                None if match.get("nil") == "true" else match.text for match in matches
            ]
            return strings[0] if field.static_count == 1 else strings
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            if len(matches) != 1:
                raise WireError(f"XML: field {field.name!r} expects one element")
            return matches[0].text
        if field.type.is_static_array:
            if len(matches) != field.static_count:
                raise WireError(
                    f"XML: field {field.name!r} expects {field.static_count} "
                    f"elements, found {len(matches)}"
                )
            return [self._scalar_value(field, match.text) for match in matches]
        if len(matches) != 1:
            raise WireError(
                f"XML: field {field.name!r} expects one element, found {len(matches)}"
            )
        return self._scalar_value(field, matches[0].text)

    def _scalar_value(self, field: CompiledField, text: str):
        try:
            if field.kind == TypeKind.FLOAT:
                return float(text)
            if field.kind == TypeKind.BOOLEAN:
                if text not in ("true", "false", "0", "1"):
                    raise ValueError(text)
                return text in ("true", "1")
            if field.kind == TypeKind.CHAR:
                if len(text) != 1:
                    raise ValueError(text)
                return text
            return int(text)
        except ValueError as exc:
            raise WireError(
                f"XML: bad value {text!r} for field {field.name!r}"
            ) from exc


def xml_encoded_size(fmt: IOFormat, record: dict) -> int:
    """Size in bytes of the XML text encoding of ``record``."""
    return len(XMLTextCodec(fmt).encode(record))
