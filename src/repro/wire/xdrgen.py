"""Generated XDR stubs — the rpcgen-style compiled baseline.

Sun RPC's ``rpcgen`` compiled XDR marshaling into per-format C stubs; an
XDR system in production was *not* walking metadata per record.  To keep
the NDR/XDR comparison honest after NDR gained generated encoders and
converters, this module generates specialized Python XDR stubs for a
format: every field becomes inline code, contiguous fixed-size fields
collapse into single ``struct`` calls where XDR's 4-byte quantization
allows.

With both systems generated, the measured gap isolates the *format*
costs the paper attributes to XDR — widening small fields, canonical
byte order regardless of endpoints, and length-prefixed strings — from
mere interpretation overhead.  Benchmarks ``benchmarks/
test_ablation_codegen.py`` (A4 section) and the report's C1 table use
these stubs as the "XDR (generated)" row.

The generated code produces byte-identical output to
:class:`~repro.wire.xdr.XDRCodec` (asserted by tests and a property),
and falls back to it on unexpected errors for diagnostics.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.arch.model import TypeKind
from repro.errors import WireError
from repro.pbio.format import CompiledField, IOFormat
from repro.wire.xdr import XDRCodec, _NULL_STRING


def _scalar_code(field: CompiledField) -> str:
    """struct code (big-endian implied) for one XDR scalar."""
    kind, size = field.kind, field.size
    if kind == TypeKind.SIGNED_INT:
        return "q" if size == 8 else "i"
    if kind in (TypeKind.UNSIGNED_INT, TypeKind.ENUMERATION):
        return "Q" if size == 8 else "I"
    if kind == TypeKind.FLOAT:
        return "d" if size == 8 else "f"
    if kind == TypeKind.BOOLEAN:
        return "i"
    if kind == TypeKind.CHAR:
        return "i"
    raise WireError(f"XDR: unsupported kind {kind} for field {field.name!r}")


def _value_expr(field: CompiledField, value: str) -> str:
    """Expression converting a record value for packing."""
    if field.kind == TypeKind.BOOLEAN:
        return f"(1 if {value} else 0)"
    if field.kind == TypeKind.CHAR:
        return f"_ord({value})"
    return value


def _ord(value) -> int:
    """Injected helper: one char (str/bytes/int) to its code point."""
    if isinstance(value, str):
        raw = value.encode("utf-8")[:1] or b"\x00"
        return raw[0]
    if isinstance(value, bytes):
        return value[0] if value else 0
    return int(value)


def _decode_expr(field: CompiledField, value: str) -> str:
    if field.kind == TypeKind.BOOLEAN:
        return f"bool({value})"
    if field.kind == TypeKind.CHAR:
        return f"chr({value})"
    return value


def generate_xdr_source(fmt: IOFormat) -> str:
    """Source for ``xdr_encode(record)`` and ``xdr_decode(data)``."""
    encode_lines = [
        "def xdr_encode(record, pack=pack, _ord=_ord, len=len):",
        "    out = []",
    ]
    _emit_encode(fmt, "record", encode_lines, depth=1)
    encode_lines.append("    return b''.join(out)")

    decode_lines = [
        "def xdr_decode(data, unpack_from=unpack_from):",
        "    cursor = 0",
    ]
    result_expr = _emit_decode(fmt, decode_lines, depth=1)
    decode_lines.append("    if cursor != len(data):")
    decode_lines.append(
        "        raise WireError('XDR: %d trailing bytes' % (len(data) - cursor))"
    )
    decode_lines.append(f"    return {result_expr}")
    return "\n".join(encode_lines) + "\n\n\n" + "\n".join(decode_lines) + "\n"


# -- encode generation ---------------------------------------------------------


def _emit_encode(fmt: IOFormat, record_expr: str, lines: list[str], depth: int) -> None:
    pad = "    " * depth
    # Group runs of plain scalars into single pack calls.
    run_codes: list[str] = []
    run_values: list[str] = []

    def flush() -> None:
        if run_codes:
            lines.append(
                f"{pad}out.append(pack('>{''.join(run_codes)}', "
                f"{', '.join(run_values)}))"
            )
            run_codes.clear()
            run_values.clear()

    for field in fmt.compiled_fields:
        value = f"{record_expr}[{field.name!r}]"
        if field.nested is not None:
            flush()
            if field.static_count == 1:
                _emit_encode(field.nested, value, lines, depth)
            else:
                element = f"_e{depth}"
                lines.append(f"{pad}for {element} in {value}:")
                _emit_encode(field.nested, element, lines, depth + 1)
            continue
        if field.type.is_dynamic_array:
            flush()
            array = f"_a{depth}"
            lines.append(f"{pad}{array} = {value} or []")
            code = _scalar_code(field)
            lines.append(
                f"{pad}out.append(pack('>I' + str(len({array})) + "
                f"{code!r}, len({array}), *{array}))"
            )
            continue
        if field.is_string:
            flush()
            for index in range(field.static_count):
                item = value if field.static_count == 1 else f"{value}[{index}]"
                text = f"_s{depth}"
                lines.append(f"{pad}{text} = {item}")
                lines.append(f"{pad}if {text} is None:")
                lines.append(f"{pad}    out.append(_NULL)")
                lines.append(f"{pad}else:")
                lines.append(f"{pad}    _b = {text}.encode('utf-8')")
                lines.append(
                    f"{pad}    out.append(pack('>I', len(_b)) + _b + "
                    f"b'\\x00' * ((-len(_b)) % 4))"
                )
            continue
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            flush()
            count = field.static_count
            lines.append(
                f"{pad}out.append(_buf({value}, {count}) + "
                f"b'\\x00' * {(-count) % 4})"
            )
            continue
        if field.type.is_static_array:
            flush()
            code = _scalar_code(field)
            converted = _value_expr(field, "v")
            if converted == "v":
                lines.append(
                    f"{pad}out.append(pack('>{field.static_count}{code}', *{value}))"
                )
            else:
                lines.append(
                    f"{pad}out.append(pack('>{field.static_count}{code}', "
                    f"*[{converted} for v in {value}]))"
                )
            continue
        run_codes.append(_scalar_code(field))
        run_values.append(_value_expr(field, value))
    flush()


def _buf(value, count: int) -> bytes:
    raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
    return raw[:count].ljust(count, b"\x00")


# -- decode generation ---------------------------------------------------------

_counter = 0


def _emit_decode(fmt: IOFormat, lines: list[str], depth: int) -> str:
    """Emit decoding statements; returns the dict-literal expression."""
    global _counter
    pad = "    " * depth
    entries: list[str] = []
    # Batch contiguous plain scalars.
    run: list[tuple[CompiledField, str]] = []

    def flush() -> None:
        global _counter
        if not run:
            return
        codes = "".join(_scalar_code(field) for field, _ in run)
        names = ", ".join(name for _, name in run)
        size = struct.calcsize(">" + codes)
        lines.append(f"{pad}({names},) = unpack_from('>{codes}', data, cursor)")
        lines.append(f"{pad}cursor += {size}")
        run.clear()

    for field in fmt.compiled_fields:
        _counter += 1
        var = f"v{_counter}"
        if field.nested is not None:
            flush()
            if field.static_count == 1:
                inner = _emit_decode(field.nested, lines, depth)
                entries.append(f"{field.name!r}: {inner}")
            else:
                lines.append(f"{pad}{var} = []")
                lines.append(f"{pad}for _ in range({field.static_count}):")
                inner = _emit_decode(field.nested, lines, depth + 1)
                lines.append(f"{pad}    {var}.append({inner})")
                entries.append(f"{field.name!r}: {var}")
            continue
        if field.type.is_dynamic_array:
            flush()
            code = _scalar_code(field)
            element_size = struct.calcsize(">" + code)
            lines.append(f"{pad}(_n,) = unpack_from('>I', data, cursor)")
            lines.append(f"{pad}cursor += 4")
            lines.append(
                f"{pad}{var} = list(unpack_from('>' + str(_n) + {code!r}, "
                f"data, cursor))"
            )
            lines.append(f"{pad}cursor += _n * {element_size}")
            entries.append(f"{field.name!r}: {var}")
            continue
        if field.is_string:
            flush()
            if field.static_count == 1:
                lines.append(f"{pad}{var}, cursor = _string(data, cursor)")
            else:
                lines.append(f"{pad}{var} = []")
                lines.append(f"{pad}for _ in range({field.static_count}):")
                lines.append(f"{pad}    _t, cursor = _string(data, cursor)")
                lines.append(f"{pad}    {var}.append(_t)")
            entries.append(f"{field.name!r}: {var}")
            continue
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            flush()
            count = field.static_count
            lines.append(
                f"{pad}{var} = data[cursor:cursor + {count}]"
                f".split(b'\\x00', 1)[0].decode('utf-8')"
            )
            lines.append(f"{pad}cursor += {count + ((-count) % 4)}")
            entries.append(f"{field.name!r}: {var}")
            continue
        if field.type.is_static_array:
            flush()
            code = _scalar_code(field)
            size = struct.calcsize(">" + code) * field.static_count
            raw = f"unpack_from('>{field.static_count}{code}', data, cursor)"
            converted = _decode_expr(field, "v")
            if converted == "v":
                lines.append(f"{pad}{var} = list({raw})")
            else:
                lines.append(f"{pad}{var} = [{converted} for v in {raw}]")
            lines.append(f"{pad}cursor += {size}")
            entries.append(f"{field.name!r}: {var}")
            continue
        converted = _decode_expr(field, var)
        if converted == var:
            run.append((field, var))
            entries.append(f"{field.name!r}: {var}")
        else:
            flush()
            code = _scalar_code(field)
            size = struct.calcsize(">" + code)
            lines.append(f"{pad}({var},) = unpack_from('>{code}', data, cursor)")
            lines.append(f"{pad}cursor += {size}")
            entries.append(f"{field.name!r}: {converted}")
    flush()
    return "{" + ", ".join(entries) + "}"


def _decode_string(data: bytes, cursor: int):
    (length,) = struct.unpack_from(">I", data, cursor)
    cursor += 4
    if length == _NULL_STRING:
        return None, cursor
    raw = data[cursor : cursor + length]
    if len(raw) != length:
        raise WireError("XDR: truncated string")
    return raw.decode("utf-8"), cursor + length + ((-length) % 4)


def make_generated_xdr(fmt: IOFormat) -> tuple[Callable, Callable]:
    """Compile and return ``(encode, decode)`` stubs for ``fmt``.

    Both fall back to the interpreted :class:`XDRCodec` on unexpected
    errors, so error behaviour matches the baseline exactly.
    """
    source = generate_xdr_source(fmt)
    namespace = {
        "pack": struct.pack,
        "unpack_from": struct.unpack_from,
        "_ord": _ord,
        "_buf": _buf,
        "_string": _decode_string,
        "_NULL": struct.pack(">I", _NULL_STRING),
        "WireError": WireError,
    }
    exec(compile(source, f"<xdr stubs for {fmt.name}>", "exec"), namespace)
    fast_encode = namespace["xdr_encode"]
    fast_decode = namespace["xdr_decode"]
    fallback = XDRCodec(fmt)

    def encode(record: dict) -> bytes:
        try:
            return fast_encode(record)
        except WireError:
            raise
        except Exception:
            return fallback.encode(record)

    def decode(data: bytes) -> dict:
        try:
            return fast_decode(data)
        except WireError:
            raise
        except Exception:
            return fallback.decode(data)

    return encode, decode
