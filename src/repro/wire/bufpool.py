"""Size-classed buffer pooling for the allocation-free hot path.

The steady-state send/recv path should not allocate per message: encode
writes into a pooled ``bytearray`` (:meth:`EncodePlan.encode_into
<repro.pbio.encode.EncodePlan.encode_into>`), the transports receive
into a reusable buffer, and views are handed out instead of copies.
:class:`BufferPool` supplies those buffers.

Buffers are grouped into power-of-two size classes: ``acquire(n)``
returns a ``bytearray`` of the smallest class that holds ``n`` bytes
(its length may exceed ``n`` — callers slice a ``memoryview``), and
``release`` parks it for reuse.  Requests above the largest class are
allocated fresh and never pooled, so a single giant frame cannot pin
megabytes of idle memory.

Thread safety: one lock guards the free lists; ``acquire``/``release``
are safe from any thread.  Hit/miss counts are kept as plain integers
(the hot path never touches the metrics registry) and mirrored into
``repro.obs`` counters (``bufpool_events_total{event=hit|miss}``) when
the default registry is enabled.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import get_registry

#: Smallest pooled buffer (requests below this round up to it).
MIN_CLASS = 256

#: Largest pooled buffer; bigger requests are allocated, never pooled.
MAX_CLASS = 1 << 20

#: Default cap on parked buffers per size class.
DEFAULT_MAX_PER_CLASS = 8

# Memo of the bound counter handles for the current default registry;
# swapped registries (tests) re-resolve on first use.
_obs_memo = [None]


def _obs():
    """(hit_inc, miss_inc) bound methods, or None if metrics disabled."""
    registry = get_registry()
    if not registry.enabled:
        return None
    cached = _obs_memo[0]
    if cached is None or cached[0] is not registry:
        family = registry.counter(
            "bufpool_events_total", "buffer pool acquires by outcome", ("event",)
        )
        cached = (registry, (family.labels("hit").inc, family.labels("miss").inc))
        _obs_memo[0] = cached
    return cached[1]


def _class_for(size: int) -> int:
    """The smallest power-of-two class holding ``size`` bytes."""
    cls = MIN_CLASS
    while cls < size:
        cls <<= 1
    return cls


class BufferPool:
    """A thread-safe, size-classed pool of reusable ``bytearray`` buffers."""

    def __init__(self, *, max_per_class: int = DEFAULT_MAX_PER_CLASS) -> None:
        self._lock = threading.Lock()
        self._free: dict[int, list[bytearray]] = {}
        self.max_per_class = max_per_class
        self.hits = 0
        self.misses = 0
        self.releases = 0

    def acquire(self, size: int) -> bytearray:
        """Return a ``bytearray`` of at least ``size`` bytes.

        The buffer's length is its size class (>= ``size``); callers that
        need exact framing slice a ``memoryview``.  Contents are
        whatever the previous user left — callers overwrite.
        """
        if size > MAX_CLASS:
            # Never pooled: count as a miss but do not track the buffer.
            self.misses += 1
            handles = _obs()
            if handles is not None:
                handles[1]()
            return bytearray(size)
        cls = _class_for(size)
        with self._lock:
            free = self._free.get(cls)
            buffer = free.pop() if free else None
        handles = _obs()
        if buffer is not None:
            self.hits += 1
            if handles is not None:
                handles[0]()
            return buffer
        self.misses += 1
        if handles is not None:
            handles[1]()
        return bytearray(cls)

    def release(self, buffer: bytearray) -> None:
        """Park ``buffer`` for reuse.

        Only exact size-class buffers are pooled (anything else —
        including oversize allocations from :meth:`acquire` — is left
        for the garbage collector).  Callers must not hold views into a
        released buffer: the next acquirer will overwrite it.
        """
        size = len(buffer)
        if size < MIN_CLASS or size > MAX_CLASS or size & (size - 1):
            return
        self.releases += 1
        with self._lock:
            free = self._free.setdefault(size, [])
            if len(free) < self.max_per_class:
                free.append(buffer)

    @property
    def hit_rate(self) -> float:
        """Fraction of acquires served from the pool (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Point-in-time counters (hits, misses, releases, pooled bytes)."""
        with self._lock:
            pooled_bytes = sum(
                cls * len(buffers) for cls, buffers in self._free.items()
            )
            pooled_buffers = sum(len(buffers) for buffers in self._free.values())
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "hit_rate": self.hit_rate,
            "pooled_buffers": pooled_buffers,
            "pooled_bytes": pooled_bytes,
        }


#: The process-wide default pool used by the transports.
_default_pool = BufferPool()


def get_pool() -> BufferPool:
    """The process-wide default :class:`BufferPool`."""
    return _default_pool


def set_pool(pool: BufferPool) -> BufferPool:
    """Swap the default pool (tests); returns the new pool."""
    global _default_pool
    _default_pool = pool
    return pool
