"""CDR (CORBA Common Data Representation) — the IIOP baseline.

The paper's §6 third class of systems: "CORBA-based object systems use
IIOP as a wire format.  IIOP attempts to reduce marshalling overhead by
adopting a 'reader-makes-right' approach with respect to byte order (the
actual byte order used in a message is specified by a header field).
This additional flexibility ... allows CORBA to avoid unnecessary
byte-swapping in message exchanges between homogeneous systems but is
not sufficient to allow such message exchanges without copying of data
at both sender and receiver."

This implements the CDR encoding rules (GIOP 1.0 subset) over the same
:class:`~repro.pbio.IOFormat` metadata the other codecs use:

- one flag byte leads the message: 0 = big-endian, 1 = little-endian
  (the sender's choice — we encode in the *declaring architecture's*
  order, which is what makes reader-makes-right meaningful);
- primitives are aligned to their natural size *relative to the start
  of the message body* and are not widened (a short is 2 bytes);
- strings are a u32 length (including the terminating NUL) + bytes +
  NUL; a zero length encodes a NULL string (ONC-style extension,
  matching the XDR codec's convention);
- sequences (dynamic arrays) are a u32 count + aligned elements;
- structs marshal member by member, in order.

Compared with XDR, CDR removes widening and canonical-order conversion
for matched endpoints; compared with NDR, it still marshals field by
field into a fresh buffer (the "copying of data at both sender and
receiver" the paper points at) and carries no layout metadata, so the
receiver re-marshals rather than using memory in place.
"""

from __future__ import annotations

import struct

from repro.arch.model import TypeKind
from repro.errors import WireError
from repro.pbio.format import CompiledField, IOFormat

_FLAG_BIG = 0
_FLAG_LITTLE = 1


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


_CODES = {
    (TypeKind.SIGNED_INT, 1): "b",
    (TypeKind.SIGNED_INT, 2): "h",
    (TypeKind.SIGNED_INT, 4): "i",
    (TypeKind.SIGNED_INT, 8): "q",
    (TypeKind.UNSIGNED_INT, 1): "B",
    (TypeKind.UNSIGNED_INT, 2): "H",
    (TypeKind.UNSIGNED_INT, 4): "I",
    (TypeKind.UNSIGNED_INT, 8): "Q",
    (TypeKind.FLOAT, 4): "f",
    (TypeKind.FLOAT, 8): "d",
    (TypeKind.ENUMERATION, 4): "I",
    (TypeKind.ENUMERATION, 8): "Q",
}


class CDRCodec:
    """Encode/decode records of one format as CDR messages."""

    def __init__(self, fmt: IOFormat) -> None:
        self.format = fmt
        self._order = "<" if fmt.arch.is_little_endian else ">"
        self._flag = _FLAG_LITTLE if fmt.arch.is_little_endian else _FLAG_BIG

    # -- encoding ------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        """Encode ``record``; the first byte is the byte-order flag."""
        body = bytearray()
        self._encode_fields(self.format, record, body)
        return bytes([self._flag]) + bytes(body)

    def _pad(self, body: bytearray, alignment: int) -> None:
        body.extend(b"\x00" * (_align(len(body), alignment) - len(body)))

    def _encode_fields(self, fmt: IOFormat, record: dict, body: bytearray) -> None:
        for field in fmt.compiled_fields:
            try:
                value = record[field.name]
            except (KeyError, TypeError):
                if field.name in fmt.length_field_names:
                    value = self._derived_count(fmt, field, record)
                else:
                    raise WireError(
                        f"CDR: record for {fmt.name!r} is missing field "
                        f"{field.name!r}"
                    ) from None
            self._encode_field(field, value, body)

    def _derived_count(self, fmt: IOFormat, field: CompiledField, record: dict) -> int:
        for other in fmt.compiled_fields:
            if other.type.length_field == field.name:
                array = record.get(other.name)
                return 0 if array is None else len(array)
        return 0

    def _encode_field(self, field: CompiledField, value, body: bytearray) -> None:
        if field.nested is not None:
            elements = [value] if field.static_count == 1 else value
            if len(elements) != field.static_count:
                raise WireError(
                    f"CDR: field {field.name!r} expects {field.static_count} "
                    f"nested records"
                )
            for element in elements:
                self._encode_fields(field.nested, element, body)
            return
        if field.type.is_dynamic_array:
            elements = value or []
            self._pad(body, 4)
            body += struct.pack(self._order + "I", len(elements))
            for element in elements:
                self._encode_scalar(field, element, body)
            return
        if field.is_string:
            strings = [value] if field.static_count == 1 else value
            if len(strings) != field.static_count:
                raise WireError(
                    f"CDR: field {field.name!r} expects {field.static_count} strings"
                )
            for text in strings:
                self._encode_string(field, text, body)
            return
        if field.kind == TypeKind.CHAR and field.type.is_static_array:
            raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
            body += raw[: field.static_count].ljust(field.static_count, b"\x00")
            return
        if field.type.is_static_array:
            if len(value) != field.static_count:
                raise WireError(
                    f"CDR: field {field.name!r} expects {field.static_count} elements"
                )
            for element in value:
                self._encode_scalar(field, element, body)
            return
        self._encode_scalar(field, value, body)

    def _encode_string(self, field: CompiledField, text: str | None, body: bytearray) -> None:
        self._pad(body, 4)
        if text is None:
            body += struct.pack(self._order + "I", 0)
            return
        if not isinstance(text, str):
            raise WireError(f"CDR: field {field.name!r} expects a string")
        raw = text.encode("utf-8") + b"\x00"
        body += struct.pack(self._order + "I", len(raw))
        body += raw

    def _encode_scalar(self, field: CompiledField, value, body: bytearray) -> None:
        kind, size = field.kind, field.size
        if kind == TypeKind.CHAR:
            if isinstance(value, str):
                value = value.encode("utf-8")[:1] or b"\x00"
            elif isinstance(value, int):
                value = bytes([value])
            body += value[:1]
            return
        if kind == TypeKind.BOOLEAN:
            body += b"\x01" if value else b"\x00"
            return
        try:
            code = _CODES[(kind, size)]
        except KeyError:
            raise WireError(
                f"CDR: no representation for {kind} of {size} bytes "
                f"(field {field.name!r})"
            ) from None
        self._pad(body, size)
        try:
            body += struct.pack(self._order + code, value)
        except struct.error as exc:
            raise WireError(
                f"CDR: cannot encode {value!r} for field {field.name!r}: {exc}"
            ) from exc

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        """Decode a CDR message (reader-makes-right on the flag byte)."""
        if not data:
            raise WireError("CDR: empty message")
        if data[0] == _FLAG_LITTLE:
            order = "<"
        elif data[0] == _FLAG_BIG:
            order = ">"
        else:
            raise WireError(f"CDR: bad byte-order flag {data[0]}")
        record, cursor = self._decode_fields(self.format, data, 1, order)
        if cursor != len(data):
            raise WireError(
                f"CDR: {len(data) - cursor} trailing bytes after decoding"
            )
        return record

    def _decode_fields(
        self, fmt: IOFormat, data: bytes, cursor: int, order: str
    ) -> tuple[dict, int]:
        record: dict = {}
        for field in fmt.compiled_fields:
            record[field.name], cursor = self._decode_field(field, data, cursor, order)
        return record, cursor

    def _decode_field(self, field: CompiledField, data: bytes, cursor: int, order: str):
        try:
            if field.nested is not None:
                if field.static_count == 1:
                    return self._decode_fields(field.nested, data, cursor, order)
                elements = []
                for _ in range(field.static_count):
                    element, cursor = self._decode_fields(
                        field.nested, data, cursor, order
                    )
                    elements.append(element)
                return elements, cursor
            if field.type.is_dynamic_array:
                cursor = _align(cursor - 1, 4) + 1
                (count,) = struct.unpack_from(order + "I", data, cursor)
                cursor += 4
                elements = []
                for _ in range(count):
                    element, cursor = self._decode_scalar(field, data, cursor, order)
                    elements.append(element)
                return elements, cursor
            if field.is_string:
                if field.static_count == 1:
                    return self._decode_string(data, cursor, order)
                strings = []
                for _ in range(field.static_count):
                    text, cursor = self._decode_string(data, cursor, order)
                    strings.append(text)
                return strings, cursor
            if field.kind == TypeKind.CHAR and field.type.is_static_array:
                raw = data[cursor : cursor + field.static_count]
                if len(raw) != field.static_count:
                    raise WireError("CDR: truncated char buffer")
                cursor += field.static_count
                try:
                    return raw.split(b"\x00", 1)[0].decode("utf-8"), cursor
                except UnicodeDecodeError as exc:
                    raise WireError(f"CDR: corrupt char buffer: {exc}") from exc
            if field.type.is_static_array:
                elements = []
                for _ in range(field.static_count):
                    element, cursor = self._decode_scalar(field, data, cursor, order)
                    elements.append(element)
                return elements, cursor
            return self._decode_scalar(field, data, cursor, order)
        except struct.error as exc:
            raise WireError(f"CDR: truncated data in field {field.name!r}") from exc

    def _decode_string(self, data: bytes, cursor: int, order: str):
        cursor = _align(cursor - 1, 4) + 1
        (length,) = struct.unpack_from(order + "I", data, cursor)
        cursor += 4
        if length == 0:
            return None, cursor
        raw = data[cursor : cursor + length]
        if len(raw) != length or raw[-1] != 0:
            raise WireError("CDR: malformed string")
        try:
            return raw[:-1].decode("utf-8"), cursor + length
        except UnicodeDecodeError as exc:
            raise WireError(f"CDR: corrupt string data: {exc}") from exc

    def _decode_scalar(self, field: CompiledField, data: bytes, cursor: int, order: str):
        kind, size = field.kind, field.size
        if kind == TypeKind.CHAR:
            raw = data[cursor : cursor + 1]
            if not raw:
                raise WireError("CDR: truncated char")
            return raw.decode("latin-1"), cursor + 1
        if kind == TypeKind.BOOLEAN:
            raw = data[cursor : cursor + 1]
            if not raw:
                raise WireError("CDR: truncated boolean")
            return raw != b"\x00", cursor + 1
        code = _CODES[(kind, size)]
        cursor = _align(cursor - 1, size) + 1
        (value,) = struct.unpack_from(order + code, data, cursor)
        return value, cursor + size


def cdr_encoded_size(fmt: IOFormat, record: dict) -> int:
    """Size of the CDR encoding of ``record`` (flag byte included)."""
    return len(CDRCodec(fmt).encode(record))
