"""Baseline wire formats (substrate S5).

The paper's evaluation positions NDR against the two wire formats that
dominated 2001 practice:

- **XDR** (RFC 1014) — the canonical-format approach used by Sun RPC and
  "commercial platforms": every datum is converted to a big-endian,
  4-byte-aligned canonical form on send and converted again on receive,
  regardless of whether the endpoints match.  Implemented in
  :mod:`~repro.wire.xdr` over the same :class:`~repro.pbio.IOFormat`
  metadata PBIO uses, so the comparison isolates the wire format.
- **text XML** (XML-RPC style) — records rendered as ASCII XML documents
  and parsed back, paying binary→text→binary conversion plus the 6–8×
  size expansion the paper cites.  Implemented in
  :mod:`~repro.wire.xmltext` over this repo's own XML parser.
- **CDR** (CORBA IIOP) — the §6 "third class": reader-makes-right byte
  order with per-field marshaling into a canonical layout.  Implemented
  in :mod:`~repro.wire.cdr`.

:mod:`~repro.wire.framing` provides the length-prefixed stream framing
all three wire formats share on the transports.
"""

from repro.wire.bufpool import BufferPool, get_pool, set_pool
from repro.wire.cdr import CDRCodec
from repro.wire.framing import (
    FrameDecoder,
    ReceiveBuffer,
    frame,
    frame_iov,
    read_frame,
    read_frame_into,
    unframe,
)
from repro.wire.xdr import XDRCodec
from repro.wire.xmltext import XMLTextCodec

__all__ = [
    "BufferPool",
    "CDRCodec",
    "FrameDecoder",
    "ReceiveBuffer",
    "frame",
    "frame_iov",
    "get_pool",
    "read_frame",
    "read_frame_into",
    "set_pool",
    "unframe",
    "XDRCodec",
    "XMLTextCodec",
]
