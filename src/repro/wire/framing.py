"""Length-prefixed message framing for byte-stream transports.

Every wire format in this repo is message-oriented; TCP and the in-process
pipe are byte streams.  Frames bridge the two: a big-endian u32 length
followed by the message bytes.

Three consumption styles are provided:

- blocking, copying: :func:`read_frame` over a file-like/socket-like
  ``recv`` callable;
- blocking, zero-copy: :func:`read_frame_into` over a ``recv_into``
  callable and a :class:`ReceiveBuffer`, yielding a ``memoryview`` of
  the message without intermediate chunk allocations;
- incremental: :class:`FrameDecoder`, fed arbitrary chunks, yielding
  complete messages — the style a non-blocking event loop needs.

On the send side, :func:`frame_iov` produces the (header, payload) pair
for scatter-gather writes (``socket.sendmsg``, ``writelines``) so the
payload is never copied into a concatenated frame.

Buffer ownership (the zero-copy contract, PROTOCOL §12): a
``memoryview`` returned by :func:`read_frame_into` aliases the
:class:`ReceiveBuffer` and is valid only until the next read into the
same buffer; a view yielded by a ``copy=False`` :class:`FrameDecoder`
aliases a fed chunk and stays valid as long as the consumer holds it,
provided the feeder does not mutate the chunk it fed.  Consumers that
need a message beyond that window must ``bytes()`` it.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Iterator

from repro.errors import ChannelClosedError, WireError

_LENGTH = struct.Struct(">I")

#: Frames above this are rejected as corrupt rather than allocated
#: (a length prefix of e.g. 0xFFFFFFFF from a desynchronized stream must
#: not trigger a 4 GiB allocation).
MAX_FRAME_SIZE = 256 * 1024 * 1024


def frame(message: bytes) -> bytes:
    """Wrap ``message`` in a length prefix (one concatenation copy).

    The copying path; the transports use :func:`frame_iov` instead.
    """
    if len(message) > MAX_FRAME_SIZE:
        raise WireError(f"message of {len(message)} bytes exceeds frame limit")
    return _LENGTH.pack(len(message)) + message


def frame_iov(message) -> tuple[bytes, bytes]:
    """Vectored framing: the ``(header, payload)`` pair for one frame.

    The payload is returned as-is (any bytes-like object), never copied
    — hand both elements to a scatter-gather write
    (``socket.sendmsg``, ``StreamWriter.writelines``) and the wire
    carries exactly what :func:`frame` would have produced, without the
    concatenation allocation.
    """
    length = len(message)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"message of {length} bytes exceeds frame limit")
    return _LENGTH.pack(length), message


def frame_parts(parts) -> list:
    """Vectored framing of a message supplied as buffer parts.

    Returns ``[header, *parts]`` where the header's length covers the
    concatenation of every part — one frame on the wire, zero join
    copies.  This is how columnar batch messages (built as an iovec of
    prelude, column blocks and heap) reach scatter-gather senders.
    """
    length = sum(len(part) for part in parts)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"message of {length} bytes exceeds frame limit")
    return [_LENGTH.pack(length), *parts]


def unframe(data) -> tuple:
    """Split one frame off the front of ``data``; returns (message, rest).

    Accepts ``bytes``, ``bytearray``, or ``memoryview``.  For ``bytes``
    input both results are ``bytes`` (slices copy — unavoidable for the
    immutable type).  For ``bytearray`` and ``memoryview`` input both
    results are **zero-copy memoryviews into the caller's buffer**: they
    are valid only while the caller keeps the underlying buffer alive
    and unmodified.  In particular, a view obtained from a channel's
    receive buffer must not be held across the next ``recv`` — the
    transport will overwrite the bytes under it.  Call ``bytes(view)``
    to take ownership.

    Raises :class:`~repro.errors.WireError` if ``data`` does not contain
    a complete frame.
    """
    if isinstance(data, (bytearray, memoryview)):
        data = memoryview(data)
    if len(data) < _LENGTH.size:
        raise WireError("incomplete frame header")
    (length,) = _LENGTH.unpack_from(data, 0)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"frame length {length} exceeds limit")
    end = _LENGTH.size + length
    if len(data) < end:
        raise WireError("incomplete frame body")
    return data[_LENGTH.size : end], data[end:]


def read_frame(recv: Callable[[int], bytes]) -> bytes:
    """Read exactly one frame using ``recv(n)`` (socket-style).

    ``recv`` returning empty bytes signals EOF:
    :class:`~repro.errors.ChannelClosedError` at a frame boundary,
    :class:`~repro.errors.WireError` mid-frame (truncation).
    """
    header = _read_exactly(recv, _LENGTH.size, at_boundary=True)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"frame length {length} exceeds limit")
    return _read_exactly(recv, length, at_boundary=False)


def _read_exactly(recv: Callable[[int], bytes], needed: int, *, at_boundary: bool) -> bytes:
    chunks: list[bytes] = []
    remaining = needed
    while remaining:
        chunk = recv(remaining)
        if not chunk:
            if at_boundary and remaining == needed:
                raise ChannelClosedError("peer closed the stream")
            raise WireError("stream ended mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ReceiveBuffer:
    """A reusable, growable receive buffer, optionally pool-backed.

    One lives on each channel that reads zero-copy: the frame body is
    received directly into it (``recv_into``) and handed to the caller
    as a ``memoryview``.  The buffer grows to fit the largest frame seen
    (swapping through the :class:`~repro.wire.bufpool.BufferPool` when
    one is attached) and is otherwise reused verbatim — steady state
    allocates nothing.
    """

    __slots__ = ("_pool", "_data", "_initial", "header")

    def __init__(self, pool=None, *, initial: int = 4096) -> None:
        self._pool = pool
        self._data: bytearray | None = None
        self._initial = initial
        #: 4-byte scratch for the length prefix, reused per frame.
        self.header = memoryview(bytearray(_LENGTH.size))

    def reserve(self, size: int) -> memoryview:
        """A writable view of exactly ``size`` bytes, growing if needed.

        Growing invalidates (overwrites do too) any previously returned
        view — see the ownership contract in the module docstring.
        """
        data = self._data
        if data is None or len(data) < size:
            if data is not None and self._pool is not None:
                self._pool.release(data)
            wanted = max(size, self._initial)
            data = (
                self._pool.acquire(wanted)
                if self._pool is not None
                else bytearray(wanted)
            )
            self._data = data
        return memoryview(data)[:size]

    @property
    def capacity(self) -> int:
        """Bytes currently backing this buffer (0 before first use)."""
        return 0 if self._data is None else len(self._data)

    def close(self) -> None:
        """Return the backing buffer to the pool; idempotent."""
        if self._data is not None and self._pool is not None:
            self._pool.release(self._data)
        self._data = None


def read_frame_into(
    recv_into: Callable[[memoryview], int], buffer: ReceiveBuffer
) -> memoryview:
    """Read exactly one frame into ``buffer``; returns the message view.

    ``recv_into(view)`` fills some prefix of ``view`` and returns the
    byte count (0 for EOF) — ``socket.recv_into`` semantics.  The
    returned ``memoryview`` aliases ``buffer`` and is valid only until
    the next :func:`read_frame_into` on the same buffer.

    EOF raises :class:`~repro.errors.ChannelClosedError` at a frame
    boundary and :class:`~repro.errors.WireError` mid-frame, exactly
    like :func:`read_frame`.
    """
    header = buffer.header
    _fill_exactly(recv_into, header, at_boundary=True)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"frame length {length} exceeds limit")
    body = buffer.reserve(length)
    _fill_exactly(recv_into, body, at_boundary=False)
    return body


def _fill_exactly(
    recv_into: Callable[[memoryview], int], view: memoryview, *, at_boundary: bool
) -> None:
    total = len(view)
    filled = 0
    while filled < total:
        count = recv_into(view[filled:] if filled else view)
        if count == 0:
            if at_boundary and filled == 0:
                raise ChannelClosedError("peer closed the stream")
            raise WireError("stream ended mid-frame")
        filled += count


class FrameDecoder:
    """Incremental frame decoder: feed chunks, iterate complete messages.

    By default each complete message is yielded as an owned ``bytes``
    copy.  With ``copy=False`` a message that lies within a single fed
    chunk is yielded as a **zero-copy memoryview of that chunk** (only
    messages spanning a chunk boundary are assembled); the feeder must
    then not mutate a fed ``bytearray`` until the views taken from it
    are dropped (``bytes`` chunks are immutable and always safe).
    """

    def __init__(self, *, copy: bool = True) -> None:
        self._chunks: deque[memoryview] = deque()
        self._offset = 0  # consumed bytes of the head chunk
        self._size = 0  # total unconsumed bytes
        self._copy = copy

    def feed(self, chunk) -> None:
        """Append raw stream bytes (any bytes-like object)."""
        if not len(chunk):
            return
        if self._copy and not isinstance(chunk, bytes):
            # Copy-mode keeps the pre-zero-copy contract: the caller may
            # reuse a mutable chunk buffer immediately after feeding.
            chunk = bytes(chunk)
        self._chunks.append(memoryview(chunk))
        self._size += len(chunk)

    def messages(self) -> Iterator[bytes]:
        """Yield every complete message currently buffered."""
        while True:
            if self._size < _LENGTH.size:
                return
            length = self._peek_length()
            if length > MAX_FRAME_SIZE:
                raise WireError(f"frame length {length} exceeds limit")
            if self._size < _LENGTH.size + length:
                return
            self._skip(_LENGTH.size)
            message = self._take(length)
            yield bytes(message) if self._copy else message

    # -- chunk-list plumbing -------------------------------------------------

    def _peek_length(self) -> int:
        """The head frame's length prefix, without consuming it."""
        head = self._chunks[0]
        if len(head) - self._offset >= _LENGTH.size:
            return _LENGTH.unpack_from(head, self._offset)[0]
        scratch = bytearray(_LENGTH.size)
        position = 0
        offset = self._offset
        for chunk in self._chunks:
            take = min(_LENGTH.size - position, len(chunk) - offset)
            scratch[position : position + take] = chunk[offset : offset + take]
            position += take
            offset = 0
            if position == _LENGTH.size:
                break
        return _LENGTH.unpack(scratch)[0]

    def _skip(self, count: int) -> None:
        self._size -= count
        while count:
            head = self._chunks[0]
            available = len(head) - self._offset
            if available > count:
                self._offset += count
                return
            count -= available
            self._chunks.popleft()
            self._offset = 0

    def _take(self, count: int) -> memoryview:
        """Consume ``count`` bytes: a sub-view when contiguous, else joined."""
        if count == 0:
            return memoryview(b"")
        head = self._chunks[0]
        if len(head) - self._offset >= count:
            view = head[self._offset : self._offset + count]
            self._offset += count
            self._size -= count
            if self._offset == len(head):
                self._chunks.popleft()
                self._offset = 0
            return view
        assembled = bytearray(count)
        position = 0
        while position < count:
            head = self._chunks[0]
            take = min(len(head) - self._offset, count - position)
            assembled[position : position + take] = head[
                self._offset : self._offset + take
            ]
            position += take
            self._offset += take
            if self._offset == len(head):
                self._chunks.popleft()
                self._offset = 0
        self._size -= count
        return memoryview(assembled)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete message."""
        return self._size
