"""Length-prefixed message framing for byte-stream transports.

Every wire format in this repo is message-oriented; TCP and the in-process
pipe are byte streams.  Frames bridge the two: a big-endian u32 length
followed by the message bytes.

Two consumption styles are provided:

- blocking: :func:`read_frame` over a file-like/socket-like ``recv``
  callable;
- incremental: :class:`FrameDecoder`, fed arbitrary chunks, yielding
  complete messages — the style a non-blocking event loop needs.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator

from repro.errors import ChannelClosedError, WireError

_LENGTH = struct.Struct(">I")

#: Frames above this are rejected as corrupt rather than allocated
#: (a length prefix of e.g. 0xFFFFFFFF from a desynchronized stream must
#: not trigger a 4 GiB allocation).
MAX_FRAME_SIZE = 256 * 1024 * 1024


def frame(message: bytes) -> bytes:
    """Wrap ``message`` in a length prefix."""
    if len(message) > MAX_FRAME_SIZE:
        raise WireError(f"message of {len(message)} bytes exceeds frame limit")
    return _LENGTH.pack(len(message)) + message


def unframe(data: bytes) -> tuple[bytes, bytes]:
    """Split one frame off the front of ``data``; returns (message, rest).

    Raises :class:`~repro.errors.WireError` if ``data`` does not contain
    a complete frame.
    """
    if len(data) < _LENGTH.size:
        raise WireError("incomplete frame header")
    (length,) = _LENGTH.unpack_from(data, 0)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"frame length {length} exceeds limit")
    end = _LENGTH.size + length
    if len(data) < end:
        raise WireError("incomplete frame body")
    return data[_LENGTH.size : end], data[end:]


def read_frame(recv: Callable[[int], bytes]) -> bytes:
    """Read exactly one frame using ``recv(n)`` (socket-style).

    ``recv`` returning empty bytes signals EOF:
    :class:`~repro.errors.ChannelClosedError` at a frame boundary,
    :class:`~repro.errors.WireError` mid-frame (truncation).
    """
    header = _read_exactly(recv, _LENGTH.size, at_boundary=True)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise WireError(f"frame length {length} exceeds limit")
    return _read_exactly(recv, length, at_boundary=False)


def _read_exactly(recv: Callable[[int], bytes], needed: int, *, at_boundary: bool) -> bytes:
    chunks: list[bytes] = []
    remaining = needed
    while remaining:
        chunk = recv(remaining)
        if not chunk:
            if at_boundary and remaining == needed:
                raise ChannelClosedError("peer closed the stream")
            raise WireError("stream ended mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameDecoder:
    """Incremental frame decoder: feed chunks, iterate complete messages."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> None:
        """Append raw stream bytes."""
        self._buffer.extend(chunk)

    def messages(self) -> Iterator[bytes]:
        """Yield every complete message currently buffered."""
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_SIZE:
                raise WireError(f"frame length {length} exceeds limit")
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return
            message = bytes(self._buffer[_LENGTH.size : end])
            del self._buffer[:end]
            yield message

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete message."""
        return len(self._buffer)
