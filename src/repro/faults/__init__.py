"""Deterministic fault injection for chaos testing the stack.

The paper's fault-tolerance story (§3.3) is architectural: remote
discovery degrades to compiled-in metadata when "a broken network link
or hardware failure" strikes.  Exercising that story needs broken links
on demand.  This package provides them, reproducibly:

- :class:`~repro.faults.plan.FaultPlan` /
  :class:`~repro.faults.plan.ServerFaultPlan` — seeded, deterministic
  schedules deciding *which* operation fails and *how* (explicit
  "fail the Nth op" entries plus probabilistic rates);
- :class:`~repro.faults.channel.FaultyChannel` — wraps any
  :class:`~repro.transport.channel.Channel` and injects connection
  resets, timeouts, message drops, byte corruption, and added latency;
- :class:`~repro.metaserver.server.FlakyMetadataServer` (over in
  :mod:`repro.metaserver`) consumes a :class:`ServerFaultPlan` to serve
  5xx errors, hangs, and truncated bodies.

The resilience layers under test: retry + circuit breaker +
stale-while-revalidate in :mod:`repro.metaserver.client`, source health
tracking in :mod:`repro.core.discovery`, poisoning and bounded
reconnect in :mod:`repro.transport.tcp`.
"""

from repro.faults.channel import FaultyChannel, corrupt_bytes
from repro.faults.plan import (
    CHANNEL_FAULTS,
    POOL_FAULTS,
    SERVER_FAULTS,
    FaultEvent,
    FaultPlan,
    PoolFaultPlan,
    ServerFaultPlan,
)

__all__ = [
    "CHANNEL_FAULTS",
    "POOL_FAULTS",
    "SERVER_FAULTS",
    "FaultEvent",
    "FaultPlan",
    "PoolFaultPlan",
    "ServerFaultPlan",
    "FaultyChannel",
    "corrupt_bytes",
]
