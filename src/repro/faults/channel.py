"""A channel wrapper that injects faults according to a plan.

:class:`FaultyChannel` sits between application code and any concrete
:class:`~repro.transport.channel.Channel` (in-process pipe, TCP socket,
reconnecting wrapper) and turns the plan's decisions into the same
failure modes a hostile network produces:

- ``reset`` — the inner channel is closed and
  :class:`~repro.errors.ChannelClosedError` raised, exactly what a peer
  RST looks like to the caller;
- ``timeout`` — :class:`~repro.errors.TransportTimeoutError` without
  touching the inner channel (the bytes are "still in flight");
- ``drop`` — on send, the message is silently discarded; on recv, one
  inbound message is consumed and thrown away, then the wrapper keeps
  receiving (the message was "lost on the wire");
- ``corrupt`` — a seeded single-byte flip applied to the payload
  (send-side before framing, recv-side after deframing);
- ``delay`` — ``delay_seconds`` of added latency, then the operation
  proceeds normally.

Determinism: both the fault schedule and the corruption byte positions
derive from the plan's seed, so a chaos test run twice produces the
same faults at the same operations.
"""

from __future__ import annotations

import random
import time

from repro.errors import ChannelClosedError, TransportTimeoutError
from repro.faults.plan import FaultPlan
from repro.transport.channel import Channel


def corrupt_bytes(message, rng: random.Random) -> bytes:
    """Flip one random byte of ``message`` (empty messages pass through).

    Accepts any buffer (``bytes``, ``bytearray``, ``memoryview``): the
    zero-copy send/recv paths hand views through the fault wrappers, and
    only a message actually selected for corruption is materialized
    (the ``bytearray(message)`` copy below).  The original buffer is
    never mutated in place — a corrupted copy is returned — so a pooled
    receive buffer is not damaged for subsequent frames.
    """
    if not len(message):
        return message
    index = rng.randrange(len(message))
    mutated = bytearray(message)
    mutated[index] ^= 1 << rng.randrange(8)
    return bytes(mutated)


class FaultyChannel(Channel):
    """Wrap ``inner`` so every operation first consults ``plan``."""

    def __init__(self, inner: Channel, plan: FaultPlan | None = None) -> None:
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self._corrupt_rng = self.plan.corruption_rng()
        self.sent = 0
        self.received = 0

    # -- the faulted operations ----------------------------------------------

    def send(self, message: bytes) -> None:
        """Send through the inner channel, unless the plan says otherwise."""
        kind = self.plan.decide("send")
        if kind == "drop":
            return  # lost on the wire; the caller believes it was sent
        if kind == "reset":
            self.inner.close()
            raise ChannelClosedError("injected fault: connection reset on send")
        if kind == "timeout":
            raise TransportTimeoutError("injected fault: send timed out")
        if kind == "corrupt":
            message = corrupt_bytes(message, self._corrupt_rng)
        elif kind == "delay":
            time.sleep(self.plan.delay_seconds)
        self.inner.send(message)
        self.sent += 1

    def recv(self, timeout: float | None = None) -> bytes:
        """Receive from the inner channel, unless the plan says otherwise."""
        while True:
            kind = self.plan.decide("recv")
            if kind == "reset":
                self.inner.close()
                raise ChannelClosedError("injected fault: connection reset on recv")
            if kind == "timeout":
                raise TransportTimeoutError("injected fault: recv timed out")
            if kind == "delay":
                time.sleep(self.plan.delay_seconds)
            message = self.inner.recv(timeout)
            if kind == "drop":
                continue  # that message was lost on the wire; wait for the next
            if kind == "corrupt":
                message = corrupt_bytes(message, self._corrupt_rng)
            self.received += 1
            return message

    # -- passthrough ----------------------------------------------------------

    def close(self) -> None:
        """Close the inner channel."""
        self.inner.close()

    @property
    def closed(self) -> bool:
        """Whether the inner channel is closed."""
        return self.inner.closed
