"""Deterministic fault schedules for chaos testing.

A fault plan answers one question — *should this operation fail, and
how?* — in a way that is exactly reproducible from a seed.  Two kinds of
consumers exist:

- :class:`FaultPlan` drives :class:`~repro.faults.channel.FaultyChannel`:
  per channel operation (``send`` / ``recv``) it may inject a connection
  reset, a timeout, a silent message drop, byte corruption, or added
  latency.
- :class:`ServerFaultPlan` drives
  :class:`~repro.metaserver.server.FlakyMetadataServer`: per HTTP
  request it may substitute a 5xx error, hang before answering, or
  truncate the response body.

Both support the same two scheduling styles, which compose:

- **explicit** — :meth:`on(n, kind)` injects ``kind`` on exactly the
  *n*-th matching operation (1-based), for tests that need a fault at a
  precise point;
- **probabilistic** — per-kind rates drawn from a ``random.Random(seed)``
  stream, for chaos runs; the same seed always produces the same fault
  sequence.

Explicit entries win over the probabilistic draw for their operation
index.  Every decision is recorded in :attr:`injected` and per-kind
:attr:`counts`, so harnesses can report exactly what was thrown at the
system under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError

#: Channel fault kinds, in the order the probabilistic draw checks them.
CHANNEL_FAULTS = ("reset", "timeout", "drop", "corrupt", "delay")

#: Server fault kinds.
SERVER_FAULTS = ("error", "hang", "truncate")

#: Worker-pool fault kinds.
POOL_FAULTS = ("crash",)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: which operation, which kind."""

    index: int  # 1-based operation count at injection time
    op: str  # "send" / "recv" for channels, "request" for servers
    kind: str


class _BasePlan:
    """Shared scheduling machinery (explicit + seeded probabilistic)."""

    kinds: tuple[str, ...] = ()

    def __init__(self, seed: int, rates: dict[str, float]) -> None:
        for kind, rate in rates.items():
            if kind not in self.kinds:
                raise ReproError(
                    f"unknown fault kind {kind!r}; expected one of {self.kinds}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"rate for {kind!r} must be in [0, 1], got {rate}")
        self.seed = seed
        self.rates = dict(rates)
        self._rng = random.Random(seed)
        self._scheduled: dict[int, str] = {}
        self._count = 0
        self.counts: dict[str, int] = {kind: 0 for kind in self.kinds}
        self.injected: list[FaultEvent] = []

    def on(self, n: int, kind: str) -> "_BasePlan":
        """Schedule ``kind`` on exactly the ``n``-th operation (fluent)."""
        if kind not in self.kinds:
            raise ReproError(
                f"unknown fault kind {kind!r}; expected one of {self.kinds}"
            )
        if n < 1:
            raise ReproError(f"operation indices are 1-based, got {n}")
        self._scheduled[n] = kind
        return self

    @property
    def operations(self) -> int:
        """Operations decided so far (faulted or not)."""
        return self._count

    @property
    def total_injected(self) -> int:
        """Total faults injected so far."""
        return len(self.injected)

    def _decide(self, op: str) -> str | None:
        self._count += 1
        kind = self._scheduled.get(self._count)
        if kind is None:
            # One draw per configured kind keeps the stream aligned no
            # matter which rates are zero, so adding a rate later does
            # not shift earlier decisions of other kinds.
            for candidate in self.kinds:
                rate = self.rates.get(candidate, 0.0)
                draw = self._rng.random()
                if kind is None and rate > 0.0 and draw < rate:
                    kind = candidate
        if kind is not None:
            self.counts[kind] += 1
            self.injected.append(FaultEvent(self._count, op, kind))
        return kind

    def reset(self) -> None:
        """Rewind the plan to its initial state (same seed, same schedule)."""
        self._rng = random.Random(self.seed)
        self._count = 0
        self.counts = {kind: 0 for kind in self.kinds}
        self.injected = []


class FaultPlan(_BasePlan):
    """Fault schedule for a channel wrapper.

    Parameters
    ----------
    seed:
        Seeds the probabilistic draw *and* the corruption byte-flipper.
    reset, timeout, drop, corrupt, delay:
        Per-operation probability of each fault kind (0 disables).
    delay_seconds:
        Added latency when a ``delay`` fault fires.
    ops:
        Which channel operations the plan applies to; operations outside
        the set are passed through without consuming a decision.
    """

    kinds = CHANNEL_FAULTS

    def __init__(
        self,
        seed: int = 0,
        *,
        reset: float = 0.0,
        timeout: float = 0.0,
        drop: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.005,
        ops: tuple[str, ...] = ("send", "recv"),
    ) -> None:
        super().__init__(
            seed,
            {
                "reset": reset,
                "timeout": timeout,
                "drop": drop,
                "corrupt": corrupt,
                "delay": delay,
            },
        )
        for op in ops:
            if op not in ("send", "recv"):
                raise ReproError(f"ops must be 'send'/'recv', got {op!r}")
        if delay_seconds < 0:
            raise ReproError("delay_seconds must be non-negative")
        self.delay_seconds = delay_seconds
        self.ops = tuple(ops)

    def decide(self, op: str) -> str | None:
        """The fault to inject on this operation, or None for passthrough."""
        if op not in self.ops:
            return None
        return self._decide(op)

    def corruption_rng(self) -> random.Random:
        """The byte-flipper RNG for this plan's corrupt faults.

        Derived from the seed (not equal to it, so the decision stream
        and the corruption stream never alias).  Both channel wrappers —
        sync :class:`~repro.faults.channel.FaultyChannel` and async
        :class:`~repro.aio.faults.AsyncFaultyChannel` — MUST obtain
        their RNG here: one shared derivation is what makes a chaos
        schedule replay corrupt-bit-for-corrupt-bit on either plane
        (guarded by ``tests/faults/test_plane_parity.py``).
        """
        return random.Random(self.seed ^ 0x5EED)


class ServerFaultPlan(_BasePlan):
    """Fault schedule for a metadata server.

    Parameters
    ----------
    seed:
        Seeds the probabilistic draw.
    error, hang, truncate:
        Per-request probability of each fault kind.
    error_status:
        HTTP status served on an ``error`` fault.
    hang_seconds:
        How long a ``hang`` fault stalls before dropping the connection
        without a response (pick this above the client timeout to
        exercise the client's timeout path, below it to exercise the
        closed-before-response path).
    """

    kinds = SERVER_FAULTS

    def __init__(
        self,
        seed: int = 0,
        *,
        error: float = 0.0,
        hang: float = 0.0,
        truncate: float = 0.0,
        error_status: int = 503,
        hang_seconds: float = 0.05,
    ) -> None:
        super().__init__(seed, {"error": error, "hang": hang, "truncate": truncate})
        if error_status < 400 or error_status > 599:
            raise ReproError(f"error_status must be a 4xx/5xx code, got {error_status}")
        if hang_seconds < 0:
            raise ReproError("hang_seconds must be non-negative")
        self.error_status = error_status
        self.hang_seconds = hang_seconds

    def decide(self) -> str | None:
        """The fault to inject on this request, or None for a clean answer."""
        return self._decide("request")


class PoolFaultPlan(_BasePlan):
    """Fault schedule for a :class:`~repro.mp.pool.WorkerPool` monitor.

    The pool's monitor thread calls :meth:`decide` once per supervision
    tick; a ``crash`` decision hard-kills one worker (round-robin by
    tick index), exercising the respawn + catalog re-sync path exactly
    reproducibly from the seed.

    Parameters
    ----------
    seed:
        Seeds the probabilistic draw.
    crash:
        Per-tick probability of killing a worker (0 disables; use
        :meth:`~repro.faults.plan._BasePlan.on` for an exact tick).
    max_crashes:
        Stop injecting after this many kills (so a chaos run converges
        instead of flapping forever); ``None`` for unlimited.
    """

    kinds = POOL_FAULTS

    def __init__(
        self,
        seed: int = 0,
        *,
        crash: float = 0.0,
        max_crashes: int | None = None,
    ) -> None:
        super().__init__(seed, {"crash": crash})
        if max_crashes is not None and max_crashes < 0:
            raise ReproError("max_crashes must be non-negative")
        self.max_crashes = max_crashes

    def decide(self) -> str | None:
        """The fault to inject on this supervision tick, or None."""
        if self.max_crashes is not None and self.counts["crash"] >= self.max_crashes:
            self._count += 1  # keep the tick index advancing
            return None
        return self._decide("tick")
