"""``WorkerPool``: N server processes on one port (PROTOCOL §15.3).

One Python process is one GIL; the pool escapes it by running N worker
processes that all serve the same metadata catalog on the same port:

- **reuseport mode** (default where available) — every worker binds the
  port with ``SO_REUSEPORT`` and the kernel shards ``accept`` across
  them, no userspace dispatcher on the hot path.  The parent holds a
  bound-but-not-listening reservation socket so the port stays stable
  across worker respawns (TCP reuseport groups only include *listening*
  sockets, so the reservation never receives traffic).
- **handoff mode** (fallback) — the parent owns the single listener and
  deals accepted sockets to workers round-robin over
  ``multiprocessing.reduction.send_handle``; workers serve them through
  a listener shim, so the serving code is identical in both modes.

Catalog coherence: the parent holds the authoritative static-document
snapshot.  Every publish — through :meth:`WorkerPool.publish_schema` or
a client ``POST /mp/publish`` on any worker — flows to the parent, which
re-broadcasts to every other worker over the control pipes.  A respawned
worker receives the full snapshot before it serves its first request, so
a crash loses no registered documents.

Supervision: a monitor thread respawns dead workers, relays publishes,
pushes pool health to workers (served at ``GET /mp/status`` and exported
through :mod:`repro.obs` gauges), and — when a
:class:`~repro.faults.plan.PoolFaultPlan` is attached — kills workers on
the plan's deterministic schedule to exercise exactly that path.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.reduction import recv_handle, send_handle
from urllib.parse import parse_qs

from repro.errors import DiscoveryError, TransportError
from repro.schema.model import SchemaDocument
from repro.schema.writer import schema_to_xml

_CTX = get_context("spawn")  # the parent has threads; fork is not safe


def reuseport_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` accept sharding."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


@dataclass
class WorkerStatus:
    """One worker's health as the parent sees it."""

    index: int
    pid: int | None = None
    alive: bool = False
    ready: bool = False
    respawns: int = 0
    requests_served: int = 0
    plane: str = "threaded"

    def as_dict(self) -> dict:
        """JSON-ready form (one row of ``/mp/status``)."""
        return {
            "index": self.index,
            "pid": self.pid,
            "alive": self.alive,
            "ready": self.ready,
            "respawns": self.respawns,
            "requests_served": self.requests_served,
            "plane": self.plane,
        }


@dataclass
class PoolStatus:
    """The pool's aggregate health (``metaserve --status``, ``/mp/status``)."""

    mode: str
    host: str
    port: int
    workers: list[WorkerStatus] = field(default_factory=list)

    @property
    def total_respawns(self) -> int:
        return sum(worker.respawns for worker in self.workers)

    @property
    def alive(self) -> int:
        return sum(1 for worker in self.workers if worker.alive)

    def as_dict(self) -> dict:
        """JSON-ready form (the ``/mp/status`` body)."""
        return {
            "mode": self.mode,
            "host": self.host,
            "port": self.port,
            "alive": self.alive,
            "total_respawns": self.total_respawns,
            "workers": [worker.as_dict() for worker in self.workers],
        }


class _HandoffListener:
    """A listener shim fed accepted sockets over a pipe (fallback mode).

    Duck-types the :class:`~repro.transport.tcp.TCPListener` surface the
    threaded :class:`~repro.metaserver.server.MetadataServer` uses —
    ``accept(timeout)`` / ``address`` / ``close`` — so the serving code
    cannot tell kernel sharding from parent-dealt sockets.
    """

    def __init__(self, conn, address: tuple[str, int]) -> None:
        self._conn = conn
        self._address = address
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    def accept(self, timeout: float | None = None):
        from repro.transport.tcp import TCPChannel

        if self._closed:
            raise TransportError("handoff listener closed")
        if not self._conn.poll(timeout):
            raise TransportError(f"accept timed out after {timeout}s")
        try:
            fd = recv_handle(self._conn)
        except (EOFError, OSError) as exc:
            self._closed = True
            raise TransportError(f"handoff pipe closed: {exc}") from exc
        return TCPChannel(socket.socket(fileno=fd))

    def close(self) -> None:
        self._closed = True


def _worker_obs_tick(index: int, requests_served: int, status: dict | None) -> None:
    """Refresh this worker's pool-health gauges (served at /metrics)."""
    from repro.obs.metrics import get_registry

    registry = get_registry()
    if not registry.enabled:
        return
    label = str(index)
    registry.gauge(
        "mp_worker_requests_total",
        "requests served by this pool worker",
        ("worker",),
    ).labels(label).set(requests_served)
    if status is not None:
        up = registry.gauge(
            "mp_worker_up",
            "1 when the pool worker is alive, else 0",
            ("worker",),
        )
        respawns = registry.gauge(
            "mp_worker_respawns_total",
            "times the pool has respawned this worker",
            ("worker",),
        )
        for worker in status.get("workers", ()):
            peer = str(worker["index"])
            up.labels(peer).set(1.0 if worker["alive"] else 0.0)
            respawns.labels(peer).set(worker["respawns"])


def _mp_prefix_handler(index: int, catalog, control_send, status_ref):
    """The ``/mp/*`` control surface each worker mounts on its catalog."""
    from repro.metaserver.http import HTTPRequest, HTTPResponse

    _JSON = "application/json; charset=utf-8"

    def handler(request: HTTPRequest) -> HTTPResponse:
        path, _, query = request.path.partition("?")
        if path == "/mp/worker":
            body = json.dumps({"worker": index, "pid": os.getpid()})
            return HTTPResponse(200, {"Content-Type": _JSON}, body.encode())
        if path == "/mp/status":
            body = json.dumps(status_ref[0])
            return HTTPResponse(200, {"Content-Type": _JSON}, body.encode())
        if path == "/mp/publish":
            if request.method != "POST":
                return HTTPResponse(405, body=b"publish is POST-only")
            target = parse_qs(query).get("path", [""])[0]
            if not target.startswith("/"):
                return HTTPResponse(400, body=b"publish needs ?path=/...")
            text = request.body.decode("utf-8")
            # Locally first (the answering worker is immediately
            # coherent), then upward: the parent re-broadcasts to every
            # *other* worker, making the registration pool-wide.
            catalog.publish_schema(target, text)
            control_send(("publish", target, text))
            return HTTPResponse(200, {"Content-Type": _JSON}, b'{"published": true}')
        return HTTPResponse(404, body=f"no pool endpoint at {path}".encode())

    return handler


def _worker_main(index, host, port, mode, plane, control, handoff) -> None:
    """One pool worker: serve the shared catalog until told to stop.

    Top-level (not a closure) so the spawn start method can pickle it.
    The first control message is always the catalog snapshot — the
    worker loads it *before* accepting, so a respawn never serves a
    window of missing documents.
    """
    from repro.metaserver.catalog import MetadataCatalog
    from repro.metaserver.server import MetadataServer
    from repro.transport.tcp import TCPListener

    catalog = MetadataCatalog()
    status_ref = [{}]
    send_lock = threading.Lock()

    def control_send(message) -> None:
        with send_lock:
            try:
                control.send(message)
            except (OSError, BrokenPipeError):
                pass  # parent gone; the worker is about to exit anyway

    catalog.attach_prefix_handler(
        "/mp/", _mp_prefix_handler(index, catalog, control_send, status_ref)
    )

    try:
        op, snapshot = control.recv()  # blocking: snapshot precedes serving
        if op == "catalog":
            catalog.load_snapshot(snapshot)
    except (EOFError, OSError):
        return

    loop = None
    if plane == "async" and mode == "reuseport":
        from repro.aio.metaserver import AsyncMetadataServer
        from repro.aio.runner import BackgroundLoop

        loop = BackgroundLoop()
        server = loop.run(
            AsyncMetadataServer(host, port, catalog=catalog, reuse_port=True).start()
        )
    else:
        # Handoff mode deals already-accepted sockets, which only the
        # threaded plane consumes — an async worker falls back.
        if mode == "reuseport":
            listener = TCPListener(host, port, reuse_port=True)
        else:
            listener = _HandoffListener(handoff, (host, port))
        server = MetadataServer(catalog=catalog, listener=listener).start()

    control_send(("ready", index, port, os.getpid()))
    try:
        while True:
            if control.poll(0.2):
                try:
                    message = control.recv()
                except (EOFError, OSError):
                    break  # parent died; exit with it
                op = message[0]
                if op == "stop":
                    break
                if op == "publish":
                    catalog.publish_schema(message[1], message[2])
                elif op == "unpublish":
                    catalog.unpublish(message[1])
                elif op == "catalog":
                    catalog.load_snapshot(message[1])
                elif op == "status":
                    status_ref[0] = message[1]
                    _worker_obs_tick(index, server.requests_served, message[1])
            control_send(("stats", index, {"requests_served": server.requests_served}))
    finally:
        if loop is not None:
            try:
                loop.run(server.stop())
            finally:
                loop.stop()
        else:
            server.stop()


class WorkerPool:
    """N metadata-server workers sharing one port and one catalog.

    Parameters
    ----------
    host, port:
        The serving address; port 0 picks a free port (resolved before
        workers spawn, so every worker binds the same concrete port).
    workers:
        Worker process count.
    plane:
        ``"threaded"`` or ``"async"`` — which serving plane each worker
        runs (async requires reuseport mode; handoff workers fall back
        to threaded).
    mode:
        ``"reuseport"``, ``"handoff"``, or ``None`` to auto-detect
        (reuseport where :func:`reuseport_available`, else handoff).
    fault_plan:
        An optional :class:`~repro.faults.plan.PoolFaultPlan`; each
        supervision tick may kill one worker (round-robin victim) to
        exercise respawn + catalog re-sync deterministically.
    respawn:
        Whether dead workers are restarted (chaos tests may disable).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        *,
        plane: str = "threaded",
        mode: str | None = None,
        fault_plan=None,
        respawn: bool = True,
        tick_seconds: float = 0.1,
    ) -> None:
        if workers < 1:
            raise DiscoveryError(f"worker pools need >= 1 worker, got {workers}")
        if plane not in ("threaded", "async"):
            raise DiscoveryError(f"plane must be 'threaded'/'async', got {plane!r}")
        if mode not in (None, "reuseport", "handoff"):
            raise DiscoveryError(f"mode must be 'reuseport'/'handoff', got {mode!r}")
        if mode is None:
            mode = "reuseport" if reuseport_available() else "handoff"
        if mode == "reuseport" and not reuseport_available():
            raise TransportError("SO_REUSEPORT unsupported on this platform")
        self.host = host
        self.mode = mode
        self.plane = plane
        self.fault_plan = fault_plan
        self._respawn = respawn
        self._tick = tick_seconds
        self._count = workers
        self._documents: dict[str, str] = {}
        self._documents_lock = threading.Lock()
        self._procs: list = [None] * workers
        self._controls: list = [None] * workers
        self._handoffs: list = [None] * workers
        self._status = [WorkerStatus(index=i, plane=plane) for i in range(workers)]
        self._control_lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._dealer: threading.Thread | None = None
        self._reserve: socket.socket | None = None
        self._listener = None
        self._started = False

        if mode == "reuseport":
            # Reserve the port without listening: the reservation keeps
            # the port ours across respawns but never receives traffic
            # (TCP reuseport groups only contain listening sockets).
            reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            try:
                reserve.bind((host, port))
            except OSError as exc:
                reserve.close()
                raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
            self._reserve = reserve
            self.port = reserve.getsockname()[1]
        else:
            from repro.transport.tcp import TCPListener

            self._listener = TCPListener(host, port)
            self.port = self._listener.address[1]

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def url_for(self, path: str) -> str:
        """Absolute URL of ``path`` on the pool's shared port."""
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "WorkerPool":
        """Spawn the workers and the supervision threads (fluent)."""
        if self._started:
            raise DiscoveryError("pool already started")
        self._started = True
        for index in range(self._count):
            self._spawn(index)
        self._monitor = threading.Thread(target=self._monitor_loop, daemon=True)
        self._monitor.start()
        if self.mode == "handoff":
            self._dealer = threading.Thread(target=self._dealer_loop, daemon=True)
            self._dealer.start()
        return self

    def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until every worker has bound and reported ready."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(worker.ready and worker.alive for worker in self._status):
                return
            time.sleep(0.01)
        raise TransportError(
            f"pool not ready within {timeout}s: {self.status().as_dict()}"
        )

    def stop(self) -> None:
        """Stop the workers and supervision threads; idempotent."""
        if self._stop.is_set():
            return
        self._stop.set()
        for conn in self._controls:
            self._send_control(conn, ("stop",))
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=3)
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        if self._monitor is not None:
            self._monitor.join(timeout=2)
        if self._dealer is not None:
            self._dealer.join(timeout=2)
        if self._reserve is not None:
            self._reserve.close()
        if self._listener is not None:
            self._listener.close()
        for conn in self._controls:
            if conn is not None:
                conn.close()
        for conn in self._handoffs:
            if conn is not None:
                conn.close()

    def __enter__(self) -> "WorkerPool":
        pool = self.start()
        pool.wait_ready()
        return pool

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- publication (parent-side API, mirrored to every worker) ---------------

    def publish_schema(self, path: str, schema: "SchemaDocument | str") -> str:
        """Publish a static document on every worker; returns its URL."""
        if not path.startswith("/"):
            raise DiscoveryError(f"paths must start with '/', got {path!r}")
        text = schema if isinstance(schema, str) else schema_to_xml(schema)
        with self._documents_lock:
            self._documents[path] = text
        self._broadcast(("publish", path, text))
        return self.url_for(path)

    def unpublish(self, path: str) -> None:
        """Remove a document from every worker; missing paths are a no-op."""
        with self._documents_lock:
            self._documents.pop(path, None)
        self._broadcast(("unpublish", path))

    def status(self) -> PoolStatus:
        """A point-in-time snapshot of pool and worker health."""
        return PoolStatus(
            mode=self.mode,
            host=self.host,
            port=self.port,
            workers=[WorkerStatus(**worker.as_dict()) for worker in self._status],
        )

    # -- internals -------------------------------------------------------------

    def _spawn(self, index: int) -> None:
        parent_control, child_control = _CTX.Pipe()
        if self.mode == "handoff":
            parent_handoff, child_handoff = _CTX.Pipe()
        else:
            parent_handoff = child_handoff = None
        proc = _CTX.Process(
            target=_worker_main,
            args=(
                index,
                self.host,
                self.port,
                self.mode,
                self.plane,
                child_control,
                child_handoff,
            ),
            daemon=True,
            name=f"repro-mp-worker-{index}",
        )
        proc.start()
        child_control.close()
        if child_handoff is not None:
            child_handoff.close()
        old_control = self._controls[index]
        old_handoff = self._handoffs[index]
        self._procs[index] = proc
        self._controls[index] = parent_control
        self._handoffs[index] = parent_handoff
        if old_control is not None:
            old_control.close()
        if old_handoff is not None:
            old_handoff.close()
        worker = self._status[index]
        worker.pid = proc.pid
        worker.alive = True
        worker.ready = False
        with self._documents_lock:
            snapshot = dict(self._documents)
        # The snapshot is the worker's first message; it loads it before
        # binding, so a respawned worker never serves an empty catalog.
        self._send_control(parent_control, ("catalog", snapshot))

    def _send_control(self, conn, message) -> None:
        if conn is None:
            return
        with self._control_lock:
            try:
                conn.send(message)
            except (OSError, BrokenPipeError):
                pass  # dead worker; the monitor respawns it

    def _broadcast(self, message, *, skip: int | None = None) -> None:
        for index, conn in enumerate(self._controls):
            if index != skip:
                self._send_control(conn, message)

    def _monitor_loop(self) -> None:
        tick = 0
        last_status_push = 0.0
        while not self._stop.is_set():
            tick += 1
            self._drain_workers()
            self._reap_and_respawn()
            if self.fault_plan is not None and self._fault_tick(tick):
                continue  # let the kill land before the next drain
            now = time.monotonic()
            if now - last_status_push >= 0.25:
                last_status_push = now
                self._push_status()
            self._stop.wait(self._tick)

    def _drain_workers(self) -> None:
        for index, conn in enumerate(self._controls):
            if conn is None:
                continue
            try:
                while conn.poll(0):
                    message = conn.recv()
                    self._handle_worker_message(index, message)
            except (EOFError, OSError):
                continue  # dead worker; the respawn pass handles it

    def _handle_worker_message(self, index: int, message) -> None:
        op = message[0]
        worker = self._status[index]
        if op == "ready":
            worker.ready = True
            worker.pid = message[3]
        elif op == "stats":
            worker.requests_served = message[2].get("requests_served", 0)
        elif op == "publish":
            _, path, text = message
            with self._documents_lock:
                self._documents[path] = text
            self._broadcast(("publish", path, text), skip=index)
        elif op == "unpublish":
            with self._documents_lock:
                self._documents.pop(message[1], None)
            self._broadcast(("unpublish", message[1]), skip=index)

    def _reap_and_respawn(self) -> None:
        for index, proc in enumerate(self._procs):
            if proc is None or proc.is_alive():
                continue
            worker = self._status[index]
            worker.alive = False
            worker.ready = False
            if self._respawn and not self._stop.is_set():
                worker.respawns += 1
                self._spawn(index)

    def _fault_tick(self, tick: int) -> bool:
        if self.fault_plan.decide() != "crash":
            return False
        victims = [
            index
            for index, proc in enumerate(self._procs)
            if proc is not None and proc.is_alive()
        ]
        if not victims:
            return False
        victim = victims[tick % len(victims)]
        self._procs[victim].kill()
        self._procs[victim].join(timeout=2)
        return True

    def _push_status(self) -> None:
        status = self.status().as_dict()
        self._parent_obs(status)
        self._broadcast(("status", status))

    def _parent_obs(self, status: dict) -> None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        if not registry.enabled:
            return
        up = registry.gauge(
            "mp_worker_up",
            "1 when the pool worker is alive, else 0",
            ("worker",),
        )
        respawns = registry.gauge(
            "mp_worker_respawns_total",
            "times the pool has respawned this worker",
            ("worker",),
        )
        requests = registry.gauge(
            "mp_worker_requests_total",
            "requests served by this pool worker",
            ("worker",),
        )
        for worker in status["workers"]:
            label = str(worker["index"])
            up.labels(label).set(1.0 if worker["alive"] else 0.0)
            respawns.labels(label).set(worker["respawns"])
            requests.labels(label).set(worker["requests_served"])

    def _dealer_loop(self) -> None:
        """Handoff mode: deal accepted sockets to live workers round-robin."""
        turn = 0
        while not self._stop.is_set():
            try:
                channel = self._listener.accept(timeout=0.2)
            except TransportError:
                continue
            except Exception:
                return  # listener closed
            for _ in range(self._count):
                index = turn % self._count
                turn += 1
                proc = self._procs[index]
                conn = self._handoffs[index]
                if proc is None or conn is None or not proc.is_alive():
                    continue
                try:
                    send_handle(conn, channel._sock.fileno(), proc.pid)
                    break
                except (OSError, BrokenPipeError):
                    continue  # worker died mid-deal; try the next one
            # Close only the parent's fd copy — a plain close, never a
            # shutdown, which would tear down the worker's connection.
            # An undealt socket (no live worker) resets the client,
            # which retries within the PR-1 budget.
            channel._sock.close()
