"""``ShmChannel``: the intra-host zero-syscall transport (PROTOCOL §15).

A channel end owns two :class:`~repro.mp.ring.RingBuffer` mappings — one
it produces into, one it consumes from — so two co-located endpoints
exchange the exact frames the stream transports carry (NDR data,
format metadata, columnar ``KIND_BATCH``) without a socket, a syscall,
or an intermediate copy:

- :meth:`ShmChannel.send` / :meth:`send_many` write each payload once,
  straight into ring memory;
- :meth:`send_batch` writes its iovec parts (batch prelude, column
  blocks, heap) sequentially into one ring frame — the shm analogue of
  ``sendmsg`` scatter-gather, with no join;
- :meth:`recv_view` returns a **borrowed view of ring memory**, valid
  until the next receive on this channel (§12 ownership rules; debug
  mode revokes stale views, see
  :func:`repro.transport.tcp.set_recv_view_debug`).

Endpoints rendezvous by name: :meth:`ShmChannel.create` returns the
channel plus a picklable :class:`ShmEndpoint` (also a ``shm://`` URI)
that the peer — usually another process — turns into the other end with
:meth:`ShmChannel.attach`.  :meth:`ShmChannel.pair` is the in-process
shortcut for tests and co-located threads.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.errors import ChannelClosedError, TransportError
from repro.mp.ring import DEFAULT_CAPACITY, RingBuffer
from repro.obs.metrics import get_registry
from repro.transport.channel import Channel

_obs_memo = [None]


def _obs():
    """Memoized shm-plane metric handles (same shape as the TCP plane's)."""
    from repro.obs.instr import channel_handles

    registry = get_registry()
    if not registry.enabled:
        return None
    cached = _obs_memo[0]
    if cached is None or cached[0] is not registry:
        cached = (registry, channel_handles(registry, "shm"))
        _obs_memo[0] = cached
    return cached[1]


def _depth_gauge(direction: str):
    registry = get_registry()
    if not registry.enabled:
        return None
    return registry.gauge(
        "shm_ring_depth_bytes",
        "unconsumed bytes in the shm ring, sampled at each operation",
        ("direction",),
    ).labels(direction)


def _stall_counter(role: str):
    registry = get_registry()
    if not registry.enabled:
        return None
    return registry.counter(
        "shm_ring_stalls_total",
        "operations that had to park (not just spin) for the ring peer",
        ("role",),
    ).labels(role)


@dataclass(frozen=True)
class ShmEndpoint:
    """The rendezvous descriptor for one :class:`ShmChannel` pair.

    ``a2b``/``b2a`` name the two shared-memory ring blocks (direction is
    relative to the *creator*, end A).  The descriptor is picklable and
    round-trips through the ``shm://a2b,b2a,capacity`` URI form accepted
    by :func:`repro.transport.connect_channel`.
    """

    a2b: str
    b2a: str
    capacity: int = DEFAULT_CAPACITY

    def uri(self) -> str:
        """This endpoint as a ``shm://`` URI."""
        return f"shm://{self.a2b},{self.b2a},{self.capacity}"

    @classmethod
    def parse(cls, uri: str) -> "ShmEndpoint":
        """Parse a ``shm://a2b,b2a,capacity`` URI."""
        if not uri.startswith("shm://"):
            raise TransportError(f"not an shm:// endpoint: {uri!r}")
        parts = uri[len("shm://"):].split(",")
        if len(parts) != 3 or not parts[2].isdigit():
            raise TransportError(f"malformed shm endpoint {uri!r}")
        return cls(a2b=parts[0], b2a=parts[1], capacity=int(parts[2]))


class ShmChannel(Channel):
    """A :class:`~repro.transport.channel.Channel` over two SPSC rings.

    Thread safety matches :class:`~repro.transport.tcp.TCPChannel`:
    concurrent sends are serialized by a send lock, concurrent receives
    by a receive lock — which also preserves the rings' single-producer/
    single-consumer invariant inside each process.
    """

    def __init__(
        self,
        out_ring: RingBuffer,
        in_ring: RingBuffer,
        *,
        endpoint: ShmEndpoint,
        owner: bool,
    ) -> None:
        self._out = out_ring
        self._in = in_ring
        self.endpoint = endpoint
        self._owner = owner
        self._closed = False
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._debug_view: memoryview | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_CAPACITY) -> tuple["ShmChannel", ShmEndpoint]:
        """Allocate a channel pair's rings; returns (end A, descriptor).

        Hand the descriptor (or its :meth:`~ShmEndpoint.uri`) to the
        peer, which calls :meth:`attach` to become end B.  End A owns
        the shared-memory blocks and unlinks them on :meth:`close`.
        """
        a2b = RingBuffer.create(capacity)
        b2a = RingBuffer.create(capacity)
        endpoint = ShmEndpoint(a2b=a2b.name, b2a=b2a.name, capacity=capacity)
        return cls(a2b, b2a, endpoint=endpoint, owner=True), endpoint

    @classmethod
    def attach(cls, endpoint: "ShmEndpoint | str") -> "ShmChannel":
        """Map a peer-created pair as end B (producer of ``b2a``)."""
        if isinstance(endpoint, str):
            endpoint = ShmEndpoint.parse(endpoint)
        return cls(
            RingBuffer.attach(endpoint.b2a),
            RingBuffer.attach(endpoint.a2b),
            endpoint=endpoint,
            owner=False,
        )

    @classmethod
    def pair(cls, capacity: int = DEFAULT_CAPACITY) -> tuple["ShmChannel", "ShmChannel"]:
        """An in-process connected pair (co-located threads, tests)."""
        end_a, endpoint = cls.create(capacity)
        end_b = cls(
            RingBuffer.attach(endpoint.b2a),
            RingBuffer.attach(endpoint.a2b),
            endpoint=endpoint,
            owner=False,
        )
        return end_a, end_b

    # -- sending ---------------------------------------------------------------

    def _push(self, parts, total: int) -> None:
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        stalls_before = self._out.stats.stalls
        with self._send_lock:
            if self._closed:
                raise ChannelClosedError("cannot send on a closed channel")
            self._out.push(parts)
        if handles is not None:
            handles.send_seconds.observe(time.perf_counter() - started)
            handles.send_frames.inc()
            handles.send_bytes.inc(total)
            stalled = self._out.stats.stalls - stalls_before
            if stalled:
                counter = _stall_counter("producer")
                if counter is not None:
                    counter.inc(stalled)
            gauge = _depth_gauge("send")
            if gauge is not None:
                gauge.set(self._out.depth())

    def send(self, message) -> None:
        self._push((message,), len(message))

    def send_many(self, messages) -> int:
        """Push every message under one lock acquisition; returns the count.

        Each message is still its own ring frame (one ``recv`` each on
        the peer), but the batch shares the lock and the obs bookkeeping
        — the shm analogue of the TCP plane's vectored ``send_many``.
        """
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        count = 0
        total = 0
        with self._send_lock:
            if self._closed:
                raise ChannelClosedError("cannot send on a closed channel")
            for message in messages:
                self._out.push((message,))
                count += 1
                total += len(message)
        if handles is not None and count:
            handles.send_seconds.observe(time.perf_counter() - started)
            handles.send_frames.inc(count)
            handles.send_bytes.inc(total)
        return count

    def send_batch(self, parts) -> int:
        """One frame from an iovec of parts, written part-by-part into
        ring memory — zero joins, zero syscalls.  Returns the length."""
        parts = list(parts)
        total = sum(len(part) for part in parts)
        self._push(parts, total)
        return total

    # -- receiving -------------------------------------------------------------

    def recv(self, timeout: float | None = None) -> bytes:
        return self._recv_outer(timeout, copy=True)

    def recv_view(self, timeout: float | None = None) -> memoryview:
        """Zero-copy receive: a borrowed ``memoryview`` of ring memory.

        Valid only until the next ``recv``/``recv_view`` on this channel
        (which returns the ring space to the producer); ``bytes()`` or
        decode it before receiving again.  With recv-view debugging
        enabled (:func:`repro.transport.tcp.set_recv_view_debug`), the
        next receive *revokes* the view, so stale use raises
        ``ValueError`` instead of silently reading recycled ring bytes.
        """
        return self._recv_outer(timeout, copy=False)

    def _recv_outer(self, timeout: float | None, *, copy: bool):
        from repro.transport.tcp import recv_view_debug_enabled

        if self._closed:
            raise ChannelClosedError("cannot recv on a closed channel")
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        stalls_before = self._in.stats.stalls
        with self._recv_lock:
            debug = recv_view_debug_enabled()
            if debug:
                stale, self._debug_view = self._debug_view, None
                if stale is not None:
                    self._in.invalidate_borrow()
            message = self._in.pop(timeout, copy=copy)
            if debug and not copy:
                self._debug_view = message
        if handles is not None:
            handles.recv_seconds.observe(time.perf_counter() - started)
            handles.recv_frames.inc()
            handles.recv_bytes.inc(len(message))
            stalled = self._in.stats.stalls - stalls_before
            if stalled:
                counter = _stall_counter("consumer")
                if counter is not None:
                    counter.inc(stalled)
            gauge = _depth_gauge("recv")
            if gauge is not None:
                gauge.set(self._in.depth())
        return message

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close this end without poisoning the peer (idempotent).

        The peer drains frames already in the ring, then sees a clean
        :class:`~repro.errors.ChannelClosedError`; its own close is what
        finally detaches its mappings.  The creating end also unlinks
        the blocks — on POSIX existing mappings survive the unlink, so
        even an attacher that closes *later* is safe.
        """
        if self._closed:
            return
        self._closed = True
        self._out.close_producer()
        self._in.close_consumer()
        self._debug_view = None
        self._in.invalidate_borrow()
        self._out.detach()
        self._in.detach()
        if self._owner:
            self._out.unlink()
            self._in.unlink()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Local ring counters for this end (frames/bytes/stalls/wraps)."""
        return {"send": self._out.stats.as_dict(), "recv": self._in.stats.as_dict()}

    def depths(self) -> dict:
        """Unconsumed bytes per direction (racy snapshot)."""
        try:
            return {"send": self._out.depth(), "recv": self._in.depth()}
        except (ValueError, OSError):
            return {"send": 0, "recv": 0}

    @property
    def pid(self) -> int:
        """This end's process id (debugging aid for handoff tests)."""
        return os.getpid()
