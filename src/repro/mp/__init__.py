"""Multi-core serving plane (PROTOCOL §15).

One Python process is one GIL; "fast as the hardware allows" means
escaping it.  This package adds the two halves of the multi-core story:

- :mod:`~repro.mp.ring` / :mod:`~repro.mp.shm` — ``ShmChannel``, a
  :class:`~repro.transport.channel.Channel` over
  ``multiprocessing.shared_memory`` SPSC ring buffers (one ring per
  direction).  Co-located endpoints exchange the exact NDR and columnar
  batch frames of the stream transports with **zero syscalls and zero
  intermediate copies** on the steady path: ``send_batch`` writes its
  iovec parts straight into the ring, ``recv_view`` returns a borrowed
  view of ring memory.
- :mod:`~repro.mp.pool` — ``WorkerPool``, a multi-worker server runner:
  N processes bind the same port via ``SO_REUSEPORT`` (kernel accept
  sharding), with a single-listener accept-handoff fallback where the
  option is unsupported.  Workers share the
  :class:`~repro.metaserver.catalog.MetadataCatalog` through a control
  channel, so a registration on any worker is visible on all, survives
  a worker crash (respawn + catalog re-sync), and is observable through
  per-worker :mod:`repro.obs` series.
"""

from repro.mp.pool import PoolStatus, WorkerPool, WorkerStatus, reuseport_available
from repro.mp.ring import DEFAULT_CAPACITY, RingBuffer, RingStats
from repro.mp.shm import ShmChannel, ShmEndpoint

__all__ = [
    "DEFAULT_CAPACITY",
    "PoolStatus",
    "RingBuffer",
    "RingStats",
    "ShmChannel",
    "ShmEndpoint",
    "WorkerPool",
    "WorkerStatus",
    "reuseport_available",
]
