"""A single-producer/single-consumer ring buffer in shared memory.

This is the intra-host transport primitive of PROTOCOL §15: one
``multiprocessing.shared_memory`` block holds a small control header and
a power-of-two data region; the producer appends length-prefixed frames,
the consumer takes them out, and neither side makes a syscall on the
steady path.

Layout (all integers little-endian, offsets in bytes)::

    0    u64  head      monotonic write cursor — producer-owned
    64   u64  tail      monotonic read cursor  — consumer-owned
    128  u8   producer_closed
    129  u8   consumer_closed
    132  u32  capacity  data-region size (sanity-checked on attach)
    136  u32  magic     0x52494E47 ("RING")
    192  ...  data region (``capacity`` bytes)

``head`` and ``tail`` never wrap; a cursor's position in the data region
is ``cursor % capacity``.  Each lives alone in a 64-byte line so the two
writers never share one.  Publication order is seqlock-style: the
producer writes payload bytes first and the 8-byte aligned ``head``
last, the consumer reads ``head`` first and payload after — on the
strongly-ordered platforms CPython runs shared memory on, an aligned
8-byte store is a single atomic ``memcpy`` and the consumer can never
observe a frame before its bytes.

Frames are ``u32 length`` + payload, padded to 4-byte alignment, and
always **contiguous** in the data region (that is what lets
:meth:`RingBuffer.pop` hand out a borrowed ``memoryview`` with no
reassembly).  When a frame does not fit in the space before the region's
end, the producer writes the wrap marker ``0xFFFFFFFF`` (or, with fewer
than 4 bytes left, nothing at all) and restarts at offset 0; the
consumer skips to the next lap on seeing either.  A frame therefore may
occupy at most half the capacity.

Waiting is futex-free: a short pure spin (cheap when the peer runs on
another core), then ``sleep(0)`` yields, then parked micro-sleeps with a
stall counter — so a saturated ring degrades to polling instead of
burning a core, and a stalled ring is visible in ``/metrics``.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from repro.errors import ChannelClosedError, TransportError, TransportTimeoutError

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

_HEAD_OFF = 0
_TAIL_OFF = 64
_PROD_CLOSED_OFF = 128
_CONS_CLOSED_OFF = 129
_CAPACITY_OFF = 132
_MAGIC_OFF = 136
_MAGIC = 0x52494E47  # "RING"

#: First data byte; the control header occupies three 64-byte lines.
DATA_OFF = 192

#: Default data-region size per direction (1 MiB).
DEFAULT_CAPACITY = 1 << 20

#: Frame length prefix marking "skip to the next lap".
_WRAP = 0xFFFFFFFF

# Wait-strategy knobs: spin, then yield, then park.
_SPINS = 200
_YIELDS = 50
_PARK_SECONDS = 0.0001


@dataclass
class RingStats:
    """Local (per-process) operation counters for one ring end."""

    frames: int = 0
    bytes: int = 0
    stalls: int = 0  # times a push/pop had to park (not spin) for the peer
    wraps: int = 0

    def as_dict(self) -> dict:
        """JSON-ready counters (one direction of ``ShmChannel.stats()``)."""
        return {
            "frames": self.frames,
            "bytes": self.bytes,
            "stalls": self.stalls,
            "wraps": self.wraps,
        }


@dataclass
class _Borrow:
    """Bytes of the data region still on loan to a ``pop(copy=False)`` view."""

    advance: int = 0
    view: memoryview | None = field(default=None, repr=False)


def _align4(n: int) -> int:
    return (n + 3) & ~3


class RingBuffer:
    """One direction of shared-memory frame flow; see the module docstring.

    A process uses a ring as *either* producer or consumer, never both;
    the owning :class:`~repro.mp.shm.ShmChannel` enforces single-caller
    access with its channel locks.  :meth:`create` allocates and
    initializes the block; :meth:`attach` maps an existing one by name.
    """

    def __init__(self, shm: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._shm = shm
        self._buf = shm.buf
        self._owner = owner
        self._detached = False
        self._unlinked = False
        (self.capacity,) = _U32.unpack_from(self._buf, _CAPACITY_OFF)
        (magic,) = _U32.unpack_from(self._buf, _MAGIC_OFF)
        if magic != _MAGIC:
            raise TransportError(
                f"shared memory block {shm.name!r} is not a ring "
                f"(bad magic 0x{magic:08X})"
            )
        self._data = self._buf[DATA_OFF : DATA_OFF + self.capacity]
        #: Largest frame payload this ring can carry (PROTOCOL §15.1).
        self.max_message = self.capacity // 2 - 8
        self.stats = RingStats()
        self._borrow = _Borrow()

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_CAPACITY, name: str | None = None) -> "RingBuffer":
        """Allocate and initialize a fresh ring of ``capacity`` data bytes."""
        if capacity < 4096 or capacity % 4:
            raise TransportError(
                f"ring capacity must be a multiple of 4 and >= 4096, got {capacity}"
            )
        shm = shared_memory.SharedMemory(name=name, create=True, size=DATA_OFF + capacity)
        buf = shm.buf
        buf[:DATA_OFF] = bytes(DATA_OFF)
        _U32.pack_into(buf, _CAPACITY_OFF, capacity)
        _U32.pack_into(buf, _MAGIC_OFF, _MAGIC)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "RingBuffer":
        """Map an existing ring created by a peer process."""
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        """The shared-memory block name (pass to :meth:`attach`)."""
        return self._shm.name

    # -- cursor plumbing -------------------------------------------------------

    def _head(self) -> int:
        return _U64.unpack_from(self._buf, _HEAD_OFF)[0]

    def _tail(self) -> int:
        return _U64.unpack_from(self._buf, _TAIL_OFF)[0]

    def _set_head(self, value: int) -> None:
        _U64.pack_into(self._buf, _HEAD_OFF, value)

    def _set_tail(self, value: int) -> None:
        _U64.pack_into(self._buf, _TAIL_OFF, value)

    @property
    def producer_closed(self) -> bool:
        return bool(self._buf[_PROD_CLOSED_OFF])

    @property
    def consumer_closed(self) -> bool:
        return bool(self._buf[_CONS_CLOSED_OFF])

    def depth(self) -> int:
        """Unconsumed bytes currently in the ring (approximate, racy)."""
        return self._head() - self._tail()

    # -- producer side ---------------------------------------------------------

    def push(self, parts, timeout: float | None = None) -> int:
        """Append one frame whose payload is the concatenation of ``parts``.

        Blocks (spin → yield → park) until the frame fits; the payload
        parts are copied exactly once each, directly into ring memory —
        no join, no framing allocation, no syscall.  Returns the payload
        length.  Raises
        :class:`~repro.errors.ChannelClosedError` if the consumer end
        closed (the frame cannot ever be read) and
        :class:`~repro.errors.TransportTimeoutError` on timeout — the
        ring itself stays consistent either way.
        """
        if self.consumer_closed:
            raise ChannelClosedError("ring consumer closed; frame undeliverable")
        if self.producer_closed:
            raise ChannelClosedError("cannot push on a closed ring")
        length = sum(len(part) for part in parts)
        if length > self.max_message:
            raise TransportError(
                f"message of {length} bytes exceeds the ring's "
                f"{self.max_message}-byte frame limit"
            )
        padded = _align4(4 + length)
        capacity = self.capacity
        head = self._head()
        pos = head % capacity
        room_to_end = capacity - pos
        skip = 0 if padded <= room_to_end else room_to_end
        needed = skip + padded
        if capacity - (head - self._tail()) < needed:
            self._wait_for_space(head, needed, timeout)
        data = self._data
        if skip:
            if room_to_end >= 4:
                _U32.pack_into(data, pos, _WRAP)
            head += skip
            pos = 0
            self.stats.wraps += 1
        _U32.pack_into(data, pos, length)
        cursor = pos + 4
        for part in parts:
            size = len(part)
            if size:
                data[cursor : cursor + size] = part
                cursor += size
        # Publish last: the consumer never sees head move before the
        # frame bytes above are in place.
        self._set_head(head + padded)
        self.stats.frames += 1
        self.stats.bytes += length
        return length

    def _wait_for_space(self, head: int, needed: int, timeout: float | None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        parked = False
        while True:
            if self.consumer_closed:
                raise ChannelClosedError("ring consumer closed; frame undeliverable")
            if self.producer_closed:
                raise ChannelClosedError("cannot push on a closed ring")
            if self.capacity - (head - self._tail()) >= needed:
                return
            spins += 1
            if spins <= _SPINS:
                continue
            if spins <= _SPINS + _YIELDS:
                time.sleep(0)
                continue
            if not parked:
                parked = True
                self.stats.stalls += 1
            if deadline is not None and time.monotonic() >= deadline:
                raise TransportTimeoutError(
                    f"ring full: push timed out after {timeout}s "
                    f"({needed} bytes needed)"
                )
            time.sleep(_PARK_SECONDS)

    def close_producer(self) -> None:
        """Mark the producer end closed (consumer drains, then sees EOF)."""
        self._buf[_PROD_CLOSED_OFF] = 1

    # -- consumer side ---------------------------------------------------------

    def pop(self, timeout: float | None = None, *, copy: bool = True):
        """Take the next frame; ``bytes`` when copying, else a borrowed view.

        With ``copy=False`` the returned ``memoryview`` aliases ring
        memory and its bytes stay valid only until the *next* ``pop`` on
        this ring: consuming the frame is deferred, so the producer
        cannot overwrite it while the view is live, and the next call
        releases the loan (and, in debug mode via the channel layer,
        revokes the view).  Raises
        :class:`~repro.errors.ChannelClosedError` on a drained ring
        whose producer closed, :class:`~repro.errors.TransportTimeoutError`
        on timeout.
        """
        self.release_borrow()
        capacity = self.capacity
        data = self._data
        tail = self._tail()
        consumed = 0
        head = self._wait_for_data(tail, timeout)
        while True:
            pos = tail % capacity
            room_to_end = capacity - pos
            if room_to_end < 4:
                tail += room_to_end
                consumed += room_to_end
                self.stats.wraps += 1
                head = self._wait_for_data(tail, timeout)
                continue
            (length,) = _U32.unpack_from(data, pos)
            if length == _WRAP:
                tail += room_to_end
                consumed += room_to_end
                self.stats.wraps += 1
                head = self._wait_for_data(tail, timeout)
                continue
            break
        padded = _align4(4 + length)
        view = data[pos + 4 : pos + 4 + length]
        self.stats.frames += 1
        self.stats.bytes += length
        if copy:
            message = bytes(view)
            self._set_tail(tail + padded)
            return message
        # Publish any wrap-skip consumption now (it carries no data),
        # but keep ``tail`` parked before the frame itself: the producer
        # sees the bytes as unconsumed and cannot clobber the loan.
        if consumed:
            self._set_tail(tail)
        self._borrow.advance = padded
        self._borrow.view = view
        return view

    def release_borrow(self) -> None:
        """Return the outstanding ``pop(copy=False)`` loan, if any."""
        borrow = self._borrow
        if borrow.advance:
            self._set_tail(self._tail() + borrow.advance)
            borrow.advance = 0
            borrow.view = None

    def invalidate_borrow(self) -> None:
        """Release the loan AND revoke the handed-out view (debug mode)."""
        view = self._borrow.view
        self.release_borrow()
        if view is not None:
            try:
                view.release()
            except ValueError:
                pass  # caller holds sub-views; those we cannot revoke

    def _wait_for_data(self, tail: int, timeout: float | None) -> int:
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        parked = False
        while True:
            head = self._head()
            if head > tail:
                return head
            if self.producer_closed:
                raise ChannelClosedError("ring closed with no pending frames")
            if self.consumer_closed:
                raise ChannelClosedError("cannot pop on a closed ring")
            spins += 1
            if spins <= _SPINS:
                continue
            if spins <= _SPINS + _YIELDS:
                time.sleep(0)
                continue
            if not parked:
                parked = True
                self.stats.stalls += 1
            if deadline is not None and time.monotonic() >= deadline:
                raise TransportTimeoutError(f"ring empty: pop timed out after {timeout}s")
            time.sleep(_PARK_SECONDS)

    def close_consumer(self) -> None:
        """Mark the consumer end closed (producer pushes fail fast)."""
        self._buf[_CONS_CLOSED_OFF] = 1

    # -- lifecycle -------------------------------------------------------------

    def detach(self) -> None:
        """Drop this process's mapping; the block itself survives."""
        if self._detached:
            return
        self._detached = True
        self.invalidate_borrow()
        try:
            self._data.release()
            self._shm.close()
        except BufferError:
            # The caller still holds borrowed views into the mapping;
            # it stays alive until they are garbage-collected.
            pass

    def unlink(self) -> None:
        """Remove the block from the system (owner side, idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        # ``SharedMemory.unlink`` also unregisters from the resource
        # tracker — but an attacher sharing our tracker process (spawned
        # child) already unregistered this name via :func:`_untrack`.
        # Re-register first so the unregister inside ``unlink`` always
        # balances instead of logging a KeyError in the tracker.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from 'cleaning up' an attached block.

    On 3.10–3.12 ``SharedMemory(name=...)`` registers the segment with
    the attaching process's resource tracker, which then unlinks it at
    interpreter exit — under the *owner*, who is still using it
    (bpo-39959).  Attach-side mappings must therefore unregister; the
    creator keeps its registration so crashed owners still get cleaned.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
