"""A streaming pull parser for XML 1.0.

:class:`PullParser` consumes a complete document string and yields
:mod:`~repro.xmlparse.events` in document order.  It enforces
well-formedness (matching tags, single root, unique attribute names, legal
name characters, legal content characters) and resolves the predefined
entities and numeric character references.  A DOCTYPE declaration, if
present, is tolerated and skipped — external and internal DTD subsets are
explicitly out of scope (the paper itself dismisses DTDs as insufficient
for typed metadata and moves to XML Schema).

Line endings are normalized (``\\r\\n`` and ``\\r`` become ``\\n``) before
parsing, as required by the XML specification, so reported line numbers
and attribute values are identical regardless of the producing platform.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import XMLSyntaxError
from repro.xmlparse import chars
from repro.xmlparse.events import (
    CDataEvent,
    CharactersEvent,
    CommentEvent,
    EndElementEvent,
    Event,
    ProcessingInstructionEvent,
    StartElementEvent,
    XMLDeclEvent,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class PullParser:
    """Parse one XML document, yielding events via :meth:`events`.

    The parser is single-use: construct one instance per document.

    Parameters
    ----------
    source:
        The complete document text.  Callers reading from files or
        sockets should decode to ``str`` first (UTF-8 is assumed by all
        repro components).
    """

    def __init__(self, source: str) -> None:
        self._text = source.replace("\r\n", "\n").replace("\r", "\n")
        self._pos = 0
        self._line = 1
        self._column = 1
        self._open_elements: list[str] = []
        self._seen_root = False
        self._exhausted = False

    # -- public API -------------------------------------------------------

    def events(self) -> Iterator[Event]:
        """Yield every event in the document, checking well-formedness.

        Raises :class:`~repro.errors.XMLSyntaxError` on the first
        violation.
        """
        if self._exhausted:
            raise XMLSyntaxError("PullParser instances are single-use")
        self._exhausted = True

        decl = self._parse_xml_decl()
        if decl is not None:
            yield decl
        yield from self._parse_misc()
        self._skip_doctype()
        yield from self._parse_misc()
        if self._at_end():
            self._error("document has no root element")
        yield from self._parse_element()
        yield from self._parse_misc()
        if not self._at_end():
            self._error("content after document root element")

    # -- low-level cursor -------------------------------------------------

    def _at_end(self) -> bool:
        return self._pos >= len(self._text)

    def _peek(self, length: int = 1) -> str:
        return self._text[self._pos : self._pos + length]

    def _advance(self, length: int) -> str:
        """Consume ``length`` characters, maintaining line/column."""
        chunk = self._text[self._pos : self._pos + length]
        newlines = chunk.count("\n")
        if newlines:
            self._line += newlines
            self._column = length - chunk.rfind("\n")
        else:
            self._column += length
        self._pos += length
        return chunk

    def _error(self, message: str) -> None:
        raise XMLSyntaxError(message, self._line, self._column)

    def _expect(self, literal: str) -> None:
        if not self._text.startswith(literal, self._pos):
            self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_whitespace(self, required: bool = False) -> None:
        start = self._pos
        while not self._at_end() and self._text[self._pos] in chars.WHITESPACE:
            self._advance(1)
        if required and self._pos == start:
            self._error("expected whitespace")

    def _scan_until(self, terminator: str, context: str) -> str:
        """Consume and return text up to (not including) ``terminator``."""
        index = self._text.find(terminator, self._pos)
        if index < 0:
            self._error(f"unterminated {context}: missing {terminator!r}")
        return self._advance(index - self._pos)

    def _parse_name(self) -> str:
        if self._at_end() or not chars.is_name_start(self._text[self._pos]):
            self._error("expected an XML name")
        start = self._pos
        end = start + 1
        text = self._text
        while end < len(text) and chars.is_name_char(text[end]):
            end += 1
        return self._advance(end - start)

    # -- prolog -----------------------------------------------------------

    def _parse_xml_decl(self) -> XMLDeclEvent | None:
        if not self._text.startswith("<?xml", self._pos):
            return None
        # Distinguish the declaration from a PI whose target merely starts
        # with "xml" (illegal anyway, but give the right error later).
        after = self._text[self._pos + 5 : self._pos + 6]
        if after and chars.is_name_char(after):
            return None
        line, column = self._line, self._column
        self._advance(5)
        params: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._peek(2) == "?>":
                self._advance(2)
                break
            name = self._parse_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            params[name] = self._parse_quoted()
        version = params.get("version")
        if version is None:
            self._error("XML declaration missing version")
        return XMLDeclEvent(
            line=line,
            column=column,
            version=version,
            encoding=params.get("encoding"),
            standalone=params.get("standalone"),
        )

    def _skip_doctype(self) -> None:
        if not self._text.startswith("<!DOCTYPE", self._pos):
            return
        self._advance(len("<!DOCTYPE"))
        depth = 0
        while not self._at_end():
            ch = self._text[self._pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                self._advance(1)
                return
            self._advance(1)
        self._error("unterminated DOCTYPE declaration")

    def _parse_misc(self) -> Iterator[Event]:
        """Comments, PIs and whitespace outside the root element."""
        while True:
            self._skip_whitespace()
            if self._text.startswith("<!--", self._pos):
                yield self._parse_comment()
            elif self._text.startswith("<?", self._pos):
                yield self._parse_pi()
            else:
                return

    # -- markup -----------------------------------------------------------

    def _parse_comment(self) -> CommentEvent:
        line, column = self._line, self._column
        self._expect("<!--")
        body = self._scan_until("--", "comment")
        self._expect("--")
        if self._peek() != ">":
            self._error("'--' is not allowed inside comments")
        self._advance(1)
        return CommentEvent(line=line, column=column, text=body)

    def _parse_pi(self) -> ProcessingInstructionEvent:
        line, column = self._line, self._column
        self._expect("<?")
        target = self._parse_name()
        if target.lower() == "xml":
            self._error("processing instruction target may not be 'xml'")
        data = ""
        if self._peek() not in ("?",):
            self._skip_whitespace(required=True)
            data = self._scan_until("?>", "processing instruction")
        self._expect("?>")
        return ProcessingInstructionEvent(line=line, column=column, target=target, data=data)

    def _parse_quoted(self) -> str:
        quote = self._peek()
        if quote not in ("'", '"'):
            self._error("expected a quoted value")
        self._advance(1)
        raw = self._scan_until(quote, "quoted value")
        self._advance(1)
        if "<" in raw:
            self._error("'<' is not allowed in attribute values")
        # Attribute-value normalization: whitespace chars become spaces.
        normalized = raw.replace("\t", " ").replace("\n", " ")
        return self._resolve_entities(normalized)

    def _resolve_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        parts: list[str] = []
        index = 0
        while True:
            amp = raw.find("&", index)
            if amp < 0:
                parts.append(raw[index:])
                break
            parts.append(raw[index:amp])
            semi = raw.find(";", amp + 1)
            if semi < 0:
                self._error("unterminated entity reference")
            entity = raw[amp + 1 : semi]
            parts.append(self._expand_entity(entity))
            index = semi + 1
        return "".join(parts)

    def _expand_entity(self, entity: str) -> str:
        if entity in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[entity]
        if entity.startswith("#x") or entity.startswith("#X"):
            body, base = entity[2:], 16
        elif entity.startswith("#"):
            body, base = entity[1:], 10
        else:
            self._error(f"undefined entity &{entity};")
        try:
            code = int(body, base)
            ch = chr(code)
        except (ValueError, OverflowError):
            self._error(f"invalid character reference &{entity};")
        if not chars.is_xml_char(ch):
            self._error(f"character reference &{entity}; is not a legal XML character")
        return ch

    # -- element content ---------------------------------------------------

    def _parse_element(self) -> Iterator[Event]:
        """Parse one element (the root); iterative to handle deep trees."""
        first = self._parse_start_tag()
        yield first
        if first.empty:
            yield EndElementEvent(line=first.line, column=first.column, name=first.name)
            return
        self._open_elements.append(first.name)
        while self._open_elements:
            if self._at_end():
                self._error(f"unexpected end of document inside <{self._open_elements[-1]}>")
            if self._text.startswith("<!--", self._pos):
                yield self._parse_comment()
            elif self._text.startswith("<![CDATA[", self._pos):
                yield self._parse_cdata()
            elif self._text.startswith("</", self._pos):
                yield self._parse_end_tag()
            elif self._text.startswith("<?", self._pos):
                yield self._parse_pi()
            elif self._text.startswith("<!", self._pos):
                self._error("unexpected markup declaration in content")
            elif self._peek() == "<":
                start = self._parse_start_tag()
                yield start
                if start.empty:
                    yield EndElementEvent(
                        line=start.line, column=start.column, name=start.name
                    )
                else:
                    self._open_elements.append(start.name)
            else:
                event = self._parse_characters()
                if event is not None:
                    yield event

    def _parse_start_tag(self) -> StartElementEvent:
        line, column = self._line, self._column
        self._expect("<")
        name = self._parse_name()
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            had_space = self._peek() in chars.WHITESPACE
            self._skip_whitespace()
            if self._peek(2) == "/>":
                self._advance(2)
                return StartElementEvent(
                    line=line, column=column, name=name,
                    attributes=tuple(attributes), empty=True,
                )
            if self._peek() == ">":
                self._advance(1)
                return StartElementEvent(
                    line=line, column=column, name=name,
                    attributes=tuple(attributes), empty=False,
                )
            if not had_space:
                self._error(f"expected whitespace before attribute in <{name}>")
            attr_name = self._parse_name()
            if attr_name in seen:
                self._error(f"duplicate attribute {attr_name!r} in <{name}>")
            seen.add(attr_name)
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            attributes.append((attr_name, self._parse_quoted()))

    def _parse_end_tag(self) -> EndElementEvent:
        line, column = self._line, self._column
        self._expect("</")
        name = self._parse_name()
        self._skip_whitespace()
        self._expect(">")
        if not self._open_elements:
            self._error(f"unmatched end tag </{name}>")
        expected = self._open_elements.pop()
        if name != expected:
            self._error(f"mismatched end tag: expected </{expected}>, found </{name}>")
        return EndElementEvent(line=line, column=column, name=name)

    def _parse_cdata(self) -> CDataEvent:
        line, column = self._line, self._column
        self._expect("<![CDATA[")
        body = self._scan_until("]]>", "CDATA section")
        self._expect("]]>")
        return CDataEvent(line=line, column=column, text=body)

    def _parse_characters(self) -> CharactersEvent | None:
        line, column = self._line, self._column
        index = self._text.find("<", self._pos)
        if index < 0:
            index = len(self._text)
        raw = self._advance(index - self._pos)
        if "]]>" in raw:
            self._error("']]>' is not allowed in character data")
        text = self._resolve_entities(raw)
        for ch in text:
            if not chars.is_xml_char(ch):
                self._error(f"illegal character U+{ord(ch):04X} in content")
        if not text:
            return None
        return CharactersEvent(line=line, column=column, text=text)


def parse_events(source: str) -> list[Event]:
    """Parse ``source`` eagerly and return the full event list."""
    return list(PullParser(source).events())
