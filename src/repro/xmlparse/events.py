"""Event types produced by the pull parser.

The parser yields a flat stream of these events in document order; the
tree builder and any streaming consumer (for instance, a future SAX-style
schema scanner) dispatch on the event class.  Every event carries the
1-based ``line``/``column`` where it started, for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """Base class for all parse events."""

    line: int
    column: int


@dataclass(frozen=True)
class XMLDeclEvent(Event):
    """The ``<?xml version=... ?>`` declaration, if present."""

    version: str = "1.0"
    encoding: str | None = None
    standalone: str | None = None


@dataclass(frozen=True)
class StartElementEvent(Event):
    """An element start tag (or the start half of an empty-element tag).

    ``name`` is the raw qualified name as written (``xsd:element``);
    ``attributes`` preserves document order.  ``empty`` marks
    ``<tag/>`` forms, for which the parser also emits the matching
    :class:`EndElementEvent`.
    """

    name: str = ""
    attributes: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    empty: bool = False


@dataclass(frozen=True)
class EndElementEvent(Event):
    """An element end tag (``</tag>`` or synthesized for ``<tag/>``)."""

    name: str = ""


@dataclass(frozen=True)
class CharactersEvent(Event):
    """A run of character data, with entities already resolved."""

    text: str = ""


@dataclass(frozen=True)
class CDataEvent(Event):
    """A ``<![CDATA[...]]>`` section (text delivered verbatim)."""

    text: str = ""


@dataclass(frozen=True)
class CommentEvent(Event):
    """A ``<!-- ... -->`` comment."""

    text: str = ""


@dataclass(frozen=True)
class ProcessingInstructionEvent(Event):
    """A ``<?target data?>`` processing instruction."""

    target: str = ""
    data: str = ""
