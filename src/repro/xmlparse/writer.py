"""XML serialization: element trees and raw records back to text.

Used by the text-XML wire-format baseline (which must pay the full
binary→ASCII conversion cost the paper measures against), the metadata
server (which serves schema documents), and tests (round-trip checks).
"""

from __future__ import annotations

from io import StringIO
from typing import TextIO

from repro.xmlparse.tree import Element

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for raw, escaped in _TEXT_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    """Escape a value for use inside a double-quoted attribute."""
    for raw, escaped in _ATTR_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def write_element(
    element: Element,
    out: TextIO,
    *,
    indent: str | None = None,
    _depth: int = 0,
) -> None:
    """Serialize ``element`` (and descendants) to ``out``.

    ``indent=None`` produces compact output whose text content
    round-trips exactly; an indent string produces human-readable output
    (suitable only for documents where whitespace is insignificant, such
    as schema documents).
    """
    pad = indent * _depth if indent is not None else ""
    out.write(pad)
    out.write(f"<{element.tag}")
    for name, value in element.attributes.items():
        out.write(f' {name}="{escape_attribute(value)}"')
    if not element.children and not element.text:
        out.write("/>")
        if indent is not None:
            out.write("\n")
        return
    out.write(">")
    if element.text:
        out.write(escape_text(element.text))
    if element.children:
        if indent is not None:
            out.write("\n")
        for child in element.children:
            write_element(child, out, indent=indent, _depth=_depth + 1)
        if indent is not None:
            out.write(pad)
    out.write(f"</{element.tag}>")
    if indent is not None:
        out.write("\n")


def write_document(element: Element, *, indent: str | None = None, declaration: bool = True) -> str:
    """Serialize a whole document rooted at ``element`` to a string."""
    buffer = StringIO()
    if declaration:
        buffer.write('<?xml version="1.0"?>')
        if indent is not None:
            buffer.write("\n")
    write_element(element, buffer, indent=indent)
    return buffer.getvalue()
