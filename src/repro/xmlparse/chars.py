"""Character classes from the XML 1.0 specification.

Only the classification the parser actually needs is implemented: name
start characters, name characters, whitespace, and the set of characters
legal in XML content.  The Unicode ranges follow the Fifth Edition
productions [4], [4a] and [2].
"""

from __future__ import annotations

#: XML whitespace (production [3] S).
WHITESPACE = " \t\r\n"

_NAME_START_RANGES = (
    (ord(":"), ord(":")),
    (ord("A"), ord("Z")),
    (ord("_"), ord("_")),
    (ord("a"), ord("z")),
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
    (0x10000, 0xEFFFF),
)

_NAME_EXTRA_RANGES = (
    (ord("-"), ord("-")),
    (ord("."), ord(".")),
    (ord("0"), ord("9")),
    (0xB7, 0xB7),
    (0x300, 0x36F),
    (0x203F, 0x2040),
)


def _in_ranges(code: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    return any(low <= code <= high for low, high in ranges)


def is_name_start(ch: str) -> bool:
    """True if ``ch`` may start an XML Name (production [4])."""
    return _in_ranges(ord(ch), _NAME_START_RANGES)


def is_name_char(ch: str) -> bool:
    """True if ``ch`` may continue an XML Name (production [4a])."""
    code = ord(ch)
    return _in_ranges(code, _NAME_START_RANGES) or _in_ranges(code, _NAME_EXTRA_RANGES)


def is_xml_char(ch: str) -> bool:
    """True if ``ch`` is legal anywhere in an XML document (production [2])."""
    code = ord(ch)
    return (
        code in (0x9, 0xA, 0xD)
        or 0x20 <= code <= 0xD7FF
        or 0xE000 <= code <= 0xFFFD
        or 0x10000 <= code <= 0x10FFFF
    )


def is_valid_name(name: str) -> bool:
    """True if ``name`` is a legal XML Name."""
    if not name:
        return False
    if not is_name_start(name[0]):
        return False
    return all(is_name_char(ch) for ch in name[1:])
