"""A lightweight element tree over the pull parser.

:class:`Element` is deliberately small: tag, attributes, text, children,
plus the namespace context captured where the element appeared — the last
part being what the XML Schema parser needs to resolve prefix-qualified
``type`` attribute *values* like ``xsd:integer``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XMLError
from repro.xmlparse.events import (
    CDataEvent,
    CharactersEvent,
    EndElementEvent,
    StartElementEvent,
)
from repro.xmlparse.namespaces import NamespaceScope, split_qname
from repro.xmlparse.parser import PullParser


@dataclass
class Element:
    """One element of a parsed document.

    Attributes
    ----------
    tag:
        Raw qualified name as written in the document (``xsd:element``).
    attributes:
        Attribute mapping in document order (raw names).
    children:
        Child elements in document order.
    text:
        Concatenated character data directly inside this element
        (both plain text and CDATA), stripped of nothing.
    namespace:
        Resolved namespace URI of the element itself (or ``None``).
    local:
        Local part of the tag name.
    scope:
        Snapshot of prefix→URI bindings in scope at this element; used to
        resolve qualified names appearing in attribute values.
    line, column:
        Start position in the source document.
    """

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    text: str = ""
    namespace: str | None = None
    local: str = ""
    scope: dict[str | None, str | None] = field(default_factory=dict)
    line: int = 0
    column: int = 0

    # -- attribute access --------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return an attribute value by raw name."""
        return self.attributes.get(name, default)

    def require(self, name: str) -> str:
        """Return an attribute value, raising if absent."""
        try:
            return self.attributes[name]
        except KeyError:
            raise XMLError(
                f"<{self.tag}> at line {self.line} is missing required "
                f"attribute {name!r}"
            ) from None

    def resolve_value_qname(self, value: str) -> tuple[str | None, str]:
        """Resolve a prefix-qualified name found in an attribute value.

        ``type="xsd:integer"`` resolves against the bindings in scope at
        this element.  Unprefixed values resolve to ``(None, value)`` —
        attribute-value names do not pick up the default namespace in the
        schema dialect we accept (matching the paper's examples, which
        leave user types unprefixed).
        """
        prefix, local = split_qname(value)
        if prefix is None:
            return None, local
        if prefix not in self.scope or self.scope[prefix] is None:
            raise XMLError(
                f"prefix {prefix!r} in attribute value {value!r} is not bound "
                f"at line {self.line}"
            )
        return self.scope[prefix], local

    # -- tree navigation ---------------------------------------------------

    def find(self, local: str, namespace: str | None = "*") -> "Element | None":
        """First direct child with local name ``local`` (any namespace by
        default), or ``None``."""
        for child in self.children:
            if child.local == local and namespace in ("*", child.namespace):
                return child
        return None

    def findall(self, local: str, namespace: str | None = "*") -> list["Element"]:
        """All direct children with local name ``local``."""
        return [
            child
            for child in self.children
            if child.local == local and namespace in ("*", child.namespace)
        ]

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __iter__(self) -> Iterator["Element"]:
        return iter(self.children)

    def __len__(self) -> int:
        return len(self.children)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Element {self.tag} at line {self.line} with {len(self.children)} children>"


def parse_document(source: str) -> Element:
    """Parse ``source`` into an element tree and return the root.

    Namespace declarations are processed; each element records its
    resolved namespace and a snapshot of the bindings in scope.
    """
    scope = NamespaceScope()
    root: Element | None = None
    stack: list[Element] = []
    for event in PullParser(source).events():
        if isinstance(event, StartElementEvent):
            scope.push(event.attributes)
            namespace, local = scope.resolve_qname(event.name)
            element = Element(
                tag=event.name,
                attributes=dict(event.attributes),
                namespace=namespace,
                local=local,
                scope=scope.bindings(),
                line=event.line,
                column=event.column,
            )
            # Attribute names with prefixes must resolve too (check only;
            # raw names stay the lookup keys, matching the paper's usage).
            for attr_name in element.attributes:
                if ":" in attr_name and not attr_name.startswith("xmlns"):
                    scope.resolve_qname(attr_name, use_default=False)
            if stack:
                stack[-1].children.append(element)
            elif root is None:
                root = element
            stack.append(element)
        elif isinstance(event, EndElementEvent):
            stack.pop()
            scope.pop()
        elif isinstance(event, (CharactersEvent, CDataEvent)):
            if stack:
                stack[-1].text += event.text
    if root is None:
        raise XMLError("document has no root element")
    return root


def parse_fragment(source: str) -> Element:
    """Parse a fragment that may lack an XML declaration.

    Identical to :func:`parse_document`; provided for call sites that
    semantically handle fragments (e.g. schema snippets in tests).
    """
    return parse_document(source)
