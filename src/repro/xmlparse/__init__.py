"""A from-scratch XML 1.0 processor (substrate S2).

The paper's xml2wire tool sits on top of an XML parser (expat or Xerces in
the original).  This environment provides neither ``lxml`` nor
``xmlschema``, and a faithful reproduction needs to *pay* for parsing at
metadata-registration time anyway, so this package implements the XML
machinery from scratch:

- :mod:`~repro.xmlparse.parser` — a streaming pull parser producing
  :mod:`~repro.xmlparse.events`, with well-formedness checking, the five
  predefined entities, character references, CDATA, comments, processing
  instructions, and DOCTYPE tolerance (skipped, per DESIGN.md non-goals).
- :mod:`~repro.xmlparse.tree` — a light element tree built from the event
  stream, with namespace resolution per the *Namespaces in XML*
  recommendation (the paper's reference [12]).
- :mod:`~repro.xmlparse.writer` — serialization back to text, used by the
  text-XML wire-format baseline and the metadata server.

The parser is intentionally strict about well-formedness: xml2wire's whole
pitch is that metadata becomes *data* that standard tools can check, so
malformed metadata must fail loudly, with line/column diagnostics.
"""

from repro.xmlparse.events import (
    CDataEvent,
    CharactersEvent,
    CommentEvent,
    EndElementEvent,
    ProcessingInstructionEvent,
    StartElementEvent,
    XMLDeclEvent,
)
from repro.xmlparse.parser import PullParser, parse_events
from repro.xmlparse.tree import Element, parse_document, parse_fragment
from repro.xmlparse.writer import escape_attribute, escape_text, write_document, write_element

__all__ = [
    "CDataEvent",
    "CharactersEvent",
    "CommentEvent",
    "EndElementEvent",
    "ProcessingInstructionEvent",
    "StartElementEvent",
    "XMLDeclEvent",
    "PullParser",
    "parse_events",
    "Element",
    "parse_document",
    "parse_fragment",
    "escape_attribute",
    "escape_text",
    "write_document",
    "write_element",
]
