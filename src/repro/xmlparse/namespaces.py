"""Namespace processing per the *Namespaces in XML* recommendation.

xml2wire metadata leans on namespaces: schema documents bind the XML
Schema namespace to a prefix (conventionally ``xsd``) and reference the
primitive datatypes through it, and ``type`` attribute *values* are
themselves prefix-qualified names that must be resolved against the
declarations in scope.  :class:`NamespaceScope` provides exactly that
resolution as a persistent stack of bindings.
"""

from __future__ import annotations

from repro.errors import XMLError

#: Reserved bindings that are always in scope (Namespaces in XML §3).
XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"


def split_qname(qname: str) -> tuple[str | None, str]:
    """Split ``prefix:local`` into ``(prefix, local)``.

    Returns ``(None, qname)`` for unprefixed names.  Raises
    :class:`~repro.errors.XMLError` for names with empty halves or more
    than one colon, which namespaces forbid.
    """
    if ":" not in qname:
        return None, qname
    prefix, _, local = qname.partition(":")
    if not prefix or not local or ":" in local:
        raise XMLError(f"{qname!r} is not a valid qualified name")
    return prefix, local


class NamespaceScope:
    """A stack of namespace bindings tracking element nesting.

    Call :meth:`push` with each element's attributes on entry and
    :meth:`pop` on exit.  :meth:`resolve` maps a prefix (or ``None`` for
    the default namespace) to a URI.
    """

    def __init__(self) -> None:
        self._stack: list[dict[str | None, str | None]] = [
            {"xml": XML_NAMESPACE, "xmlns": XMLNS_NAMESPACE, None: None}
        ]

    def push(self, attributes: tuple[tuple[str, str], ...]) -> None:
        """Enter an element, recording any ``xmlns`` declarations."""
        frame: dict[str | None, str | None] = {}
        for name, value in attributes:
            if name == "xmlns":
                frame[None] = value or None
            elif name.startswith("xmlns:"):
                prefix = name[len("xmlns:"):]
                if not prefix:
                    raise XMLError("empty namespace prefix declaration")
                if prefix in ("xml", "xmlns") and value not in (
                    XML_NAMESPACE,
                    XMLNS_NAMESPACE,
                ):
                    raise XMLError(f"prefix {prefix!r} may not be rebound")
                if not value:
                    raise XMLError(
                        f"prefix {prefix!r} may not be bound to the empty namespace"
                    )
                frame[prefix] = value
        self._stack.append(frame)

    def pop(self) -> None:
        """Leave an element, dropping its declarations."""
        if len(self._stack) <= 1:
            raise XMLError("namespace scope underflow")
        self._stack.pop()

    def resolve(self, prefix: str | None) -> str | None:
        """Return the URI bound to ``prefix``, or raise if unbound.

        ``resolve(None)`` returns the default namespace, which may
        legitimately be ``None`` (no default declared).
        """
        for frame in reversed(self._stack):
            if prefix in frame:
                return frame[prefix]
        if prefix is None:
            return None
        raise XMLError(f"namespace prefix {prefix!r} is not bound")

    def resolve_qname(self, qname: str, *, use_default: bool = True) -> tuple[str | None, str]:
        """Resolve ``prefix:local`` to ``(namespace_uri, local)``.

        ``use_default`` controls whether unprefixed names pick up the
        default namespace — true for element names, false for attribute
        names (which never do, per the recommendation).
        """
        prefix, local = split_qname(qname)
        if prefix is None and not use_default:
            return None, local
        return self.resolve(prefix), local

    def bindings(self) -> dict[str | None, str | None]:
        """A flattened snapshot of every binding currently in scope."""
        merged: dict[str | None, str | None] = {}
        for frame in self._stack:
            merged.update(frame)
        return merged
