"""Weather-stream workload: the NOAA / airport feeds of Figure 1."""

from __future__ import annotations

import random
import struct
from typing import Iterator


def _float32(value: float) -> float:
    """Snap to float32 so values survive 4-byte ``xsd:float`` fields."""
    return struct.unpack("f", struct.pack("f", value))[0]

#: Schema for a surface observation (METAR-like), exercising char
#: buffers, floats, and a dynamic array of cloud-layer altitudes.
WEATHER_SCHEMA = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas/weather">
  <xsd:annotation>
    <xsd:documentation>Surface weather observation</xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="SurfaceObservation">
    <xsd:element name="station" type="xsd:char" minOccurs="4" maxOccurs="4" />
    <xsd:element name="issued" type="xsd:unsigned-long" />
    <xsd:element name="temperature" type="xsd:float" />
    <xsd:element name="dewpoint" type="xsd:float" />
    <xsd:element name="wind_dir" type="xsd:short" />
    <xsd:element name="wind_speed" type="xsd:short" />
    <xsd:element name="gusting" type="xsd:boolean" />
    <xsd:element name="altimeter" type="xsd:double" />
    <xsd:element name="visibility" type="xsd:float" />
    <xsd:element name="cloud_layers" type="xsd:integer" minOccurs="0" maxOccurs="*" />
    <xsd:element name="remarks" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
"""

_STATIONS = ["KATL", "KORD", "KDFW", "KLAX", "KJFK", "KSEA", "KDEN", "KMIA"]
_REMARKS = [
    "AO2 SLP123",
    "AO2 PK WND 28032/15 SLP134",
    "RAB05 E18 SLP092",
    "",
    "TWR VIS 2 1/2 FG BANK W",
]


class WeatherWorkload:
    """Seeded generator of surface observations."""

    schema = WEATHER_SCHEMA
    format_name = "SurfaceObservation"

    def __init__(self, seed: int = 7) -> None:
        self._rng = random.Random(seed)
        self._clock = 946684800

    def record(self) -> dict:
        """One surface observation (timestamps increase monotonically)."""
        rng = self._rng
        self._clock += rng.randrange(60, 3600)
        layer_count = rng.randrange(0, 4)
        return {
            "station": rng.choice(_STATIONS),
            "issued": self._clock,
            "temperature": _float32(round(rng.uniform(-20.0, 40.0), 1)),
            "dewpoint": _float32(round(rng.uniform(-25.0, 25.0), 1)),
            "wind_dir": rng.randrange(0, 360),
            "wind_speed": rng.randrange(0, 45),
            "gusting": rng.random() < 0.2,
            "altimeter": round(rng.uniform(28.5, 31.0), 2),
            "visibility": _float32(round(rng.uniform(0.25, 10.0), 2)),
            "cloud_layers": [rng.randrange(5, 250) * 100 for _ in range(layer_count)],
            "cloud_layers_count": layer_count,
            "remarks": rng.choice(_REMARKS),
        }

    def stream(self, count: int) -> Iterator[dict]:
        """``count`` observations."""
        return (self.record() for _ in range(count))

    def batch(self, count: int) -> list[dict]:
        """``count`` observations as a list, ready for ``send_batch``."""
        return [self.record() for _ in range(count)]
