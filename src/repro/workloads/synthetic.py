"""Synthetic formats of parameterized size, for scaling sweeps.

Two knobs matter to the paper's experiments:

- **field count** drives metadata cost (registration time "grows
  proportionally to the structure size", §5) — :func:`make_synthetic_schema`
  produces a complex type with ``n`` fields of a chosen type mix;
- **payload size** drives per-message cost (the NDR/XDR/XML comparisons)
  — :class:`SyntheticWorkload` generates records whose dynamic array is
  sized to approximate a requested encoded payload.
"""

from __future__ import annotations

import random
import struct

#: Rotating field type mixes; "mixed" approximates the paper's
#: structures (strings + integers + floats + arrays).
_TYPE_CYCLES = {
    "mixed": ["xsd:integer", "xsd:double", "xsd:string", "xsd:float",
              "xsd:unsigned-long", "xsd:short"],
    "numeric": ["xsd:integer", "xsd:double", "xsd:float", "xsd:unsigned-int"],
    "strings": ["xsd:string"],
    "integers": ["xsd:integer"],
}


def make_synthetic_schema(
    field_count: int,
    *,
    mix: str = "mixed",
    type_name: str = "Synthetic",
    array_field: bool = False,
) -> str:
    """Build a schema document with ``field_count`` fields.

    ``array_field=True`` appends one dynamic double array named ``data``
    (sized by a synthesized count field), used by the payload-size
    sweeps.
    """
    if field_count < 1:
        raise ValueError("field_count must be at least 1")
    cycle = _TYPE_CYCLES[mix]
    lines = [
        '<?xml version="1.0"?>',
        '<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"',
        '    targetNamespace="http://www.cc.gatech.edu/pmw/schemas/synthetic">',
        f'  <xsd:complexType name="{type_name}">',
    ]
    for index in range(field_count):
        xsd_type = cycle[index % len(cycle)]
        lines.append(
            f'    <xsd:element name="f{index}" type="{xsd_type}" />'
        )
    if array_field:
        lines.append(
            '    <xsd:element name="data" type="xsd:double" '
            'minOccurs="0" maxOccurs="*" />'
        )
    lines.append("  </xsd:complexType>")
    lines.append("</xsd:schema>")
    return "\n".join(lines) + "\n"


class SyntheticWorkload:
    """Seeded record generator matching :func:`make_synthetic_schema`."""

    def __init__(
        self,
        field_count: int,
        *,
        mix: str = "mixed",
        array_field: bool = False,
        seed: int = 99,
    ) -> None:
        self.field_count = field_count
        self.mix = mix
        self.array_field = array_field
        self.schema = make_synthetic_schema(
            field_count, mix=mix, array_field=array_field
        )
        self.format_name = "Synthetic"
        self._rng = random.Random(seed)
        self._cycle = _TYPE_CYCLES[mix]

    def record(self, array_elements: int = 0) -> dict:
        """One record; ``array_elements`` sizes the dynamic array."""
        rng = self._rng
        record: dict = {}
        for index in range(self.field_count):
            xsd_type = self._cycle[index % len(self._cycle)]
            name = f"f{index}"
            if xsd_type == "xsd:string":
                record[name] = "".join(
                    rng.choice("abcdefghijklmnop") for _ in range(rng.randrange(3, 12))
                )
            elif xsd_type == "xsd:float":
                # Snap to float32 so the value survives a 4-byte field.
                raw = rng.uniform(-1000, 1000)
                record[name] = struct.unpack("f", struct.pack("f", raw))[0]
            elif xsd_type == "xsd:double":
                record[name] = round(rng.uniform(-1000, 1000), 3)
            elif xsd_type == "xsd:short":
                record[name] = rng.randrange(-30000, 30000)
            elif xsd_type in ("xsd:unsigned-long", "xsd:unsigned-int"):
                record[name] = rng.randrange(0, 2**31)
            else:
                record[name] = rng.randrange(-(2**31), 2**31)
        if self.array_field:
            record["data"] = [rng.uniform(0, 1) for _ in range(array_elements)]
            record["data_count"] = array_elements
        return record

    def record_of_payload(self, payload_bytes: int) -> dict:
        """A record whose dynamic array pads the payload to roughly
        ``payload_bytes`` (requires ``array_field=True``)."""
        if not self.array_field:
            raise ValueError("payload sizing needs array_field=True")
        elements = max(0, payload_bytes // 8)
        return self.record(array_elements=elements)
