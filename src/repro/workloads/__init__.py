"""Workload generators (substrate S10).

Deterministic (seeded) generators for the data the paper's scenario and
evaluation talk about:

- :mod:`~repro.workloads.airline` — the airline operational information
  system: the Appendix A ASDOff structures (Table 1's three rows) plus
  realistic record streams;
- :mod:`~repro.workloads.weather` — weather feeds (the NOAA/airport
  streams of Figure 1);
- :mod:`~repro.workloads.mining` — corporate data-mining result events;
- :mod:`~repro.workloads.synthetic` — parameterized formats (field
  count, type mix, payload size) for scaling sweeps.

Every generator produces both the *schema document* (so formats go
through xml2wire, as deployed systems would) and a *record stream*
(seeded, so benchmark runs are reproducible).
"""

from repro.workloads.airline import (
    ASDOFF_A_SCHEMA,
    ASDOFF_B_SCHEMA,
    ASDOFF_CD_SCHEMA,
    AirlineWorkload,
)
from repro.workloads.mining import MiningWorkload
from repro.workloads.sink import BatchingSink
from repro.workloads.synthetic import SyntheticWorkload, make_synthetic_schema
from repro.workloads.weather import WeatherWorkload

__all__ = [
    "ASDOFF_A_SCHEMA",
    "ASDOFF_B_SCHEMA",
    "ASDOFF_CD_SCHEMA",
    "AirlineWorkload",
    "BatchingSink",
    "MiningWorkload",
    "SyntheticWorkload",
    "make_synthetic_schema",
    "WeatherWorkload",
]
