"""Data-mining workload: the "trends or patterns of interest" streams.

Figure 1 includes capture points "produced by data mining processes that
periodically examine corporate data stores".  This workload models
association-rule discoveries over booking data: an antecedent/consequent
item pair with support/confidence scores and a variable-length list of
supporting-transaction ids — mixing strings, doubles and a dynamic array
the way analytic events tend to.
"""

from __future__ import annotations

import random
from typing import Iterator

MINING_SCHEMA = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas/mining">
  <xsd:annotation>
    <xsd:documentation>Association-rule discovery event</xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="RuleDiscovery">
    <xsd:element name="rule_id" type="xsd:unsigned-int" />
    <xsd:element name="antecedent" type="xsd:string" />
    <xsd:element name="consequent" type="xsd:string" />
    <xsd:element name="support" type="xsd:double" />
    <xsd:element name="confidence" type="xsd:double" />
    <xsd:element name="lift" type="xsd:double" />
    <xsd:element name="window_start" type="xsd:unsigned-long" />
    <xsd:element name="window_end" type="xsd:unsigned-long" />
    <xsd:element name="sample_txns" type="xsd:unsigned-int" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
"""

_ITEMS = [
    "upgrade:first", "meal:vegetarian", "seat:exit-row", "origin:ATL",
    "fare:refundable", "loyalty:gold", "booking:same-day", "dest:international",
    "payment:corporate", "leg:redeye",
]


class MiningWorkload:
    """Seeded generator of rule-discovery events."""

    schema = MINING_SCHEMA
    format_name = "RuleDiscovery"

    def __init__(self, seed: int = 13) -> None:
        self._rng = random.Random(seed)
        self._next_id = 1

    def record(self, sample_count: int | None = None) -> dict:
        """One rule-discovery event (ids increment from 1)."""
        rng = self._rng
        if sample_count is None:
            sample_count = rng.randrange(0, 16)
        window_start = rng.randrange(946684800, 978307200)
        antecedent, consequent = rng.sample(_ITEMS, 2)
        rule_id = self._next_id
        self._next_id += 1
        support = rng.uniform(0.01, 0.3)
        return {
            "rule_id": rule_id,
            "antecedent": antecedent,
            "consequent": consequent,
            "support": support,
            "confidence": min(1.0, support * rng.uniform(2.0, 8.0)),
            "lift": rng.uniform(0.8, 4.0),
            "window_start": window_start,
            "window_end": window_start + 86400,
            "sample_txns": [rng.randrange(1, 2**31) for _ in range(sample_count)],
            "sample_txns_count": sample_count,
        }

    def stream(self, count: int) -> Iterator[dict]:
        """``count`` events."""
        return (self.record() for _ in range(count))

    def batch(self, count: int) -> list[dict]:
        """``count`` events as a list, ready for ``send_batch``."""
        return [self.record() for _ in range(count)]
