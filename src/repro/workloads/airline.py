"""Airline OIS workloads: the paper's Appendix A structures and streams.

``ASDOFF_A_SCHEMA`` / ``ASDOFF_B_SCHEMA`` / ``ASDOFF_CD_SCHEMA`` are the
paper's Figures 6, 9 and 12 — the metadata whose registration Table 1
times.  :class:`AirlineWorkload` generates seeded record streams shaped
like FAA ASD (Aircraft Situation Display) departure events: IATA
airlines, real airport codes, plausible flight numbers and timestamps.
"""

from __future__ import annotations

import random
from typing import Iterator

_SCHEMA_HEAD = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>ASDOff</xsd:documentation>
  </xsd:annotation>
"""

#: Figure 6 — Structure A: no arrays, no nesting (32 B on ILP32).
ASDOFF_A_SCHEMA = _SCHEMA_HEAD + """  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" />
    <xsd:element name="eta" type="xsd:unsigned-long" />
  </xsd:complexType>
</xsd:schema>
"""

#: Figure 9 — Structure B: static + dynamic arrays (52 B on ILP32).
ASDOFF_B_SCHEMA = _SCHEMA_HEAD + """  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
"""

#: Figure 12 — Structures C and D: composition by nesting (Table 1's
#: 180 B row).
ASDOFF_CD_SCHEMA = _SCHEMA_HEAD + """  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="1" maxOccurs="*" />
  </xsd:complexType>
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEvent" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEvent" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEvent" />
  </xsd:complexType>
</xsd:schema>
"""

_AIRLINES = ["DL", "UA", "AA", "WN", "AF", "BA", "LH", "NW", "CO", "US"]
_AIRPORTS = [
    "ATL", "ORD", "DFW", "LAX", "JFK", "SFO", "DEN", "SEA", "MIA", "BOS",
    "IAH", "MSP", "DTW", "PHL", "LGA", "CLT", "PHX", "EWR", "SLC", "MCO",
]
_EQUIPMENT = ["B727", "B737", "B757", "B767", "B777", "MD80", "MD11", "A320", "DC9", "L101"]
_CENTERS = ["ZTL", "ZNY", "ZAU", "ZFW", "ZLA", "ZOB", "ZDC", "ZMA", "ZSE", "ZDV"]


class AirlineWorkload:
    """Seeded generator of ASDOff records for all three structures."""

    def __init__(self, seed: int = 42) -> None:
        self._rng = random.Random(seed)

    def record_a(self) -> dict:
        """One Structure A record (scalars only)."""
        rng = self._rng
        off_time = rng.randrange(946684800, 978307200)  # within year 2000
        return {
            "cntrID": rng.choice(_CENTERS),
            "arln": rng.choice(_AIRLINES),
            "fltNum": rng.randrange(1, 9999),
            "equip": rng.choice(_EQUIPMENT),
            "org": rng.choice(_AIRPORTS),
            "dest": rng.choice(_AIRPORTS),
            "off": off_time,
            "eta": off_time + rng.randrange(1800, 21600),
        }

    def record_b(self, eta_count: int = 3) -> dict:
        """One Structure B record (static + dynamic arrays)."""
        base = self.record_a()
        off_time = base.pop("off")
        base.pop("eta")
        base["off"] = [off_time + i * 60 for i in range(5)]
        base["eta"] = [off_time + 3600 + i * 300 for i in range(eta_count)]
        base["eta_count"] = eta_count
        return base

    def record_cd(self, eta_count: int = 3) -> dict:
        """One Structure C/D record (three nested Structure Bs)."""
        rng = self._rng
        return {
            "one": self.record_b(eta_count),
            "bart": rng.uniform(0.0, 1.0),
            "two": self.record_b(eta_count),
            "lisa": rng.uniform(0.0, 1.0),
            "three": self.record_b(eta_count),
        }

    def stream_a(self, count: int) -> Iterator[dict]:
        """``count`` Structure A records."""
        return (self.record_a() for _ in range(count))

    def stream_b(self, count: int, eta_count: int = 3) -> Iterator[dict]:
        """``count`` Structure B records."""
        return (self.record_b(eta_count) for _ in range(count))

    def stream_cd(self, count: int, eta_count: int = 3) -> Iterator[dict]:
        """``count`` Structure C/D records."""
        return (self.record_cd(eta_count) for _ in range(count))

    def batch_a(self, count: int) -> list[dict]:
        """``count`` Structure A records as a list, for ``send_batch``."""
        return [self.record_a() for _ in range(count)]

    def batch_b(self, count: int, eta_count: int = 3) -> list[dict]:
        """``count`` Structure B records as a list, for ``send_batch``."""
        return [self.record_b(eta_count) for _ in range(count)]
