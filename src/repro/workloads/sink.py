"""Batch-aware sink: accumulate records, flush columnar batches.

Capture points in Figure 1 produce records one at a time (an observation
lands, a rule fires); the columnar bulk path wants them in batches.
:class:`BatchingSink` bridges the two — feed it records and it flushes a
columnar batch to its target every ``batch_size`` records (and on
close), so per-record producers get bulk-stream wire efficiency without
restructuring.

The target is duck-typed: anything with ``send_batch(fmt, records)``
(a :class:`~repro.transport.connection.RecordConnection`) or
``publish_batch(fmt, records)`` (a :class:`~repro.events.Publisher`,
:class:`~repro.events.remote.RemotePublisher`) works.
"""

from __future__ import annotations

from repro.errors import EncodeError


class BatchingSink:
    """Accumulates records for one format and flushes columnar batches.

    Usage::

        with BatchingSink(connection, fmt, batch_size=64) as sink:
            for record in workload.stream(10_000):
                sink.add(record)
        # close() flushed the final partial batch

    Counters: ``records_in`` (records accepted), ``batches_out``
    (batches flushed), ``records_out`` (records flushed).
    """

    def __init__(self, target, fmt, *, batch_size: int = 64) -> None:
        if batch_size < 1:
            raise EncodeError("batch_size must be at least 1")
        flush = getattr(target, "send_batch", None)
        if flush is None:
            flush = getattr(target, "publish_batch", None)
        if flush is None:
            raise EncodeError(
                f"sink target {type(target).__name__} has neither "
                f"send_batch nor publish_batch"
            )
        self._flush = flush
        self.target = target
        self.fmt = fmt
        self.batch_size = batch_size
        self._buffer: list[dict] = []
        self.records_in = 0
        self.batches_out = 0
        self.records_out = 0

    def add(self, record: dict) -> bool:
        """Accept one record; returns True if a batch was flushed."""
        self._buffer.append(record)
        self.records_in += 1
        if len(self._buffer) >= self.batch_size:
            self.flush()
            return True
        return False

    def extend(self, records) -> int:
        """Accept many records; returns the number of batches flushed."""
        flushed = 0
        for record in records:
            if self.add(record):
                flushed += 1
        return flushed

    def flush(self) -> int:
        """Flush the buffered records (if any) as one columnar batch."""
        if not self._buffer:
            return 0
        batch = self._buffer
        self._buffer = []
        self._flush(self.fmt, batch)
        self.batches_out += 1
        count = len(batch)
        self.records_out += count
        return count

    @property
    def pending(self) -> int:
        """Records buffered but not yet flushed."""
        return len(self._buffer)

    def close(self) -> None:
        """Flush the final partial batch (the target stays open)."""
        self.flush()

    def __enter__(self) -> "BatchingSink":
        return self

    def __exit__(self, *exc_info) -> None:
        if exc_info[0] is None:
            self.close()
