"""Message transports (substrate S6).

The paper insists that xml2wire/PBIO "does not predicate the use of
specific data delivery mechanisms" — TCP/IP, multicast middleware, or
cluster interconnects all work.  This package provides the
:class:`~repro.transport.channel.Channel` abstraction and two concrete
transports:

- :mod:`~repro.transport.inproc` — an in-process pipe (thread-safe,
  optionally shaped by a :class:`~repro.transport.netsim.NetworkModel`
  that simulates latency/bandwidth, either in real time or as virtual
  accounting for deterministic benchmarks);
- :mod:`~repro.transport.tcp` — real sockets over loopback or LAN, with
  the shared length-prefixed framing.

:mod:`~repro.transport.connection` layers the PBIO message protocol on
any channel: data messages, eager format-metadata push on first use, and
pull-based format requests for late joiners.
"""

from repro.transport.channel import Channel
from repro.transport.connection import RecordConnection
from repro.transport.inproc import InprocChannel, make_pipe
from repro.transport.netsim import NetworkModel, NetworkStats
from repro.transport.tcp import (
    ReconnectingTCPChannel,
    TCPChannel,
    TCPListener,
    connect,
    listen,
)

__all__ = [
    "Channel",
    "RecordConnection",
    "InprocChannel",
    "make_pipe",
    "NetworkModel",
    "NetworkStats",
    "ReconnectingTCPChannel",
    "TCPChannel",
    "TCPListener",
    "connect",
    "listen",
]
