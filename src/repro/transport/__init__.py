"""Message transports (substrate S6).

The paper insists that xml2wire/PBIO "does not predicate the use of
specific data delivery mechanisms" — TCP/IP, multicast middleware, or
cluster interconnects all work.  This package provides the
:class:`~repro.transport.channel.Channel` abstraction and two concrete
transports:

- :mod:`~repro.transport.inproc` — an in-process pipe (thread-safe,
  optionally shaped by a :class:`~repro.transport.netsim.NetworkModel`
  that simulates latency/bandwidth, either in real time or as virtual
  accounting for deterministic benchmarks);
- :mod:`~repro.transport.tcp` — real sockets over loopback or LAN, with
  the shared length-prefixed framing.

A third transport lives in :mod:`repro.mp`:
:class:`~repro.mp.shm.ShmChannel`, shared-memory ring buffers for
co-located processes (zero syscalls, zero copies; PROTOCOL §15).
:func:`connect_channel` selects a transport by endpoint URI —
``tcp://host:port`` or ``shm://a2b,b2a,capacity`` — so deployment
configuration, not code, decides whether two endpoints talk over a
socket or over memory.

:mod:`~repro.transport.connection` layers the PBIO message protocol on
any channel: data messages, eager format-metadata push on first use, and
pull-based format requests for late joiners.
"""

from repro.errors import TransportError
from repro.transport.channel import Channel
from repro.transport.connection import RecordConnection
from repro.transport.inproc import InprocChannel, make_pipe
from repro.transport.netsim import NetworkModel, NetworkStats
from repro.transport.tcp import (
    ReconnectingTCPChannel,
    TCPChannel,
    TCPListener,
    connect,
    listen,
    recv_view_debug_enabled,
    set_recv_view_debug,
)


def connect_channel(endpoint: str) -> Channel:
    """Open a :class:`Channel` to ``endpoint``, selecting the transport
    by URI scheme: ``tcp://host:port`` dials a socket,
    ``shm://a2b,b2a,capacity`` attaches the peer end of a shared-memory
    ring pair (the :mod:`repro.mp` import is deferred so TCP-only
    deployments never pay for it).
    """
    if endpoint.startswith("tcp://"):
        rest = endpoint[len("tcp://"):]
        host, _, port_text = rest.rpartition(":")
        if not host or not port_text.isdigit():
            raise TransportError(f"malformed tcp endpoint {endpoint!r}")
        return connect(host, int(port_text))
    if endpoint.startswith("shm://"):
        from repro.mp.shm import ShmChannel

        return ShmChannel.attach(endpoint)
    raise TransportError(
        f"unknown endpoint scheme {endpoint!r}; expected tcp:// or shm://"
    )


__all__ = [
    "Channel",
    "RecordConnection",
    "InprocChannel",
    "make_pipe",
    "NetworkModel",
    "NetworkStats",
    "ReconnectingTCPChannel",
    "TCPChannel",
    "TCPListener",
    "connect",
    "connect_channel",
    "listen",
    "recv_view_debug_enabled",
    "set_recv_view_debug",
]
