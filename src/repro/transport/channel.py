"""The message-oriented channel abstraction all transports implement."""

from __future__ import annotations

import abc


class Channel(abc.ABC):
    """A bidirectional, message-preserving communication endpoint.

    Unlike a raw byte stream, a channel delivers whole messages: one
    ``send`` on one end is one ``recv`` on the other.  Stream transports
    achieve this with the shared framing layer.
    """

    @abc.abstractmethod
    def send(self, message: bytes) -> None:
        """Deliver ``message`` to the peer.

        Raises :class:`~repro.errors.ChannelClosedError` if either end
        is closed.
        """

    @abc.abstractmethod
    def recv(self, timeout: float | None = None) -> bytes:
        """Block until a message arrives and return it.

        Raises :class:`~repro.errors.ChannelClosedError` on clean EOF
        with no pending messages, and
        :class:`~repro.errors.TransportError` on timeout.
        """

    def send_many(self, messages) -> int:
        """Deliver every message in ``messages``; returns the count.

        The base implementation loops :meth:`send`.  Transports that can
        batch (scatter-gather sockets) override this to put N frames on
        the wire in one syscall.
        """
        count = 0
        for message in messages:
            self.send(message)
            count += 1
        return count

    def send_batch(self, parts) -> int:
        """Deliver ONE message supplied as an iovec of buffer parts.

        The peer's ``recv`` sees a single message equal to the
        concatenation of ``parts`` — this is how columnar batch frames
        (header, column blocks, heap) are sent.  The base implementation
        joins and :meth:`send`\\ s; scatter-gather transports override it
        to put the parts on the wire without the join copy.  Returns the
        message's byte length.
        """
        message = b"".join(parts)
        self.send(message)
        return len(message)

    def recv_view(self, timeout: float | None = None):
        """Receive one message as a buffer (``bytes`` or ``memoryview``).

        Zero-copy transports override this to return a ``memoryview``
        into their receive buffer, valid only until the next receive on
        the same channel (PROTOCOL §12).  The base implementation simply
        returns :meth:`recv`'s owned bytes.
        """
        return self.recv(timeout)

    @abc.abstractmethod
    def close(self) -> None:
        """Close this end; idempotent."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        """True once :meth:`close` has been called on this end."""

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
