"""An in-process, thread-safe channel pair.

:func:`make_pipe` returns two connected :class:`InprocChannel` ends.
Messages are copied between per-end queues under a condition variable, so
producer and consumer may be different threads (the event backbone runs
its broker loop on one).  An optional :class:`~repro.transport.netsim.
NetworkModel` shapes each direction.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ChannelClosedError, TransportError
from repro.transport.channel import Channel
from repro.transport.netsim import NetworkModel


class InprocChannel(Channel):
    """One end of an in-process pipe; construct via :func:`make_pipe`."""

    def __init__(self, model: NetworkModel | None = None) -> None:
        self._inbox: deque[bytes] = deque()
        self._condition = threading.Condition()
        self._closed = False
        self._peer: InprocChannel | None = None
        self.model = model

    def _bind(self, peer: "InprocChannel") -> None:
        self._peer = peer

    # -- Channel API ---------------------------------------------------------

    def send(self, message: bytes) -> None:
        peer = self._peer
        if peer is None:
            raise TransportError("channel is not connected")
        if self._closed:
            raise ChannelClosedError("cannot send on a closed channel")
        if self.model is not None:
            self.model.transmit(len(message))
        with peer._condition:
            if peer._closed:
                raise ChannelClosedError("peer end is closed")
            peer._inbox.append(bytes(message))
            peer._condition.notify()

    def recv(self, timeout: float | None = None) -> bytes:
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._inbox or self._closed or self._peer_closed(),
                timeout=timeout,
            ):
                raise TransportError(f"recv timed out after {timeout}s")
            if self._inbox:
                return self._inbox.popleft()
            raise ChannelClosedError("channel closed with no pending messages")

    def _peer_closed(self) -> bool:
        return self._peer is not None and self._peer._closed

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        peer = self._peer
        if peer is not None:
            with peer._condition:
                peer._condition.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Messages queued but not yet received (introspection/tests)."""
        with self._condition:
            return len(self._inbox)


def make_pipe(
    model: NetworkModel | None = None,
    *,
    reverse_model: NetworkModel | None = None,
) -> tuple[InprocChannel, InprocChannel]:
    """Create a connected channel pair ``(a, b)``.

    ``model`` shapes the a→b direction; ``reverse_model`` (defaulting to
    ``model``) shapes b→a.  Pass ``None`` for an unshaped pipe.
    """
    a = InprocChannel(model)
    b = InprocChannel(reverse_model if reverse_model is not None else model)
    a._bind(b)
    b._bind(a)
    return a, b
