"""RecordConnection: the PBIO message protocol over any channel.

Pairs an :class:`~repro.pbio.IOContext` with a
:class:`~repro.transport.channel.Channel` and implements the metadata
exchange the paper describes:

- **eager push** — the first data message of each format on a connection
  is preceded by a format-metadata message, so a steady-state connection
  carries only 16-byte headers of per-format cost;
- **pull on miss** — a receiver that sees an unknown format id (say, it
  joined late on a multicast-style fan-out where the push was missed)
  sends a format request; the peer answers with the metadata.  The data
  message is parked meanwhile and decoded once the metadata lands.

Counters expose exactly what the amortization experiment (C4) needs:
how many bytes went to metadata versus data.
"""

from __future__ import annotations

from collections import deque

from repro.errors import DecodeError, TransportError
from repro.obs.propagate import extract, inject
from repro.obs.trace import TraceContext
from repro.pbio.context import (
    HEADER_SIZE,
    KIND_BATCH,
    KIND_DATA,
    KIND_FORMAT,
    KIND_REQUEST,
    DecodedRecord,
    IOContext,
)
from repro.pbio.format import IOFormat
from repro.transport.channel import Channel


class RecordConnection:
    """Typed record exchange between two endpoints."""

    def __init__(self, context: IOContext, channel: Channel) -> None:
        self.context = context
        self.channel = channel
        self._announced: set[bytes] = set()
        # Parked data messages await their format metadata; each rides
        # with the trace context (if any) it arrived with.
        self._parked: deque[tuple[bytes, TraceContext | None]] = deque()
        # Records already decoded from a delivered batch message, handed
        # out one per recv() call in batch order.
        self._ready: deque[DecodedRecord] = deque()
        # Traffic accounting (bytes on the wire, split by purpose).
        self.data_bytes = 0
        self.metadata_bytes = 0
        self.data_messages = 0
        self.metadata_messages = 0
        self.batch_messages = 0  # columnar batch messages sent
        self.batch_records = 0  # records carried by sent batches
        self.batches_received = 0
        #: Trace context piggybacked on the last data message received
        #: (None when the sender did not propagate one).
        self.last_trace: TraceContext | None = None

    # -- sending -----------------------------------------------------------

    def send(self, fmt: IOFormat | str, record: dict) -> None:
        """Send one record, pushing format metadata first if needed."""
        if isinstance(fmt, str):
            fmt = self.context.lookup_format(fmt)
        self.announce(fmt)
        # Trace injection happens here, after encode: NDR bytes are
        # never perturbed, only the wire message grows a trailing block
        # (PROTOCOL §11) when the feature flag is on.
        message = inject(self.context.encode(fmt, record))
        self.channel.send(message)
        self.data_bytes += len(message)
        self.data_messages += 1

    def send_batch(self, fmt: IOFormat | str, records, *, use_numpy=None) -> int:
        """Send ``records`` as one columnar batch message; returns the count.

        Metadata is pushed first like :meth:`send`.  The batch frame is
        handed to the channel as an iovec
        (:meth:`~repro.transport.channel.Channel.send_batch`), so
        scatter-gather transports never concatenate the column blocks.
        Batch messages carry no trace piggyback (PROTOCOL §11 tags data
        messages only), so their wire bytes are tracing-invariant.
        """
        if isinstance(fmt, str):
            fmt = self.context.lookup_format(fmt)
        self.announce(fmt)
        parts = self.context.encode_batch_iov(fmt, records, use_numpy=use_numpy)
        sent = self.channel.send_batch(parts)
        self.data_bytes += sent
        self.batch_messages += 1
        count = len(records)
        self.batch_records += count
        return count

    def announce(self, fmt: IOFormat | str) -> bool:
        """Push ``fmt``'s metadata if this connection has not seen it.

        Returns True if a metadata message was actually sent.  Exposed
        separately so benchmarks can isolate the push cost.
        """
        if isinstance(fmt, str):
            fmt = self.context.lookup_format(fmt)
        if fmt.format_id in self._announced:
            return False
        message = self.context.format_message(fmt)
        self.channel.send(message)
        self._announced.add(fmt.format_id)
        self.metadata_bytes += len(message)
        self.metadata_messages += 1
        return True

    # -- receiving -----------------------------------------------------------

    def recv(
        self,
        timeout: float | None = None,
        *,
        expect: str | None = None,
        mode: str = "generated",
    ) -> DecodedRecord:
        """Receive the next data record, servicing protocol messages.

        Format-metadata messages are absorbed; format requests are
        answered; data messages with unknown format ids trigger a
        request and are parked until the metadata arrives.  Columnar
        batch messages are expanded transparently: each record in the
        batch is returned by one ``recv`` call, in batch order.
        """
        while True:
            # Records left over from an already-delivered batch come
            # first — they predate anything still on the wire.
            if self._ready:
                return self._ready.popleft()
            # Deliver the oldest parked data message once its format is
            # known — preserving FIFO order across the resolution stall.
            if self._parked:
                head, head_trace = self._parked[0]
                _, _, _, _, head_id = IOContext.parse_header(head)
                if self.context.knows_format_id(head_id) or self._try_server(head_id):
                    self._parked.popleft()
                    return self._deliver(head, head_trace, expect, mode)
            message, trace = extract(self.channel.recv(timeout))
            kind, _, _, length, format_id = IOContext.parse_header(message)
            if kind == KIND_FORMAT:
                self.context.learn_format(message[HEADER_SIZE : HEADER_SIZE + length])
                continue
            if kind == KIND_REQUEST:
                self._answer_request(format_id)
                continue
            if kind not in (KIND_DATA, KIND_BATCH):
                raise DecodeError(f"unexpected message kind {kind}")
            if self.context.knows_format_id(format_id) or self._try_server(format_id):
                if self._parked:
                    # An earlier record is still stalled; keep order.
                    self._parked.append((message, trace))
                    continue
                return self._deliver(message, trace, expect, mode)
            self.channel.send(self.context.request_message(format_id))
            self._parked.append((message, trace))

    def _deliver(self, message, trace, expect, mode) -> DecodedRecord:
        """Decode one data or batch message; batches queue their tail."""
        kind, _, _, _, _ = IOContext.parse_header(message)
        self.last_trace = trace
        if kind != KIND_BATCH:
            return self.context.decode(message, expect=expect, mode=mode)
        batch = self.context.decode_batch(message)
        self.batches_received += 1
        records = [
            DecodedRecord(
                format_name=batch.format_name,
                values=values,
                wire_format=batch.wire_format,
            )
            for values in batch.records
        ]
        self._ready.extend(records[1:])
        return records[0]

    def _try_server(self, format_id: bytes) -> bool:
        try:
            self.context.wire_format(format_id)
            return True
        except DecodeError:
            return False

    def _answer_request(self, format_id: bytes) -> None:
        fmt = self._by_id(format_id)
        if fmt is None:
            raise TransportError(
                f"peer requested format {format_id.hex()}, which this "
                f"endpoint has not registered"
            )
        message = self.context.format_message(fmt)
        self.channel.send(message)
        self.metadata_bytes += len(message)
        self.metadata_messages += 1

    def _by_id(self, format_id: bytes) -> IOFormat | None:
        for name in self.context.format_names():
            fmt = self.context.lookup_format(name)
            if fmt.format_id == format_id:
                return fmt
        return None

    # -- service loop -----------------------------------------------------------

    def serve_protocol_once(self, timeout: float | None = None) -> bool:
        """Handle exactly one protocol (non-data) message, if present.

        Returns True if a message was handled, False on timeout.  Lets a
        sender endpoint answer format requests without a full recv loop.
        """
        try:
            message, trace = extract(self.channel.recv(timeout))
        except TransportError:
            return False
        kind, _, _, length, format_id = IOContext.parse_header(message)
        if kind == KIND_FORMAT:
            self.context.learn_format(message[HEADER_SIZE : HEADER_SIZE + length])
        elif kind == KIND_REQUEST:
            self._answer_request(format_id)
        else:
            self._parked.append((message, trace))
        return True

    def close(self) -> None:
        """Close the underlying channel."""
        self.channel.close()
