"""TCP transport: real sockets with the shared message framing.

Failure semantics of :class:`TCPChannel.recv`:

- a timeout *before any frame byte arrived* raises
  :class:`~repro.errors.TransportTimeoutError` and the channel stays
  usable — the stream is still at a frame boundary;
- a timeout *mid-frame* leaves unread frame bytes on the socket, so any
  further read would decode garbage from the middle of a message.  The
  channel marks itself **poisoned**, raises ``TransportTimeoutError``
  with ``mid_frame=True``, and refuses subsequent ``recv`` calls rather
  than desynchronizing.

:class:`ReconnectingTCPChannel` layers bounded reconnect-on-failure on
top: a sink (publisher, broker client) survives a broken connection by
redialing with backoff, up to a budget, instead of dying on the first
reset.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.errors import (
    ChannelClosedError,
    TransportError,
    TransportTimeoutError,
    WireError,
)
from repro.obs.instr import channel_handles
from repro.obs.metrics import get_registry
from repro.transport.channel import Channel
from repro.wire.bufpool import get_pool
from repro.wire.framing import (
    ReceiveBuffer,
    frame_iov,
    frame_parts,
    read_frame_into,
)

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")

try:
    _IOV_MAX = os.sysconf("SC_IOV_MAX")
    if _IOV_MAX <= 0:
        _IOV_MAX = 1024
except (AttributeError, ValueError, OSError):
    _IOV_MAX = 1024

# Debug switch for the recv_view ownership contract (PROTOCOL §12): when
# enabled, the next recv on a channel *revokes* the previously returned
# borrowed view, so stale use raises ValueError instead of silently
# reading whatever the recycled buffer holds now.  Costs one attribute
# check per receive when off; enable in tests via set_recv_view_debug or
# the REPRO_DEBUG_RECV_VIEW environment variable.
_view_debug = [os.environ.get("REPRO_DEBUG_RECV_VIEW", "") not in ("", "0")]


def set_recv_view_debug(enabled: bool) -> None:
    """Toggle stale-``recv_view`` revocation on every zero-copy channel."""
    _view_debug[0] = bool(enabled)


def recv_view_debug_enabled() -> bool:
    """Whether stale borrowed views are revoked on the next receive."""
    return _view_debug[0]


# Memo of the bound series for the current default registry; swapped
# registries (tests) re-resolve on first use.
_obs_memo = [None]


def _obs():
    """The threaded plane's channel metric handles, or None if disabled."""
    registry = get_registry()
    if not registry.enabled:
        return None
    cached = _obs_memo[0]
    if cached is None or cached[0] is not registry:
        cached = (registry, channel_handles(registry, "threaded"))
        _obs_memo[0] = cached
    return cached[1]


class TCPChannel(Channel):
    """A connected TCP socket speaking length-prefixed messages.

    Thread safety: one channel may be shared by multiple threads.
    Concurrent ``send`` calls are serialized by an internal lock, so
    frames from different threads never interleave on the wire.
    Concurrent ``recv`` calls are serialized the same way — each caller
    receives one whole frame; *which* frame is arrival order, so
    multi-reader use only makes sense for work-sharing consumers.  A
    ``recv(timeout=...)`` that cannot acquire the read lock within its
    timeout raises :class:`~repro.errors.TransportTimeoutError` without
    touching the socket (the stream stays at a frame boundary).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False
        self._poisoned = False
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._rbuf = ReceiveBuffer(get_pool())
        self._debug_view: memoryview | None = None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _sendall_vectored(self, buffers) -> None:
        """Put every buffer on the wire via scatter-gather ``sendmsg``.

        Handles partial sends by advancing through the iov list; falls
        back to a joined ``sendall`` where ``sendmsg`` is unavailable.
        Caller holds the send lock.
        """
        if not _HAS_SENDMSG:
            self._sock.sendall(b"".join(buffers))
            return
        iov = [memoryview(buffer) for buffer in buffers if len(buffer)]
        while iov:
            sent = self._sock.sendmsg(iov[:_IOV_MAX])
            while sent:
                head = iov[0]
                if sent >= len(head):
                    sent -= len(head)
                    del iov[0]
                else:
                    iov[0] = head[sent:]
                    sent = 0

    def send(self, message: bytes) -> None:
        if self._closed:
            raise ChannelClosedError("cannot send on a closed channel")
        header, payload = frame_iov(message)
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        try:
            with self._send_lock:
                self._sendall_vectored((header, payload))
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ChannelClosedError(f"peer closed the connection: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        if handles is not None:
            handles.send_seconds.observe(time.perf_counter() - started)
            handles.send_frames.inc()
            handles.send_bytes.inc(len(message))

    def send_many(self, messages) -> int:
        """Send every message as one scatter-gather batch; returns count.

        All frames go out in (at most a few) ``sendmsg`` syscalls under
        one lock acquisition, so frames from a batch never interleave
        with other senders and the per-message syscall cost is amortized
        across the batch.
        """
        if self._closed:
            raise ChannelClosedError("cannot send on a closed channel")
        buffers: list = []
        count = 0
        total_bytes = 0
        for message in messages:
            header, payload = frame_iov(message)
            buffers.append(header)
            buffers.append(payload)
            total_bytes += len(payload)
            count += 1
        if not count:
            return 0
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        try:
            with self._send_lock:
                self._sendall_vectored(buffers)
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ChannelClosedError(f"peer closed the connection: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        if handles is not None:
            handles.send_seconds.observe(time.perf_counter() - started)
            handles.send_frames.inc(count)
            handles.send_bytes.inc(total_bytes)
        return count

    def send_batch(self, parts) -> int:
        """Send one frame supplied as an iovec of parts; returns its length.

        The scatter-gather flip side of :meth:`send_many`: where that
        sends N messages in one syscall batch, this sends ONE message
        (typically a columnar batch frame: header, column blocks, heap)
        without ever concatenating the parts — the length prefix and
        every part ride a single ``sendmsg`` iovec under one lock.
        """
        if self._closed:
            raise ChannelClosedError("cannot send on a closed channel")
        buffers = frame_parts(parts)
        total = sum(len(part) for part in buffers) - len(buffers[0])
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        try:
            with self._send_lock:
                self._sendall_vectored(buffers)
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ChannelClosedError(f"peer closed the connection: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        if handles is not None:
            handles.send_seconds.observe(time.perf_counter() - started)
            handles.send_frames.inc()
            handles.send_bytes.inc(total)
        return total

    def recv(self, timeout: float | None = None) -> bytes:
        return self._recv_outer(timeout, copy=True)

    def recv_view(self, timeout: float | None = None) -> memoryview:
        """Zero-copy receive: a ``memoryview`` into the channel's buffer.

        The view is valid only until the next ``recv``/``recv_view`` on
        this channel (or its close) overwrites or recycles the buffer
        under it — decode or ``bytes()`` it before reading again
        (PROTOCOL §12).  Holding a view across the next receive is a
        contract violation that normally fails *silently* (the bytes
        become whatever arrived next, or whatever another pooled channel
        wrote into the recycled buffer); with
        :func:`set_recv_view_debug` enabled, the next receive revokes
        the stale view so any later access raises ``ValueError``.
        Intended for single-reader consumers; with competing readers,
        use :meth:`recv`.
        """
        return self._recv_outer(timeout, copy=False)

    def _invalidate_debug_view(self) -> None:
        """Revoke the previously handed-out view (debug mode only)."""
        stale, self._debug_view = self._debug_view, None
        if stale is not None:
            try:
                stale.release()
            except ValueError:
                pass  # caller took sub-views; those we cannot revoke

    def _recv_outer(self, timeout: float | None, *, copy: bool):
        if self._closed:
            raise ChannelClosedError("cannot recv on a closed channel")
        acquired = self._recv_lock.acquire(
            timeout=-1 if timeout is None else timeout
        )
        if not acquired:
            raise TransportTimeoutError(
                f"recv timed out after {timeout}s waiting for another reader"
            )
        handles = _obs()
        started = time.perf_counter() if handles is not None else 0.0
        try:
            debug = _view_debug[0]
            if debug:
                self._invalidate_debug_view()
            view = self._recv_locked(timeout)
            message = bytes(view) if copy else view
            if debug and not copy:
                self._debug_view = view
        finally:
            self._recv_lock.release()
        if handles is not None:
            handles.recv_seconds.observe(time.perf_counter() - started)
            handles.recv_frames.inc()
            handles.recv_bytes.inc(len(message))
        return message

    def _recv_locked(self, timeout: float | None) -> memoryview:
        if self._poisoned:
            raise TransportError(
                "channel poisoned by an earlier mid-frame timeout; "
                "the byte stream is desynchronized — close and reconnect"
            )
        consumed = 0

        def tracking_recv_into(view: memoryview) -> int:
            nonlocal consumed
            count = self._sock.recv_into(view)
            consumed += count
            return count

        prior_timeout = self._sock.gettimeout()
        self._sock.settimeout(timeout)
        try:
            return read_frame_into(tracking_recv_into, self._rbuf)
        except socket.timeout as exc:
            if consumed:
                self._poisoned = True
                raise TransportTimeoutError(
                    f"recv timed out after {timeout}s with {consumed} frame "
                    "byte(s) consumed; channel poisoned",
                    mid_frame=True,
                ) from exc
            raise TransportTimeoutError(f"recv timed out after {timeout}s") from exc
        except ConnectionResetError as exc:
            raise ChannelClosedError(f"connection reset: {exc}") from exc
        except WireError:
            raise
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        finally:
            # settimeout must not leak: interleaved timed/untimed calls
            # (and sends on the same socket) see the prior deadline.
            try:
                self._sock.settimeout(prior_timeout)
            except OSError:
                pass

    @property
    def poisoned(self) -> bool:
        """True once a mid-frame timeout desynchronized the inbound stream."""
        return self._poisoned

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if _view_debug[0]:
                self._invalidate_debug_view()
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            self._rbuf.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def local_address(self) -> tuple[str, int]:
        return self._sock.getsockname()[:2]


class TCPListener:
    """A listening socket handing out :class:`TCPChannel` connections."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 16,
        *,
        reuse_port: bool = False,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                self._sock.close()
                raise TransportError("SO_REUSEPORT unsupported on this platform")
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(backlog)
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port 0 resolves here)."""
        return self._sock.getsockname()[:2]

    def accept(self, timeout: float | None = None) -> TCPChannel:
        """Block for (and wrap) the next inbound connection."""
        self._sock.settimeout(timeout)
        try:
            connection, _ = self._sock.accept()
        except socket.timeout as exc:
            raise TransportError(f"accept timed out after {timeout}s") from exc
        except OSError as exc:
            raise ChannelClosedError(f"listener closed: {exc}") from exc
        return TCPChannel(connection)

    def close(self) -> None:
        """Close the listening socket; idempotent."""
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "TCPListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def listen(host: str = "127.0.0.1", port: int = 0) -> TCPListener:
    """Open a listener; ``port=0`` picks a free port (see ``.address``)."""
    return TCPListener(host, port)


def connect(host: str, port: int, timeout: float | None = 5.0) -> TCPChannel:
    """Connect to a listener and return the channel."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError(f"cannot connect to {host}:{port}: {exc}") from exc
    if sock.getsockname() == sock.getpeername():
        # TCP simultaneous-open: dialing a free port in the ephemeral
        # range can land on itself when the kernel picks the target as
        # the source port.  Nothing real is listening — treat as refused.
        sock.close()
        raise TransportError(f"cannot connect to {host}:{port}: self-connection")
    sock.settimeout(None)
    return TCPChannel(sock)


class ReconnectingTCPChannel(Channel):
    """A channel that redials its peer on connection failure, with a budget.

    Wraps the dial itself: construction connects immediately; a
    :class:`~repro.errors.ChannelClosedError` (or a poisoned stream)
    during ``send``/``recv`` triggers up to ``max_reconnects`` redial
    attempts per operation, with exponential backoff between them.
    Messages in flight when the connection broke are *not* replayed —
    at-most-once, like the underlying socket; timeouts propagate as-is
    (the connection is still healthy, the peer is just quiet).

    ``on_reconnect`` (called with the fresh :class:`TCPChannel` after
    each successful redial) lets session-level protocols restore state,
    e.g. a broker client re-sending its SUBSCRIBE envelopes.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_reconnects: int = 3,
        base_delay: float = 0.05,
        connect_timeout: float | None = 5.0,
        on_reconnect=None,
        sleep=time.sleep,
    ) -> None:
        if max_reconnects < 0:
            raise TransportError("max_reconnects must be non-negative")
        self.host = host
        self.port = port
        self.max_reconnects = max_reconnects
        self.base_delay = base_delay
        self.connect_timeout = connect_timeout
        self.on_reconnect = on_reconnect
        self._sleep = sleep
        self._closed = False
        self.reconnects = 0  # successful redials over the channel's lifetime
        self._channel: TCPChannel = connect(host, port, timeout=connect_timeout)

    def _redial(self, budget_used: int) -> None:
        """One backoff-then-redial step; raises TransportError on failure."""
        self._sleep(self.base_delay * (2**budget_used))
        self._channel.close()
        self._channel = connect(self.host, self.port, timeout=self.connect_timeout)
        self.reconnects += 1
        if self.on_reconnect is not None:
            self.on_reconnect(self._channel)

    def _run(self, operation):
        redials = 0
        while True:
            if self._closed:
                raise ChannelClosedError("cannot use a closed channel")
            try:
                if self._channel.poisoned:
                    raise ChannelClosedError("inbound stream poisoned")
                return operation(self._channel)
            except TransportTimeoutError:
                raise  # peer is slow, not gone: no redial
            except (ChannelClosedError, TransportError) as exc:
                last_error: Exception = exc
                # Burn redial budget until one dial succeeds, then retry
                # the operation on the fresh connection.
                while True:
                    if redials >= self.max_reconnects:
                        if last_error is exc:
                            raise  # no budget was available: original error
                        raise TransportError(
                            f"reconnect budget ({self.max_reconnects}) "
                            f"exhausted for {self.host}:{self.port}: "
                            f"{last_error}"
                        ) from last_error
                    try:
                        self._redial(redials)
                        redials += 1
                        break
                    except TransportError as dial_exc:
                        redials += 1
                        last_error = dial_exc

    def send(self, message: bytes) -> None:
        """Send, redialing (within budget) if the connection broke."""
        self._run(lambda channel: channel.send(message))

    def send_many(self, messages) -> int:
        """Batched send with redial-on-failure.

        The batch is materialized first so a redial mid-operation can
        resend it whole; at-most-once still applies — frames flushed
        before the break are not un-sent.
        """
        batch = list(messages)
        return self._run(lambda channel: channel.send_many(batch))

    def send_batch(self, parts) -> int:
        """One-frame iovec send with redial-on-failure (see ``send_many``)."""
        batch = list(parts)
        return self._run(lambda channel: channel.send_batch(batch))

    def recv(self, timeout: float | None = None) -> bytes:
        """Receive, redialing (within budget) if the connection broke."""
        return self._run(lambda channel: channel.recv(timeout))

    def close(self) -> None:
        """Close; a closed reconnecting channel never redials."""
        self._closed = True
        self._channel.close()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def local_address(self) -> tuple[str, int]:
        """The (host, port) of the current underlying socket."""
        return self._channel.local_address
