"""TCP transport: real sockets with the shared message framing."""

from __future__ import annotations

import socket

from repro.errors import ChannelClosedError, TransportError, WireError
from repro.transport.channel import Channel
from repro.wire.framing import frame, read_frame


class TCPChannel(Channel):
    """A connected TCP socket speaking length-prefixed messages."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._closed = False
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def send(self, message: bytes) -> None:
        if self._closed:
            raise ChannelClosedError("cannot send on a closed channel")
        try:
            self._sock.sendall(frame(message))
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ChannelClosedError(f"peer closed the connection: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def recv(self, timeout: float | None = None) -> bytes:
        if self._closed:
            raise ChannelClosedError("cannot recv on a closed channel")
        self._sock.settimeout(timeout)
        try:
            return read_frame(self._sock.recv)
        except socket.timeout as exc:
            raise TransportError(f"recv timed out after {timeout}s") from exc
        except ConnectionResetError as exc:
            raise ChannelClosedError(f"connection reset: {exc}") from exc
        except WireError:
            raise
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def local_address(self) -> tuple[str, int]:
        return self._sock.getsockname()[:2]


class TCPListener:
    """A listening socket handing out :class:`TCPChannel` connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            raise TransportError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(backlog)
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port 0 resolves here)."""
        return self._sock.getsockname()[:2]

    def accept(self, timeout: float | None = None) -> TCPChannel:
        """Block for (and wrap) the next inbound connection."""
        self._sock.settimeout(timeout)
        try:
            connection, _ = self._sock.accept()
        except socket.timeout as exc:
            raise TransportError(f"accept timed out after {timeout}s") from exc
        except OSError as exc:
            raise ChannelClosedError(f"listener closed: {exc}") from exc
        return TCPChannel(connection)

    def close(self) -> None:
        """Close the listening socket; idempotent."""
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "TCPListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def listen(host: str = "127.0.0.1", port: int = 0) -> TCPListener:
    """Open a listener; ``port=0`` picks a free port (see ``.address``)."""
    return TCPListener(host, port)


def connect(host: str, port: int, timeout: float | None = 5.0) -> TCPChannel:
    """Connect to a listener and return the channel."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError(f"cannot connect to {host}:{port}: {exc}") from exc
    sock.settimeout(None)
    return TCPChannel(sock)
