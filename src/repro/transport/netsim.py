"""Network models: simulated latency and bandwidth for the in-proc pipe.

The paper's discovery-cost argument hinges on network characteristics
("this consultation carries the cost of a network round-trip"), but a
benchmark that literally sleeps is slow and noisy.  A
:class:`NetworkModel` therefore supports two modes:

- ``realtime=True`` — :func:`time.sleep` for the computed delay, so an
  in-process pipe behaves like a slow link end to end;
- ``realtime=False`` (default) — account the delay in a
  :class:`NetworkStats` ledger without sleeping, giving deterministic
  *virtual* transfer times that benchmarks can report directly.

Delay model: ``latency + size / bandwidth`` per message, the standard
first-order LogP-style cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import TransportError


@dataclass
class NetworkStats:
    """Accumulated traffic ledger for one direction of a modeled link."""

    messages: int = 0
    bytes: int = 0
    virtual_seconds: float = 0.0

    def account(self, size: int, delay: float) -> None:
        """Record one transmitted message in the ledger."""
        self.messages += 1
        self.bytes += size
        self.virtual_seconds += delay


@dataclass
class NetworkModel:
    """First-order link model: fixed latency plus bandwidth-limited transfer.

    Parameters
    ----------
    latency:
        One-way message latency in seconds.
    bandwidth:
        Link bandwidth in bytes/second; ``None`` means infinite.
    realtime:
        Sleep for computed delays (True) or only account them (False).
    """

    latency: float = 0.0
    bandwidth: float | None = None
    realtime: bool = False
    stats: NetworkStats = field(default_factory=NetworkStats)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise TransportError("latency must be non-negative")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise TransportError("bandwidth must be positive")

    def delay_for(self, size: int) -> float:
        """One-way delivery delay for a message of ``size`` bytes."""
        transfer = size / self.bandwidth if self.bandwidth else 0.0
        return self.latency + transfer

    def transmit(self, size: int) -> float:
        """Account (and possibly sleep for) one message; returns the delay."""
        delay = self.delay_for(size)
        self.stats.account(size, delay)
        if self.realtime and delay > 0:
            time.sleep(delay)
        return delay


#: Convenience presets matching the paper's deployment tiers.
def lan_model(realtime: bool = False) -> NetworkModel:
    """100 Mbit switched Ethernet, ~0.2 ms latency (2001 departmental LAN)."""
    return NetworkModel(latency=200e-6, bandwidth=100e6 / 8, realtime=realtime)


def wan_model(realtime: bool = False) -> NetworkModel:
    """Cross-country WAN: 40 ms latency, 10 Mbit effective."""
    return NetworkModel(latency=40e-3, bandwidth=10e6 / 8, realtime=realtime)
