"""repro — reproduction of the xml2wire open-metadata communication system.

This package reimplements, in pure Python, the system described in
Widener, Schwan & Eisenhauer, *Open Metadata Formats: Efficient XML-Based
Communication for Heterogeneous Distributed Systems* (ICDCS 2001 /
GIT-CC-00-21): XML Schema-based message metadata, run-time metadata
discovery, and an efficient NDR (Natural Data Representation) binary
communication mechanism modeled on PBIO, plus the XDR and text-XML
baselines the paper compares against.

Public API highlights
---------------------

- :class:`repro.core.XML2Wire` — the paper's tool: parse XML Schema
  message descriptions and register them with a BCM at run time.
- :class:`repro.pbio.IOContext` — the PBIO-style binary communication
  mechanism (format registration, NDR encode/decode, dynamic conversion
  generation).
- :mod:`repro.arch` — architecture models providing simulated
  heterogeneity (byte order, type sizes, struct padding).
- :mod:`repro.wire` — XDR and text-XML baseline marshalers.
- :mod:`repro.events` — the event backbone of the paper's airline
  scenario.
- :mod:`repro.metaserver` — HTTP metadata server enabling remote
  discovery with compiled-in fallback.
- :mod:`repro.obs` — zero-dependency metrics registry and tracing,
  instrumenting the encode/decode, transport, discovery, and event
  fan-out hot paths on both serving planes (``/metrics`` on either
  metadata server; opt-in cross-process trace propagation).

See ``README.md`` for a tour and ``examples/quickstart.py`` for the
end-to-end pipeline of Figure 2.
"""

from repro import errors
from repro.arch import NATIVE, SPARC_32, X86_32, X86_64, get_architecture
from repro.core import (
    BoundFormat,
    CompiledSource,
    DiscoveryChain,
    DiscoveryReport,
    DiscoveryResult,
    FileSource,
    URLSource,
    XML2Wire,
    bind,
)
from repro.events import EventBackbone
from repro.faults import FaultPlan, FaultyChannel, ServerFaultPlan
from repro.metaserver import (
    CircuitBreaker,
    FlakyMetadataServer,
    MetadataClient,
    MetadataServer,
    RetryPolicy,
)
from repro.obs import (
    Registry,
    TraceContext,
    Tracer,
    get_registry,
    get_tracer,
    set_registry,
    set_wire_tracing,
)
from repro.pbio import (
    Compatibility,
    FormatLineage,
    FormatServer,
    IOContext,
    IOField,
    IOFormat,
)
from repro.schema import parse_schema, parse_schema_file
from repro.transport import (
    ReconnectingTCPChannel,
    RecordConnection,
    connect,
    listen,
    make_pipe,
)
from repro.wire import XDRCodec, XMLTextCodec

__version__ = "1.0.0"

__all__ = [
    "errors",
    "__version__",
    # architectures
    "NATIVE",
    "SPARC_32",
    "X86_32",
    "X86_64",
    "get_architecture",
    # xml2wire core
    "XML2Wire",
    "DiscoveryChain",
    "DiscoveryReport",
    "DiscoveryResult",
    "URLSource",
    "FileSource",
    "CompiledSource",
    "BoundFormat",
    "bind",
    # fault injection + resilience
    "FaultPlan",
    "FaultyChannel",
    "ServerFaultPlan",
    "FlakyMetadataServer",
    "RetryPolicy",
    "CircuitBreaker",
    "ReconnectingTCPChannel",
    # PBIO
    "IOContext",
    "IOField",
    "IOFormat",
    "FormatServer",
    "FormatLineage",
    "Compatibility",
    # schema
    "parse_schema",
    "parse_schema_file",
    # infrastructure
    "EventBackbone",
    "MetadataClient",
    "MetadataServer",
    "RecordConnection",
    "connect",
    "listen",
    "make_pipe",
    # observability
    "Registry",
    "TraceContext",
    "Tracer",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_wire_tracing",
    # baselines
    "XDRCodec",
    "XMLTextCodec",
]
