"""Golden-wire conformance vectors (see vectors.py / make_vectors.py)."""
