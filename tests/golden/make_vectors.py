"""Regenerate the golden ``.bin`` wire vectors.

Run only after an *intentional* wire-format change, then commit the
updated files together with the change that motivated them::

    PYTHONPATH=src python tests/golden/make_vectors.py

The conformance suite (``tests/wire/test_golden_vectors.py``) fails
loudly when current encode output stops matching these files — that is
the suite doing its job, not a reason to regenerate.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from golden import vectors  # noqa: E402  (path bootstrap above)


def main() -> int:
    """Write every vector's data and metadata message; returns 0."""
    for name in vectors.VECTOR_NAMES:
        context, fmt, record = vectors.build(name)
        data = context.encode(fmt, record)
        meta = context.format_message(fmt)
        vectors.data_path(name).write_bytes(data)
        vectors.meta_path(name).write_bytes(meta)
        print(f"{name}: data {len(data)} B, metadata {len(meta)} B")
    for name in vectors.BATCH_VECTOR_NAMES:
        context, fmt, _ = vectors.build(name)
        for count in vectors.BATCH_SIZES:
            records = vectors.batch_records(name, count)
            message = context.encode_batch(fmt, records)
            vectors.batch_path(name, count).write_bytes(message)
            print(f"{name}: batch{count} {len(message)} B")
    return 0


if __name__ == "__main__":
    sys.exit(main())
