"""Golden-wire vector definitions: formats, records, and file naming.

Each vector pins one format's *exact* wire bytes — the framed data
message for a fixed record plus the framed metadata message — on the
Table 1 reference architecture (big-endian ILP32 SPARC).  The ``.bin``
files checked in next to this module are the contract: any refactor of
the encoder, the framing layer, or the observability instrumentation
must keep producing byte-identical output, with wire tracing enabled
*and* disabled (trace context rides after the body and never changes
the encoded message itself).

The three ASDOff structures are the paper's Table 1 rows (Figures 6, 9
and 12); ``telemetry`` adds a standalone dynamic-array format so the
variable-length encode path is pinned independently of the airline
schemas.  Definitions are deliberately self-contained (mirroring
``benchmarks/conftest.py`` rather than importing it — test runs must
not depend on the benchmark tree).

Regenerate after an *intentional* wire change with::

    PYTHONPATH=src python tests/golden/make_vectors.py
"""

from __future__ import annotations

from pathlib import Path

from repro import IOContext, SPARC_32
from repro.arch import FieldDecl, layout_struct
from repro.pbio import IOField, IOFormat

VECTOR_DIR = Path(__file__).parent

#: Every vector name, in registration-complexity order.
VECTOR_NAMES = ("asdoff_a", "asdoff_b", "asdoff_cd", "telemetry")


def _asdoff_a_fields(arch):
    lay = layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrID", "char*"), FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"), FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"), FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long"), FieldDecl("eta", "unsigned long"),
        ],
    )
    p, ul, i = arch.pointer_size, arch.sizeof("unsigned long"), arch.sizeof("int")
    fields = [
        IOField("cntrID", "string", p, lay.offsetof("cntrID")),
        IOField("arln", "string", p, lay.offsetof("arln")),
        IOField("fltNum", "integer", i, lay.offsetof("fltNum")),
        IOField("equip", "string", p, lay.offsetof("equip")),
        IOField("org", "string", p, lay.offsetof("org")),
        IOField("dest", "string", p, lay.offsetof("dest")),
        IOField("off", "unsigned integer", ul, lay.offsetof("off")),
        IOField("eta", "unsigned integer", ul, lay.offsetof("eta")),
    ]
    return fields, lay.size


def _asdoff_b_fields(arch):
    lay = layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrID", "char*"), FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"), FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"), FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long", count=5),
            FieldDecl("eta", "unsigned long*"), FieldDecl("eta_count", "int"),
        ],
    )
    p, ul, i = arch.pointer_size, arch.sizeof("unsigned long"), arch.sizeof("int")
    fields = [
        IOField("cntrID", "string", p, lay.offsetof("cntrID")),
        IOField("arln", "string", p, lay.offsetof("arln")),
        IOField("fltNum", "integer", i, lay.offsetof("fltNum")),
        IOField("equip", "string", p, lay.offsetof("equip")),
        IOField("org", "string", p, lay.offsetof("org")),
        IOField("dest", "string", p, lay.offsetof("dest")),
        IOField("off", "unsigned integer[5]", ul, lay.offsetof("off")),
        IOField("eta", "unsigned integer[eta_count]", ul, lay.offsetof("eta")),
        IOField("eta_count", "integer", i, lay.offsetof("eta_count")),
    ]
    return fields, lay.size


def register_asdoff_a(arch=SPARC_32) -> tuple[IOContext, IOFormat]:
    """Structure A (Figure 6): scalars only, 32 B native."""
    context = IOContext(arch)
    fields, size = _asdoff_a_fields(arch)
    return context, context.register_format("ASDOffEvent", fields, record_length=size)


def register_asdoff_b(arch=SPARC_32) -> tuple[IOContext, IOFormat]:
    """Structure B (Figure 9): static + dynamic arrays, 52 B native."""
    context = IOContext(arch)
    fields, size = _asdoff_b_fields(arch)
    return context, context.register_format("ASDOffEvent", fields, record_length=size)


def register_asdoff_cd(arch=SPARC_32) -> tuple[IOContext, IOFormat]:
    """Structures C/D (Figure 12): three nested Bs, 180 B native."""
    context = IOContext(arch)
    fields, size = _asdoff_b_fields(arch)
    context.register_format("ASDOffEvent", fields, record_length=size)
    double_size = arch.sizeof("double")
    inner = layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrID", "char*"), FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"), FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"), FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long", count=5),
            FieldDecl("eta", "unsigned long*"), FieldDecl("eta_count", "int"),
        ],
    )
    outer = layout_struct(
        arch,
        "threeASDOffs",
        [
            FieldDecl("one", inner), FieldDecl("bart", "double"),
            FieldDecl("two", inner), FieldDecl("lisa", "double"),
            FieldDecl("three", inner),
        ],
    )
    outer_fields = [
        IOField("one", "ASDOffEvent", size, outer.offsetof("one")),
        IOField("bart", "double", double_size, outer.offsetof("bart")),
        IOField("two", "ASDOffEvent", size, outer.offsetof("two")),
        IOField("lisa", "double", double_size, outer.offsetof("lisa")),
        IOField("three", "ASDOffEvent", size, outer.offsetof("three")),
    ]
    return context, context.register_format(
        "threeASDOffs", outer_fields, record_length=outer.size
    )


def register_telemetry(arch=SPARC_32) -> tuple[IOContext, IOFormat]:
    """A standalone dynamic-array format: a batch of double samples."""
    context = IOContext(arch)
    lay = layout_struct(
        arch,
        "telemetryBatch",
        [
            FieldDecl("stream", "char*"),
            FieldDecl("count", "int"),
            FieldDecl("samples", "double*"),
        ],
    )
    fields = [
        IOField("stream", "string", arch.pointer_size, lay.offsetof("stream")),
        IOField("count", "integer", arch.sizeof("int"), lay.offsetof("count")),
        IOField("samples", "double[count]", arch.sizeof("double"),
                lay.offsetof("samples")),
    ]
    return context, context.register_format(
        "TelemetryBatch", fields, record_length=lay.size
    )


# -- the pinned records ------------------------------------------------------
#
# Every value is chosen to be representation-exact: integers, ASCII
# strings, and doubles with finite binary expansions, so the golden
# bytes cannot drift with float formatting or locale.

RECORD_A = {
    "cntrID": "ZTL", "arln": "DL", "fltNum": 1202,
    "equip": "B757", "org": "ATL", "dest": "MCO",
    "off": 954547200, "eta": 954554400,
}

_RECORD_B_ONE = {
    "cntrID": "ZNY", "arln": "UA", "fltNum": 88,
    "equip": "B737", "org": "EWR", "dest": "ORD",
    "off": [954550800, 954550860, 954550920, 954550980, 954551040],
    "eta": [954554400, 954554700, 954555000],
    "eta_count": 3,
}

_RECORD_B_TWO = {
    "cntrID": "ZAU", "arln": "AA", "fltNum": 4097,
    "equip": "MD80", "org": "ORD", "dest": "DFW",
    "off": [954552000, 954552060, 954552120, 954552180, 954552240],
    "eta": [954559200],
    "eta_count": 1,
}

_RECORD_B_THREE = {
    "cntrID": "ZLA", "arln": "WN", "fltNum": 711,
    "equip": "B737", "org": "LAX", "dest": "PHX",
    "off": [954553800, 954553860, 954553920, 954553980, 954554040],
    "eta": [954556200, 954556500, 954556800, 954557100],
    "eta_count": 4,
}

RECORD_B = _RECORD_B_ONE

RECORD_CD = {
    "one": _RECORD_B_ONE,
    "bart": 0.5,
    "two": _RECORD_B_TWO,
    "lisa": -2.25,
    "three": _RECORD_B_THREE,
}

RECORD_TELEMETRY = {
    "stream": "engine-2/egt",
    "count": 4,
    "samples": [0.5, 1.25, -3.75, 1024.0],
}

#: name -> (registrar, pinned record)
VECTORS = {
    "asdoff_a": (register_asdoff_a, RECORD_A),
    "asdoff_b": (register_asdoff_b, RECORD_B),
    "asdoff_cd": (register_asdoff_cd, RECORD_CD),
    "telemetry": (register_telemetry, RECORD_TELEMETRY),
}


def build(name: str) -> tuple[IOContext, IOFormat, dict]:
    """Fresh (context, format, record) for one vector name."""
    registrar, record = VECTORS[name]
    context, fmt = registrar()
    return context, fmt, record


def data_path(name: str) -> Path:
    """Checked-in framed data message for ``name``."""
    return VECTOR_DIR / f"{name}.data.bin"


def meta_path(name: str) -> Path:
    """Checked-in framed metadata message for ``name``."""
    return VECTOR_DIR / f"{name}.meta.bin"


# -- columnar batch vectors (PROTOCOL §14) -----------------------------------
#
# Two formats pin the columnar frame layout: ``asdoff_a`` (the Table 1
# scalar structure — strings + fixed-width scalars) and ``telemetry``
# (a dynamic array, including a zero-length row that pins the
# NULL-offset encoding).  Two batch sizes: 1 (the degenerate batch) and
# 64 (the bulk-stream sweet spot).  Records are index-deterministic and
# representation-exact, like the single-record vectors above.

#: Formats with pinned columnar batch frames.
BATCH_VECTOR_NAMES = ("asdoff_a", "telemetry")

#: Pinned batch sizes (1 = degenerate, 64 = bulk sweet spot).
BATCH_SIZES = (1, 64)

_BATCH_A_TUPLES = [
    ("ZTL", "DL", "B757", "ATL", "MCO"),
    ("ZNY", "UA", "B737", "EWR", "ORD"),
    ("ZAU", "AA", "MD80", "ORD", "DFW"),
    ("ZLA", "WN", "B737", "LAX", "PHX"),
    ("ZFW", "CO", "MD11", "IAH", "SLC"),
]

_BATCH_STREAMS = ("engine-0/egt", "engine-1/egt", "engine-2/egt", "engine-3/egt")


def _batch_record_a(index: int) -> dict:
    cntr, arln, equip, org, dest = _BATCH_A_TUPLES[index % len(_BATCH_A_TUPLES)]
    off = 954547200 + index * 60
    return {
        "cntrID": cntr, "arln": arln, "fltNum": 1000 + index,
        "equip": equip, "org": org, "dest": dest,
        "off": off, "eta": off + 7200,
    }


def _batch_record_telemetry(index: int) -> dict:
    # index 0 yields count == 0: an empty dynamic array, pinning the
    # NULL (zero) heap-offset encoding inside a batch.
    count = index % 5
    return {
        "stream": _BATCH_STREAMS[index % len(_BATCH_STREAMS)],
        "count": count,
        # Quarters are exact in binary; values stay f32/f64-stable.
        "samples": [index + 0.25 * j for j in range(count)],
    }


_BATCH_BUILDERS = {
    "asdoff_a": _batch_record_a,
    "telemetry": _batch_record_telemetry,
}


def batch_records(name: str, count: int) -> list[dict]:
    """The pinned, index-deterministic record batch for one vector."""
    builder = _BATCH_BUILDERS[name]
    return [builder(index) for index in range(count)]


def batch_path(name: str, count: int) -> Path:
    """Checked-in columnar batch message for ``name`` at ``count`` rows."""
    return VECTOR_DIR / f"{name}.batch{count}.bin"
