"""Unit tests for the workload generators."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.core import XML2Wire
from repro.pbio import IOContext
from repro.workloads import (
    ASDOFF_A_SCHEMA,
    ASDOFF_B_SCHEMA,
    ASDOFF_CD_SCHEMA,
    AirlineWorkload,
    MiningWorkload,
    SyntheticWorkload,
    WeatherWorkload,
    make_synthetic_schema,
)


def register(schema, arch=SPARC_32):
    tool = XML2Wire(IOContext(arch))
    return tool, tool.register_schema(schema)


class TestAirlineSchemas:
    def test_table1_structure_sizes(self):
        _, formats_a = register(ASDOFF_A_SCHEMA)
        _, formats_b = register(ASDOFF_B_SCHEMA)
        _, formats_cd = register(ASDOFF_CD_SCHEMA)
        assert formats_a[0].record_length == 32
        assert formats_b[0].record_length == 52
        outer = formats_cd[1]
        last = outer.field("three")
        assert last.offset + last.size == 180

    def test_records_encode_through_xml2wire_formats(self):
        workload = AirlineWorkload(seed=1)
        tool, _ = register(ASDOFF_B_SCHEMA)
        message = tool.context.encode("ASDOffEvent", workload.record_b())
        assert tool.context.decode(message).format_name == "ASDOffEvent"

    def test_cd_records_encode(self):
        workload = AirlineWorkload(seed=1)
        tool, _ = register(ASDOFF_CD_SCHEMA)
        record = workload.record_cd()
        decoded = tool.context.decode(tool.context.encode("threeASDOffs", record))
        assert decoded.values == record

    def test_streams_are_deterministic_per_seed(self):
        first = list(AirlineWorkload(seed=5).stream_a(10))
        second = list(AirlineWorkload(seed=5).stream_a(10))
        assert first == second

    def test_different_seeds_differ(self):
        assert list(AirlineWorkload(seed=1).stream_a(5)) != list(
            AirlineWorkload(seed=2).stream_a(5)
        )

    def test_record_fields_plausible(self):
        record = AirlineWorkload(seed=3).record_a()
        assert 1 <= record["fltNum"] <= 9999
        assert record["eta"] > record["off"]
        assert len(record["org"]) == 3


class TestWeatherWorkload:
    def test_schema_registers_and_roundtrips(self):
        workload = WeatherWorkload(seed=2)
        tool, _ = register(workload.schema, X86_64)
        record = workload.record()
        decoded = tool.context.decode(tool.context.encode(workload.format_name, record))
        assert decoded.values["station"] == record["station"]
        assert decoded.values["cloud_layers"] == record["cloud_layers"]

    def test_timestamps_monotonic(self):
        workload = WeatherWorkload(seed=2)
        times = [workload.record()["issued"] for _ in range(20)]
        assert times == sorted(times)


class TestMiningWorkload:
    def test_schema_registers_and_roundtrips(self):
        workload = MiningWorkload(seed=4)
        tool, _ = register(workload.schema, X86_64)
        record = workload.record(sample_count=8)
        decoded = tool.context.decode(tool.context.encode(workload.format_name, record))
        assert decoded.values == record

    def test_rule_ids_increment(self):
        workload = MiningWorkload()
        assert [workload.record()["rule_id"] for _ in range(3)] == [1, 2, 3]

    def test_confidence_bounded(self):
        workload = MiningWorkload(seed=11)
        for _ in range(50):
            assert 0.0 <= workload.record()["confidence"] <= 1.0


class TestSyntheticWorkload:
    @pytest.mark.parametrize("field_count", [1, 4, 16, 64])
    def test_schemas_register_for_any_field_count(self, field_count):
        workload = SyntheticWorkload(field_count)
        tool, formats = register(workload.schema, X86_64)
        assert len(formats[0].fields) == field_count
        record = workload.record()
        assert tool.context.decode(tool.context.encode("Synthetic", record)).values == record

    @pytest.mark.parametrize("mix", ["mixed", "numeric", "strings", "integers"])
    def test_all_mixes_roundtrip(self, mix):
        workload = SyntheticWorkload(6, mix=mix)
        tool, _ = register(workload.schema, SPARC_32)
        record = workload.record()
        assert tool.context.decode(tool.context.encode("Synthetic", record)).values == record

    def test_payload_sizing(self):
        workload = SyntheticWorkload(2, array_field=True)
        tool, _ = register(workload.schema, X86_64)
        record = workload.record_of_payload(64 * 1024)
        message = tool.context.encode("Synthetic", record)
        assert len(message) == pytest.approx(64 * 1024, rel=0.05)

    def test_payload_sizing_requires_array(self):
        with pytest.raises(ValueError, match="array_field"):
            SyntheticWorkload(2).record_of_payload(1000)

    def test_zero_fields_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_schema(0)
