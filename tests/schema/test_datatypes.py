"""Unit tests for schema primitive datatypes."""

import math

import pytest

from repro.errors import SchemaError
from repro.schema import lookup_primitive
from repro.schema.datatypes import LogicalKind, all_primitives, is_xsd_namespace


class TestLookup:
    def test_paper_draft_names_resolve(self):
        """The hyphenated 1999-draft names used in the paper's figures."""
        for name in ("string", "integer", "unsigned-long", "double", "float"):
            assert lookup_primitive(name).name == name

    def test_recommendation_names_resolve(self):
        assert lookup_primitive("unsignedLong").kind == LogicalKind.UNSIGNED
        assert lookup_primitive("unsignedInt").c_type == "unsigned int"

    def test_unknown_type_raises_with_hint(self):
        with pytest.raises(SchemaError, match="did you mean 'unsignedLong'"):
            lookup_primitive("unsignedlong")

    def test_unknown_type_raises_plain(self):
        with pytest.raises(SchemaError, match="unknown XML Schema datatype"):
            lookup_primitive("quaternion")

    def test_default_c_types(self):
        assert lookup_primitive("string").c_type == "char*"
        assert lookup_primitive("integer").c_type == "int"
        assert lookup_primitive("unsigned-long").c_type == "unsigned long"
        assert lookup_primitive("double").c_type == "double"
        assert lookup_primitive("char").c_type == "char"


class TestNamespaceRecognition:
    def test_all_three_xsd_namespaces(self):
        assert is_xsd_namespace("http://www.w3.org/1999/XMLSchema")
        assert is_xsd_namespace("http://www.w3.org/2000/10/XMLSchema")
        assert is_xsd_namespace("http://www.w3.org/2001/XMLSchema")

    def test_non_xsd_namespace(self):
        assert not is_xsd_namespace("http://example.com")
        assert not is_xsd_namespace(None)


class TestLexicalValidation:
    def test_integer_parsing(self):
        t = lookup_primitive("integer")
        assert t.validate_lexical("42") == 42
        assert t.validate_lexical("-7") == -7
        assert t.validate_lexical(" 13 ") == 13

    def test_integer_rejects_garbage(self):
        t = lookup_primitive("integer")
        with pytest.raises(SchemaError):
            t.validate_lexical("4.2")
        with pytest.raises(SchemaError):
            t.validate_lexical("abc")

    def test_bounded_int_range_checked(self):
        t = lookup_primitive("int")
        assert t.validate_lexical("2147483647") == 2**31 - 1
        with pytest.raises(SchemaError, match="above maximum"):
            t.validate_lexical("2147483648")
        with pytest.raises(SchemaError, match="below minimum"):
            t.validate_lexical("-2147483649")

    def test_unsigned_rejects_negative(self):
        t = lookup_primitive("unsigned-long")
        with pytest.raises(SchemaError, match="below minimum"):
            t.validate_lexical("-1")

    def test_float_parsing_including_specials(self):
        t = lookup_primitive("double")
        assert t.validate_lexical("3.25") == 3.25
        assert t.validate_lexical("1e3") == 1000.0
        assert t.validate_lexical("-INF") == float("-inf")
        assert math.isnan(t.validate_lexical("NaN"))

    def test_float_rejects_garbage(self):
        with pytest.raises(SchemaError):
            lookup_primitive("double").validate_lexical("1.2.3")

    def test_boolean_forms(self):
        t = lookup_primitive("boolean")
        assert t.validate_lexical("true") is True
        assert t.validate_lexical("0") is False
        with pytest.raises(SchemaError):
            t.validate_lexical("yes")

    def test_char_single_character_only(self):
        t = lookup_primitive("char")
        assert t.validate_lexical("x") == "x"
        with pytest.raises(SchemaError):
            t.validate_lexical("xy")

    def test_string_accepts_anything(self):
        assert lookup_primitive("string").validate_lexical("") == ""


class TestFormatting:
    def test_roundtrip_via_format(self):
        cases = [
            ("integer", -42),
            ("unsigned-long", 12345678901),
            ("double", 2.5),
            ("boolean", True),
            ("string", "hello"),
        ]
        for name, value in cases:
            t = lookup_primitive(name)
            assert t.validate_lexical(t.format_value(value)) == value

    def test_all_primitives_have_distinct_names(self):
        names = [t.name for t in all_primitives()]
        assert len(names) == len(set(names))
