"""Shared schema fixtures: the paper's Appendix A documents, verbatim.

(The only edits relative to the printed figures are the removal of a
stray space in the targetNamespace URL — an artifact of the PDF's
typesetting — and, for Figure 9/12, nothing at all.)
"""

import pytest

FIGURE_6 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>
      ASDOff
    </xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" />
    <xsd:element name="eta" type="xsd:unsigned-long" />
  </xsd:complexType>
</xsd:schema>
"""

FIGURE_9 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>
      ASDOff
    </xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
"""

FIGURE_12 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>
      ASDOff
    </xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="1" maxOccurs="*" />
  </xsd:complexType>
  <xsd:complexType name="threeASDOffs">
    <xsd:element name="one" type="ASDOffEvent" />
    <xsd:element name="bart" type="xsd:double" />
    <xsd:element name="two" type="ASDOffEvent" />
    <xsd:element name="lisa" type="xsd:double" />
    <xsd:element name="three" type="ASDOffEvent" />
  </xsd:complexType>
</xsd:schema>
"""


@pytest.fixture
def figure6():
    return FIGURE_6


@pytest.fixture
def figure9():
    return FIGURE_9


@pytest.fixture
def figure12():
    return FIGURE_12
