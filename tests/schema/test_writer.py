"""Unit tests for schema serialization (repro.schema.writer)."""

from repro.schema import parse_schema, schema_to_xml
from repro.schema.datatypes import lookup_primitive
from repro.schema.model import (
    ComplexType,
    ElementDecl,
    Occurs,
    SchemaDocument,
    SimpleType,
)

XSD = "http://www.w3.org/1999/XMLSchema"


def roundtrip(schema):
    return parse_schema(schema_to_xml(schema))


class TestSchemaWriter:
    def test_minimal_schema_roundtrips(self):
        schema = SchemaDocument(target_namespace="urn:t")
        schema.complex_types["T"] = ComplexType(
            "T",
            (
                ElementDecl("x", XSD, "integer"),
                ElementDecl("y", XSD, "double"),
            ),
        )
        again = roundtrip(schema)
        assert again.target_namespace == "urn:t"
        assert again.complex_type("T").element_names() == ["x", "y"]

    def test_occurs_forms_roundtrip(self):
        schema = SchemaDocument()
        schema.complex_types["T"] = ComplexType(
            "T",
            (
                ElementDecl("n", XSD, "integer"),
                ElementDecl("fixed", XSD, "double", Occurs.fixed(5)),
                ElementDecl("explicit", XSD, "double", Occurs.dynamic("n")),
                ElementDecl(
                    "implicit", XSD, "double", Occurs.dynamic("implicit_count", synthesized=True)
                ),
            ),
        )
        ct = roundtrip(schema).complex_type("T")
        assert ct.element("fixed").occurs.count == 5
        assert ct.element("explicit").occurs.length_field == "n"
        implicit = ct.element("implicit").occurs
        assert implicit.is_dynamic_array
        assert implicit.synthesized_length

    def test_nested_type_reference_roundtrips(self):
        schema = SchemaDocument(target_namespace="urn:t")
        schema.complex_types["Inner"] = ComplexType(
            "Inner", (ElementDecl("v", XSD, "int"),)
        )
        schema.complex_types["Outer"] = ComplexType(
            "Outer", (ElementDecl("in_", None, "Inner"),)
        )
        again = roundtrip(schema)
        assert again.complex_type("Outer").element("in_").type_name == "Inner"

    def test_documentation_roundtrips(self):
        schema = SchemaDocument(documentation="stream metadata")
        schema.complex_types["T"] = ComplexType(
            "T", (ElementDecl("x", XSD, "int"),), documentation="one field"
        )
        again = roundtrip(schema)
        assert "stream metadata" in again.documentation
        assert "one field" in again.complex_type("T").documentation

    def test_simple_type_roundtrips(self):
        schema = SchemaDocument()
        schema.simple_types["Airline"] = SimpleType(
            "Airline", lookup_primitive("string"), enumeration=("DL", "UA")
        )
        schema.complex_types["T"] = ComplexType(
            "T", (ElementDecl("a", None, "Airline"),)
        )
        again = roundtrip(schema)
        assert again.simple_type("Airline").enumeration == ("DL", "UA")

    def test_bounds_roundtrip(self):
        schema = SchemaDocument()
        schema.simple_types["Alt"] = SimpleType(
            "Alt", lookup_primitive("integer"), min_inclusive=0, max_inclusive=60000
        )
        schema.complex_types["T"] = ComplexType("T", (ElementDecl("a", None, "Alt"),))
        alt = roundtrip(schema).simple_type("Alt")
        assert alt.min_inclusive == 0
        assert alt.max_inclusive == 60000

    def test_special_characters_in_names_escaped(self):
        schema = SchemaDocument(target_namespace='urn:with"quote')
        schema.complex_types["T"] = ComplexType("T", (ElementDecl("x", XSD, "int"),))
        text = schema_to_xml(schema)
        assert "&quot;" in text
        assert roundtrip(schema).target_namespace == 'urn:with"quote'
