"""Unit tests for the schema parser (repro.schema.parser)."""

import pytest

from repro.errors import SchemaError
from repro.schema import parse_schema
from repro.schema.datatypes import is_xsd_namespace

XSD99 = "http://www.w3.org/1999/XMLSchema"
XSD01 = "http://www.w3.org/2001/XMLSchema"


def wrap(body, ns=XSD99, target="urn:test"):
    return (
        f'<?xml version="1.0"?>'
        f'<xsd:schema xmlns:xsd="{ns}" targetNamespace="{target}">{body}</xsd:schema>'
    )


class TestPaperFigures:
    def test_figure_6_structure_a(self, figure6):
        schema = parse_schema(figure6)
        assert schema.target_namespace == "http://www.cc.gatech.edu/pmw/schemas"
        assert "ASDOff" in schema.documentation
        ct = schema.complex_type("ASDOffEvent")
        assert ct.element_names() == [
            "cntrID", "arln", "fltNum", "equip", "org", "dest", "off", "eta",
        ]
        assert all(e.occurs.is_scalar for e in ct.elements)
        assert ct.element("fltNum").type_name == "integer"
        assert is_xsd_namespace(ct.element("off").type_namespace)
        assert ct.element("off").type_name == "unsigned-long"

    def test_figure_9_structure_b_arrays(self, figure9):
        ct = parse_schema(figure9).complex_type("ASDOffEvent")
        off = ct.element("off")
        assert off.occurs.is_fixed_array
        assert off.occurs.count == 5
        eta = ct.element("eta")
        assert eta.occurs.is_dynamic_array
        assert eta.occurs.length_field == "eta_count"
        assert eta.occurs.synthesized_length

    def test_figure_12_nested_composition(self, figure12):
        schema = parse_schema(figure12)
        assert schema.type_names() == ["ASDOffEvent", "threeASDOffs"]
        three = schema.complex_type("threeASDOffs")
        one = three.element("one")
        assert one.type_namespace is None
        assert one.type_name == "ASDOffEvent"
        assert three.element("bart").type_name == "double"


class TestDialects:
    def test_2001_namespace_accepted(self):
        body = '<xsd:complexType name="T"><xsd:element name="x" type="xsd:int"/></xsd:complexType>'
        schema = parse_schema(wrap(body, ns=XSD01))
        assert schema.complex_type("T").element("x").type_name == "int"

    def test_sequence_wrapper_accepted(self):
        body = (
            '<xsd:complexType name="T"><xsd:sequence>'
            '<xsd:element name="x" type="xsd:int"/>'
            '<xsd:element name="y" type="xsd:double"/>'
            "</xsd:sequence></xsd:complexType>"
        )
        ct = parse_schema(wrap(body)).complex_type("T")
        assert ct.element_names() == ["x", "y"]

    def test_unbounded_spelling_equals_star(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="v" type="xsd:double" maxOccurs="unbounded"/>'
            "</xsd:complexType>"
        )
        element = parse_schema(wrap(body)).complex_type("T").element("v")
        assert element.occurs.is_dynamic_array
        assert element.occurs.length_field == "v_count"

    def test_arbitrary_prefix_for_xsd_namespace(self):
        source = (
            '<s:schema xmlns:s="http://www.w3.org/1999/XMLSchema">'
            '<s:complexType name="T"><s:element name="x" type="s:int"/></s:complexType>'
            "</s:schema>"
        )
        assert parse_schema(source).complex_type("T").element("x").type_name == "int"


class TestDynamicArrays:
    def test_explicit_length_field_reference(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="n" type="xsd:integer"/>'
            '<xsd:element name="data" type="xsd:double" maxOccurs="n"/>'
            "</xsd:complexType>"
        )
        element = parse_schema(wrap(body)).complex_type("T").element("data")
        assert element.occurs.is_dynamic_array
        assert element.occurs.length_field == "n"
        assert not element.occurs.synthesized_length

    def test_star_adopts_declared_count_element(self):
        """maxOccurs='*' with a declared <name>_count uses the declared field."""
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="data" type="xsd:double" maxOccurs="*"/>'
            '<xsd:element name="data_count" type="xsd:integer"/>'
            "</xsd:complexType>"
        )
        element = parse_schema(wrap(body)).complex_type("T").element("data")
        assert element.occurs.is_dynamic_array
        assert not element.occurs.synthesized_length

    def test_missing_explicit_length_field_rejected(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="data" type="xsd:double" maxOccurs="nope"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="no such element"):
            parse_schema(wrap(body))

    def test_non_integer_length_field_rejected(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="n" type="xsd:string"/>'
            '<xsd:element name="data" type="xsd:double" maxOccurs="n"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="must be an integer"):
            parse_schema(wrap(body))

    def test_array_length_field_must_be_scalar(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="n" type="xsd:integer" maxOccurs="3"/>'
            '<xsd:element name="data" type="xsd:double" maxOccurs="n"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="must be a scalar"):
            parse_schema(wrap(body))


class TestSimpleTypes:
    def test_enumeration_restriction(self):
        body = (
            '<xsd:simpleType name="Airline">'
            '<xsd:restriction base="xsd:string">'
            '<xsd:enumeration value="DL"/><xsd:enumeration value="UA"/>'
            "</xsd:restriction></xsd:simpleType>"
            '<xsd:complexType name="T"><xsd:element name="a" type="Airline"/></xsd:complexType>'
        )
        schema = parse_schema(wrap(body))
        simple = schema.simple_type("Airline")
        assert simple.enumeration == ("DL", "UA")
        assert simple.validate_lexical("DL") == "DL"
        with pytest.raises(SchemaError, match="enumerated"):
            simple.validate_lexical("AA")

    def test_numeric_bounds_restriction(self):
        body = (
            '<xsd:simpleType name="Altitude">'
            '<xsd:restriction base="xsd:integer">'
            '<xsd:minInclusive value="0"/><xsd:maxInclusive value="60000"/>'
            "</xsd:restriction></xsd:simpleType>"
        )
        simple = parse_schema(wrap(body)).simple_type("Altitude")
        assert simple.validate_lexical("35000") == 35000
        with pytest.raises(SchemaError, match="maxInclusive"):
            simple.validate_lexical("99999")


class TestErrors:
    def test_non_schema_root_rejected(self):
        with pytest.raises(SchemaError, match="xsd:schema root"):
            parse_schema("<notaschema/>")

    def test_wrong_namespace_root_rejected(self):
        with pytest.raises(SchemaError, match="xsd:schema root"):
            parse_schema('<x:schema xmlns:x="urn:other"/>')

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError, match="no types"):
            parse_schema(wrap(""))

    def test_unknown_construct_rejected(self):
        with pytest.raises(SchemaError, match="unsupported schema construct"):
            parse_schema(wrap("<xsd:attribute name='x'/>"))

    def test_unknown_construct_in_complex_type_rejected(self):
        body = '<xsd:complexType name="T"><xsd:choice/></xsd:complexType>'
        with pytest.raises(SchemaError, match="unsupported construct"):
            parse_schema(wrap(body))

    def test_unknown_primitive_rejected(self):
        body = '<xsd:complexType name="T"><xsd:element name="x" type="xsd:matrix"/></xsd:complexType>'
        with pytest.raises(SchemaError, match="unknown XML Schema datatype"):
            parse_schema(wrap(body))

    def test_forward_type_reference_rejected(self):
        """User types must be defined before use — the paper's Catalog is
        built in a single pass over the document."""
        body = (
            '<xsd:complexType name="Outer"><xsd:element name="x" type="Inner"/></xsd:complexType>'
            '<xsd:complexType name="Inner"><xsd:element name="y" type="xsd:int"/></xsd:complexType>'
        )
        with pytest.raises(SchemaError, match="before use"):
            parse_schema(wrap(body))

    def test_duplicate_complex_type_rejected(self):
        body = (
            '<xsd:complexType name="T"><xsd:element name="x" type="xsd:int"/></xsd:complexType>'
            '<xsd:complexType name="T"><xsd:element name="y" type="xsd:int"/></xsd:complexType>'
        )
        with pytest.raises(SchemaError, match="duplicate complex type"):
            parse_schema(wrap(body))

    def test_duplicate_element_rejected(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="x" type="xsd:int"/><xsd:element name="x" type="xsd:int"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="duplicate element"):
            parse_schema(wrap(body))

    def test_element_missing_type_rejected(self):
        body = '<xsd:complexType name="T"><xsd:element name="x"/></xsd:complexType>'
        with pytest.raises(Exception, match="missing required attribute"):
            parse_schema(wrap(body))

    def test_foreign_namespace_type_reference_rejected(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="x" type="o:Thing" xmlns:o="urn:other"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="foreign namespace"):
            parse_schema(wrap(body))

    def test_bad_min_occurs_rejected(self):
        body = (
            '<xsd:complexType name="T">'
            '<xsd:element name="x" type="xsd:int" minOccurs="lots"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="minOccurs"):
            parse_schema(wrap(body))
