"""Unit tests for instance validation and classification."""

import pytest

from repro.errors import SchemaValidationError
from repro.schema import parse_schema, validate_instance
from repro.schema.validator import classify_instance, collect_issues
from repro.xmlparse import parse_document

SCHEMA = parse_schema(
    """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema" targetNamespace="urn:t">
  <xsd:complexType name="Position">
    <xsd:element name="lat" type="xsd:double"/>
    <xsd:element name="lon" type="xsd:double"/>
  </xsd:complexType>
  <xsd:complexType name="Track">
    <xsd:element name="flight" type="xsd:string"/>
    <xsd:element name="where" type="Position"/>
    <xsd:element name="alt" type="xsd:integer" minOccurs="3" maxOccurs="3"/>
    <xsd:element name="speeds" type="xsd:double" minOccurs="0" maxOccurs="*"/>
  </xsd:complexType>
</xsd:schema>
"""
)
TRACK = SCHEMA.complex_type("Track")
POSITION = SCHEMA.complex_type("Position")


def doc(body):
    return parse_document(f"<msg>{body}</msg>")


VALID = (
    "<flight>DL123</flight>"
    "<where><lat>33.6</lat><lon>-84.4</lon></where>"
    "<alt>100</alt><alt>200</alt><alt>300</alt>"
    "<speeds>1.5</speeds><speeds>2.5</speeds>"
)


class TestValidation:
    def test_valid_instance_passes(self):
        validate_instance(doc(VALID), TRACK, SCHEMA)

    def test_empty_dynamic_array_ok(self):
        body = VALID.replace("<speeds>1.5</speeds><speeds>2.5</speeds>", "")
        validate_instance(doc(body), TRACK, SCHEMA)

    def test_missing_required_element(self):
        body = VALID.replace("<flight>DL123</flight>", "")
        with pytest.raises(SchemaValidationError, match="flight"):
            validate_instance(doc(body), TRACK, SCHEMA)

    def test_wrong_fixed_array_count(self):
        body = VALID.replace("<alt>300</alt>", "")
        with pytest.raises(SchemaValidationError, match="at least 3"):
            validate_instance(doc(body), TRACK, SCHEMA)

    def test_bad_primitive_lexical_form(self):
        body = VALID.replace("<lat>33.6</lat>", "<lat>north</lat>")
        with pytest.raises(SchemaValidationError, match="float literal"):
            validate_instance(doc(body), TRACK, SCHEMA)

    def test_unexpected_element_reported(self):
        issues = collect_issues(doc(VALID + "<bogus>1</bogus>"), TRACK, SCHEMA)
        assert any("unexpected element" in issue.message for issue in issues)

    def test_out_of_order_elements_rejected(self):
        body = (
            "<where><lat>1</lat><lon>2</lon></where><flight>DL1</flight>"
            "<alt>1</alt><alt>2</alt><alt>3</alt>"
        )
        issues = collect_issues(doc(body), TRACK, SCHEMA)
        assert issues

    def test_nested_issue_path_includes_parent(self):
        body = VALID.replace("<lon>-84.4</lon>", "")
        issues = collect_issues(doc(body), TRACK, SCHEMA)
        assert any("where/lon" in issue.path for issue in issues)

    def test_primitive_with_children_rejected(self):
        body = VALID.replace("<flight>DL123</flight>", "<flight><x/></flight>")
        issues = collect_issues(doc(body), TRACK, SCHEMA)
        assert any("child elements" in issue.message for issue in issues)

    def test_all_issues_collected_not_just_first(self):
        body = "<flight>DL1</flight>"
        issues = collect_issues(doc(body), TRACK, SCHEMA)
        assert len(issues) >= 2  # missing where and alt


class TestClassification:
    """The paper's use case: decide which format a live message fits."""

    def test_classifies_to_matching_type(self):
        name, issues = classify_instance(doc("<lat>1.0</lat><lon>2.0</lon>"), SCHEMA)
        assert name == "Position"
        assert issues == []

    def test_classifies_to_closest_type(self):
        name, _ = classify_instance(doc(VALID), SCHEMA)
        assert name == "Track"

    def test_partial_match_still_picks_best(self):
        name, issues = classify_instance(doc("<lat>1.0</lat>"), SCHEMA)
        assert name == "Position"
        assert len(issues) == 1

    def test_empty_schema_rejected(self):
        from repro.schema.model import SchemaDocument

        with pytest.raises(SchemaValidationError, match="no complex types"):
            classify_instance(doc(""), SchemaDocument())
