"""HashRing / ClusterMap: stable routing, preference order, wire form."""

import pytest

from repro.cluster import ClusterMap, HashRing, Shard, stable_hash
from repro.errors import DiscoveryError


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("/schemas/a.xsd") == stable_hash("/schemas/a.xsd")

    def test_str_and_bytes_agree(self):
        assert stable_hash("key") == stable_hash(b"key")

    def test_spreads_keys(self):
        values = {stable_hash(f"key{i}") for i in range(1000)}
        assert len(values) == 1000  # no collisions on a small population


class TestHashRing:
    def test_every_key_lands_on_a_shard(self):
        ring = HashRing(["s0", "s1", "s2"])
        for i in range(100):
            assert ring.shard_for(f"/doc{i}") in ("s0", "s1", "s2")

    def test_mapping_is_stable(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s1", "s0"])  # construction order is irrelevant
        for i in range(100):
            assert a.shard_for(f"/doc{i}") == b.shard_for(f"/doc{i}")

    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert ring.shard_for("/anything") == "only"

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(DiscoveryError):
            HashRing([])
        with pytest.raises(DiscoveryError):
            HashRing(["a", "a"])
        with pytest.raises(DiscoveryError):
            HashRing(["a"], vnodes=0)


class TestClusterMap:
    def test_grid_partitions_addresses(self):
        addresses = [f"h:{8000 + i}" for i in range(6)]
        cmap = ClusterMap.grid(addresses, shards=3, replicas=2)
        assert [s.name for s in cmap.shards] == ["s0", "s1", "s2"]
        assert cmap.shard("s1").replicas == ("h:8002", "h:8003")
        assert cmap.addresses() == tuple(sorted(addresses))

    def test_grid_wants_exact_count(self):
        with pytest.raises(DiscoveryError):
            ClusterMap.grid(["h:1", "h:2", "h:3"], shards=2, replicas=2)

    def test_replicas_for_rotates_by_key(self):
        cmap = ClusterMap.grid(
            [f"h:{i}" for i in range(6)], shards=2, replicas=3
        )
        # Preference order is a rotation of the shard's replica list, and
        # different keys of one shard spread their primary around.
        orders = set()
        for i in range(200):
            key = f"/doc{i}"
            replicas = cmap.replicas_for(key)
            assert set(replicas) == set(cmap.shard_for(key).replicas)
            orders.add((cmap.shard_for(key).name, replicas[0]))
        primaries = {primary for _, primary in orders}
        assert len(primaries) >= 4  # most replicas serve as primary somewhere

    def test_shards_of_lists_memberships(self):
        cmap = ClusterMap.grid([f"h:{i}" for i in range(4)], shards=2, replicas=2)
        assert [s.name for s in cmap.shards_of("h:0")] == ["s0"]
        assert cmap.shards_of("h:9") == ()

    def test_json_round_trip(self):
        cmap = ClusterMap.grid(
            [f"h:{i}" for i in range(4)], shards=2, replicas=2, version=7
        )
        clone = ClusterMap.from_json(cmap.to_json())
        assert clone == cmap
        assert clone.version == 7
        for i in range(50):
            key = f"/doc{i}"
            assert clone.shard_for(key).name == cmap.shard_for(key).name

    def test_from_json_rejects_garbage(self):
        with pytest.raises(DiscoveryError):
            ClusterMap.from_json({"shards": "nope"})

    def test_shard_validation(self):
        with pytest.raises(DiscoveryError):
            Shard("s0", ())
        with pytest.raises(DiscoveryError):
            Shard("s0", ("h:1", "h:1"))
        with pytest.raises(DiscoveryError):
            ClusterMap(shards=())

    def test_unknown_shard_name(self):
        cmap = ClusterMap.grid(["h:1"], shards=1, replicas=1)
        with pytest.raises(DiscoveryError):
            cmap.shard("missing")
