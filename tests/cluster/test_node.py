"""ClusterNode: peer endpoints, anti-entropy reconciliation, rebalance."""

import json

import pytest

from repro.cluster import CatalogEntry, ClusterMap, ClusterNode
from repro.errors import DiscoveryError
from repro.metaserver import MetadataServer
from repro.metaserver.catalog import MetadataCatalog
from repro.metaserver.http import HTTPRequest


def entry_json(path="/doc.xsd", text="<a/>", version=1, origin="w", deleted=False):
    return {
        "path": path, "text": text, "version": version,
        "origin": origin, "deleted": deleted,
    }


def post(node, path, payload):
    body = json.dumps(payload).encode()
    return node.handle(HTTPRequest("POST", path, {}, body))


def get(node, path):
    return node.handle(HTTPRequest("GET", path))


def single_node(address="h:1"):
    cmap = ClusterMap.grid([address], shards=1, replicas=1)
    return ClusterNode("n0", address, cmap)


class TestEndpoints:
    def test_info(self):
        node = single_node()
        response = get(node, "/cluster/info")
        assert response.status == 200
        info = json.loads(response.body)
        assert info["node"] == "n0"
        assert info["shards"] == ["s0"]
        assert info["entries"] == 0

    def test_post_entries_applies_and_counts(self):
        node = single_node()
        response = post(node, "/cluster/entries", {
            "entries": [entry_json(version=1), entry_json(version=1)],
        })
        assert response.status == 200
        result = json.loads(response.body)
        assert result == {"node": "n0", "applied": 1, "ignored": 1}

    def test_digest_and_entries_round_trip(self):
        node = single_node()
        post(node, "/cluster/entries", {"entries": [entry_json()]})
        digest = json.loads(get(node, "/cluster/digest?shard=s0").body)
        assert digest["count"] == 1
        assert digest["digest"] == node.store.digest(node.cluster_map, "s0")
        dump = json.loads(get(node, "/cluster/entries?shard=s0").body)
        assert [CatalogEntry.from_json(e) for e in dump["entries"]] == (
            node.store.entries()
        )

    def test_unknown_shard_is_400(self):
        node = single_node()
        assert get(node, "/cluster/digest?shard=nope").status == 400
        assert get(node, "/cluster/digest").status == 400

    def test_malformed_entry_batch_is_400(self):
        node = single_node()
        assert post(node, "/cluster/entries", {"entries": [{"path": "x"}]}).status == 400
        raw = node.handle(HTTPRequest("POST", "/cluster/entries", {}, b"not json"))
        assert raw.status == 400

    def test_unknown_cluster_path_is_404(self):
        assert get(single_node(), "/cluster/whatever").status == 404

    def test_served_through_catalog_respond(self):
        """The endpoints work through the ordinary server request path."""
        node = single_node()
        raw = HTTPRequest("GET", "/cluster/info", {"Host": "h"}).render()
        response = node.catalog.respond(raw)
        assert response.status == 200
        assert json.loads(response.body)["node"] == "n0"

    def test_post_outside_cluster_is_still_405(self):
        node = single_node()
        raw = HTTPRequest("POST", "/schemas/x.xsd", {"Host": "h"}, b"body").render()
        assert node.catalog.respond(raw).status == 405

    def test_catalog_without_node_keeps_404_for_cluster_paths(self):
        catalog = MetadataCatalog()
        raw = HTTPRequest("GET", "/cluster/info", {"Host": "h"}).render()
        assert catalog.respond(raw).status == 404


class TestMapInstall:
    def test_newer_map_installs(self):
        node = single_node("h:1")
        new_map = ClusterMap.grid(["h:1"], shards=1, replicas=1, version=2)
        response = post(node, "/cluster/map", new_map.to_json())
        assert json.loads(response.body)["installed"] is True
        assert node.cluster_map.version == 2

    def test_stale_map_is_refused(self):
        node = single_node("h:1")
        stale = ClusterMap.grid(["h:1"], shards=1, replicas=1, version=1)
        response = post(node, "/cluster/map", stale.to_json())
        assert json.loads(response.body)["installed"] is False
        assert node.cluster_map.version == 1


class LiveCluster:
    """S×R real threaded servers with attached nodes, for sync tests."""

    def __init__(self, shards, replicas, **node_kwargs):
        count = shards * replicas
        self.catalogs = [MetadataCatalog() for _ in range(count)]
        self.servers = [
            MetadataServer(catalog=catalog) for catalog in self.catalogs
        ]
        self.addresses = ["%s:%d" % server.address for server in self.servers]
        self.cluster_map = ClusterMap.grid(
            self.addresses, shards=shards, replicas=replicas
        )
        self.nodes = [
            ClusterNode(
                f"n{i}", self.addresses[i], self.cluster_map,
                catalog=self.catalogs[i], **node_kwargs,
            )
            for i in range(count)
        ]
        for server in self.servers:
            server.start()

    def stop(self):
        for server in self.servers:
            server.stop()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def digests(self):
        """shard name → set of digests across its replicas."""
        by_shard = {}
        for i, node in enumerate(self.nodes):
            for shard in self.cluster_map.shards_of(self.addresses[i]):
                by_shard.setdefault(shard.name, set()).add(
                    node.store.digest(self.cluster_map, shard.name)
                )
        return by_shard


class TestAntiEntropy:
    def test_clean_round_reports_in_sync(self):
        with LiveCluster(1, 2) as cluster:
            report = cluster.nodes[0].anti_entropy_round()
            assert report["peers_checked"] == 1
            assert report["in_sync"] == 1
            assert report["errors"] == 0

    def test_divergent_peers_converge_in_one_round(self):
        with LiveCluster(1, 2) as cluster:
            a, b = cluster.nodes
            a.store.apply(CatalogEntry("/only-a.xsd", "<a/>", 1, "w"))
            b.store.apply(CatalogEntry("/only-b.xsd", "<b/>", 1, "w"))
            report = a.anti_entropy_round()
            assert report["synced"] == 1
            assert all(len(d) == 1 for d in cluster.digests().values())
            assert b.store.get("/only-a.xsd") is not None
            assert a.store.get("/only-b.xsd") is not None

    def test_partitioned_peer_degrades_then_recovers(self):
        with LiveCluster(1, 2) as cluster:
            a, b = cluster.nodes
            a.store.apply(CatalogEntry("/during.xsd", "<x/>", 1, "w"))
            # Partition: peer b's server is down.
            host, port = cluster.addresses[1].split(":")
            cluster.servers[1].stop()
            report = a.anti_entropy_round()
            assert report["errors"] == 1
            assert a.peer_errors == 1
            # Heal the partition: same port, same catalog.
            cluster.servers[1] = MetadataServer(
                host, int(port), catalog=cluster.catalogs[1]
            ).start()
            report = a.anti_entropy_round()
            assert report["errors"] == 0
            assert b.store.get("/during.xsd") is not None

    def test_background_loop_syncs_without_manual_rounds(self):
        import time

        with LiveCluster(1, 2, interval=0.05) as cluster:
            a, b = cluster.nodes
            a.store.apply(CatalogEntry("/bg.xsd", "<bg/>", 1, "w"))
            with a:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if b.store.get("/bg.xsd") is not None:
                        break
                    time.sleep(0.02)
            assert b.store.get("/bg.xsd") is not None


class TestRebalance:
    def test_disowned_entries_stream_to_new_owner(self):
        with LiveCluster(2, 1) as cluster:
            node_a, node_b = cluster.nodes
            # Seed both shards through direct application.
            paths = [f"/doc{i}.xsd" for i in range(16)]
            for i, path in enumerate(paths):
                owner = cluster.cluster_map.shard_for(path)
                node = cluster.nodes[
                    cluster.addresses.index(owner.replicas[0])
                ]
                node.store.apply(CatalogEntry(path, f"<v{i}/>", 1, "w"))
            # New map: shard s1 leaves; everything belongs to s0.
            new_map = ClusterMap.grid(
                [cluster.addresses[0]], shards=1, replicas=1, version=2
            )
            moved_from_b = [
                e.path for e in node_b.store.entries()
            ]
            report = node_b.set_cluster_map(new_map)
            assert report["moved"] == len(moved_from_b)
            assert report["kept"] == 0
            assert len(node_b.store) == 0
            node_a.set_cluster_map(new_map)
            for path in paths:
                assert node_a.store.get(path) is not None

    def test_failed_handoff_keeps_entries(self):
        with LiveCluster(2, 1) as cluster:
            node_b = cluster.nodes[1]
            node_b.store.apply(CatalogEntry("/keep.xsd", "<k/>", 1, "w"))
            # s0's replica is down: hand-off must fail and keep the entry.
            cluster.servers[0].stop()
            new_map = ClusterMap.grid(
                [cluster.addresses[0]], shards=1, replicas=1, version=2
            )
            report = node_b.set_cluster_map(new_map)
            assert report["kept"] == 1
            assert report["dropped"] == 0
            assert node_b.store.get("/keep.xsd") is not None
