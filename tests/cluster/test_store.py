"""ReplicaStore: last-writer-wins merge, tombstones, per-shard digests."""

from repro.cluster import CatalogEntry, ClusterMap, ReplicaStore
from repro.metaserver.catalog import MetadataCatalog
from repro.metaserver.http import HTTPRequest

CMAP = ClusterMap.grid(["h:1", "h:2"], shards=2, replicas=1)


def entry(path="/doc.xsd", text="<a/>", version=1, origin="w1", deleted=False):
    return CatalogEntry(path, text, version, origin, deleted)


def lookup(catalog: MetadataCatalog, path: str):
    return catalog.lookup(HTTPRequest("GET", path))


class TestLastWriterWins:
    def test_higher_version_wins(self):
        store = ReplicaStore()
        assert store.apply(entry(version=1, text="old"))
        assert store.apply(entry(version=2, text="new"))
        assert store.get("/doc.xsd").text == "new"

    def test_lower_version_is_ignored(self):
        store = ReplicaStore()
        store.apply(entry(version=5, text="current"))
        assert not store.apply(entry(version=3, text="stale"))
        assert store.get("/doc.xsd").text == "current"
        assert store.ignored == 1

    def test_equal_stamp_is_idempotent(self):
        store = ReplicaStore()
        assert store.apply(entry(version=1))
        assert not store.apply(entry(version=1))  # re-delivery
        assert store.applied == 1

    def test_origin_breaks_version_ties(self):
        store = ReplicaStore()
        store.apply(entry(version=1, origin="aaa", text="first"))
        assert store.apply(entry(version=1, origin="zzz", text="second"))
        assert store.get("/doc.xsd").text == "second"
        # and the merge is order-independent
        other = ReplicaStore()
        other.apply(entry(version=1, origin="zzz", text="second"))
        other.apply(entry(version=1, origin="aaa", text="first"))
        assert other.get("/doc.xsd").text == "second"

    def test_merge_order_cannot_matter(self):
        batch = [
            entry(version=2, origin="b", text="v2b"),
            entry(version=1, origin="z", text="v1z"),
            entry(version=2, origin="a", text="v2a"),
        ]
        forward, backward = ReplicaStore(), ReplicaStore()
        forward.apply_many(batch)
        backward.apply_many(list(reversed(batch)))
        assert forward.get("/doc.xsd") == backward.get("/doc.xsd")
        assert forward.get("/doc.xsd").text == "v2b"


class TestCatalogProjection:
    def test_live_entry_is_served(self):
        store = ReplicaStore()
        store.apply(entry(text="<xsd/>"))
        assert lookup(store.catalog, "/doc.xsd").status == 200
        assert lookup(store.catalog, "/doc.xsd").body == b"<xsd/>"

    def test_tombstone_unpublishes(self):
        store = ReplicaStore()
        store.apply(entry(version=1))
        store.apply(entry(version=2, deleted=True))
        assert lookup(store.catalog, "/doc.xsd").status == 404
        # tombstone survives in the store for future merges
        assert store.get("/doc.xsd").deleted

    def test_stale_write_after_tombstone_stays_dead(self):
        store = ReplicaStore()
        store.apply(entry(version=3, deleted=True))
        store.apply(entry(version=2, text="resurrection attempt"))
        assert lookup(store.catalog, "/doc.xsd").status == 404

    def test_drop_forgets_and_unpublishes(self):
        store = ReplicaStore()
        store.apply(entry())
        assert store.drop("/doc.xsd")
        assert store.get("/doc.xsd") is None
        assert lookup(store.catalog, "/doc.xsd").status == 404
        assert not store.drop("/doc.xsd")  # already gone


class TestDigests:
    def test_converged_replicas_have_equal_digests(self):
        a, b = ReplicaStore(), ReplicaStore()
        for i in range(10):
            e = entry(path=f"/doc{i}.xsd", text=f"<v{i}/>", version=i + 1)
            a.apply(e)
        for e in reversed(a.entries()):  # arrival order must not matter
            b.apply(e)
        for shard in CMAP.shards:
            assert a.digest(CMAP, shard.name) == b.digest(CMAP, shard.name)

    def test_divergence_changes_the_owning_shards_digest_only(self):
        a, b = ReplicaStore(), ReplicaStore()
        for store in (a, b):
            store.apply(entry(path="/base.xsd"))
        extra = entry(path="/extra.xsd", version=9)
        a.apply(extra)
        owner = CMAP.shard_for("/extra.xsd").name
        other = next(s.name for s in CMAP.shards if s.name != owner)
        assert a.digest(CMAP, owner) != b.digest(CMAP, owner)
        assert a.digest(CMAP, other) == b.digest(CMAP, other)

    def test_tombstones_count_toward_the_digest(self):
        a, b = ReplicaStore(), ReplicaStore()
        a.apply(entry(version=1))
        a.apply(entry(version=2, deleted=True))
        b.apply(entry(version=1))
        shard = CMAP.shard_for("/doc.xsd").name
        assert a.digest(CMAP, shard) != b.digest(CMAP, shard)

    def test_entries_for_shard_partitions_the_store(self):
        store = ReplicaStore()
        paths = [f"/doc{i}.xsd" for i in range(20)]
        for i, path in enumerate(paths):
            store.apply(entry(path=path, version=i + 1))
        partitioned = [
            e.path
            for shard in CMAP.shards
            for e in store.entries_for_shard(CMAP, shard.name)
        ]
        assert sorted(partitioned) == sorted(paths)
