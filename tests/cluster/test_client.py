"""ClusterClient: quorum fan-out, read failover, counters, resilience wiring."""

import pytest

from repro.cluster import ClusterClient, ClusterMap, QuorumWriteError, majority
from repro.errors import DiscoveryError
from repro.metaserver import MetadataClient, MetadataServer, RetryPolicy
from repro.metaserver.catalog import MetadataCatalog
from repro.cluster import ClusterNode
from repro.workloads import ASDOFF_B_SCHEMA

from tests.cluster.test_node import LiveCluster


def fast_client(**kwargs):
    """A MetadataClient that fails fast (no real backoff) for tests."""
    kwargs.setdefault("retry", RetryPolicy(max_attempts=2, base_delay=0.0))
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault("sleep", lambda _: None)
    return MetadataClient(**kwargs)


class TestQuorumWrites:
    def test_full_ack_outcome_ok(self):
        with LiveCluster(2, 2) as cluster:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(), write_quorum=2
            )
            result = client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            assert result.outcome == "ok"
            assert result.acks == result.replicas == 2
            # every replica of the owning shard serves the document
            for replica in cluster.cluster_map.shard(result.shard).replicas:
                node = cluster.nodes[cluster.addresses.index(replica)]
                assert node.store.get("/schemas/doc.xsd") is not None

    def test_partial_quorum_still_succeeds(self):
        with LiveCluster(1, 2) as cluster:
            cluster.servers[1].stop()
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(), write_quorum=1
            )
            result = client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            assert result.outcome == "partial"
            assert result.acks == 1
            assert len(result.failures) == 1

    def test_missed_quorum_raises_with_detail(self):
        with LiveCluster(1, 2) as cluster:
            cluster.stop()
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(), write_quorum=2
            )
            with pytest.raises(QuorumWriteError) as excinfo:
                client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            result = excinfo.value.result
            assert result.outcome == "failed"
            assert result.acks == 0
            assert len(result.failures) == 2
            assert client.stats()["cluster"]["quorum_failed"] == 1

    def test_default_quorum_is_majority(self):
        cmap = ClusterMap.grid([f"h:{i}" for i in range(3)], shards=1, replicas=3)
        client = ClusterClient(cmap)
        assert client.write_quorum == majority(3) == 2

    def test_quorum_bounds_validated(self):
        cmap = ClusterMap.grid(["h:1", "h:2"], shards=1, replicas=2)
        with pytest.raises(DiscoveryError):
            ClusterClient(cmap, write_quorum=3)
        with pytest.raises(DiscoveryError):
            ClusterClient(cmap, write_quorum=0)

    def test_unpublish_replicates_tombstone(self):
        with LiveCluster(1, 2) as cluster:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(), write_quorum=2
            )
            client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            client.unpublish("/schemas/doc.xsd")
            for node in cluster.nodes:
                assert node.store.get("/schemas/doc.xsd").deleted
            with pytest.raises(DiscoveryError):
                client.get("/schemas/doc.xsd")

    def test_paths_must_be_absolute(self):
        cmap = ClusterMap.grid(["h:1"], shards=1, replicas=1)
        with pytest.raises(DiscoveryError):
            ClusterClient(cmap).publish("doc.xsd", "<a/>")


class TestReadFailover:
    def test_read_prefers_primary_then_falls_over(self):
        with LiveCluster(1, 2) as cluster:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(ttl=0), write_quorum=2
            )
            client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            assert client.get_bytes("/schemas/doc.xsd")  # both alive
            # Kill the preferred replica for this key.
            _, replicas = client.router.route("/schemas/doc.xsd")
            cluster.servers[cluster.addresses.index(replicas[0])].stop()
            body = client.get_bytes("/schemas/doc.xsd")
            assert body.decode("utf-8") == ASDOFF_B_SCHEMA
            stats = client.stats()["cluster"]
            assert stats["replica_failovers"] >= 1
            assert stats["shard_routes"] >= 2

    def test_all_replicas_down_raises(self):
        with LiveCluster(1, 2) as cluster:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(ttl=0), write_quorum=1
            )
            cluster.stop()
            with pytest.raises(DiscoveryError, match="all 2 replicas"):
                client.get("/schemas/doc.xsd")

    def test_stale_cache_carries_reads_through_total_outage(self):
        with LiveCluster(1, 2) as cluster:
            # ttl tiny so entries expire instantly; stale-serve unbounded
            meta = fast_client(ttl=0.01, stale_ttl=None)
            client = ClusterClient(
                cluster.cluster_map, client=meta, write_quorum=2
            )
            client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            first = client.get("/schemas/doc.xsd")
            assert not first.stale
            import time

            time.sleep(0.05)  # let the cache entry expire
            cluster.stop()  # total outage of the shard
            result = client.get("/schemas/doc.xsd")
            assert result.stale
            assert result.body.decode("utf-8") == ASDOFF_B_SCHEMA
            assert client.stats()["cluster"]["stale_failover_serves"] == 1

    def test_get_schema_parses_through_failover(self):
        with LiveCluster(1, 2) as cluster:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(ttl=0), write_quorum=2
            )
            client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
            _, replicas = client.router.route("/schemas/doc.xsd")
            cluster.servers[cluster.addresses.index(replicas[0])].stop()
            schema = client.get_schema("/schemas/doc.xsd")
            assert schema.target_namespace is not None or schema is not None

    def test_diverged_replica_404_falls_over(self):
        """A replica that missed a write 404s; the read must fall over."""
        with LiveCluster(1, 2) as cluster:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(ttl=0), write_quorum=1
            )
            # Apply the entry on the *fallback* replica only, so the
            # preferred one answers 404 (it never saw the write).
            _, replicas = client.router.route("/schemas/doc.xsd")
            fallback_node = cluster.nodes[cluster.addresses.index(replicas[1])]
            from repro.cluster import CatalogEntry

            fallback_node.store.apply(
                CatalogEntry("/schemas/doc.xsd", ASDOFF_B_SCHEMA, 1, "w")
            )
            body = client.get_bytes("/schemas/doc.xsd")
            assert body.decode("utf-8") == ASDOFF_B_SCHEMA
            assert client.stats()["cluster"]["replica_failovers"] == 1


class TestStatsSurface:
    def test_single_server_stats_carry_zeroed_cluster_section(self):
        stats = MetadataClient().stats()
        assert stats["cluster"] == {
            "shard_routes": 0,
            "replica_failovers": 0,
            "quorum_ok": 0,
            "quorum_partial": 0,
            "quorum_failed": 0,
            "stale_failover_serves": 0,
        }

    def test_cluster_counters_reach_metrics_endpoint(self):
        from repro.obs import Registry, set_registry

        registry = set_registry(Registry())
        try:
            with LiveCluster(1, 2) as cluster:
                client = ClusterClient(
                    cluster.cluster_map, client=fast_client(), write_quorum=2
                )
                client.publish("/schemas/doc.xsd", ASDOFF_B_SCHEMA)
                client.get_bytes("/schemas/doc.xsd")
                from repro.metaserver import http_get

                rendered = http_get(
                    f"http://{cluster.addresses[0]}/metrics"
                ).decode("utf-8")
            assert "cluster_client_quorum_writes_total" in rendered
            assert "cluster_client_routes_total" in rendered
        finally:
            set_registry(Registry())
