"""Unit tests for architecture models (repro.arch.model)."""

import struct

import pytest

from repro.arch import (
    ALPHA,
    SPARC_32,
    SPARC_64,
    X86_32,
    X86_64,
    ArchitectureModel,
    CType,
    TypeKind,
    all_architectures,
    get_architecture,
)
from repro.arch.model import make_types
from repro.errors import ArchError


class TestCType:
    def test_valid_ctype(self):
        t = CType("int", TypeKind.SIGNED_INT, 4, 4)
        assert t.size == 4
        assert t.alignment == 4

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ArchError):
            CType("bad", TypeKind.SIGNED_INT, 0, 1)

    def test_rejects_nonpositive_alignment(self):
        with pytest.raises(ArchError):
            CType("bad", TypeKind.SIGNED_INT, 4, 0)

    def test_rejects_size_not_multiple_of_alignment(self):
        with pytest.raises(ArchError):
            CType("bad", TypeKind.SIGNED_INT, 6, 4)


class TestArchitectureModelConstruction:
    def test_rejects_bad_byte_order(self):
        with pytest.raises(ArchError):
            ArchitectureModel("weird", "middle", 4, make_types())

    def test_rejects_bad_pointer_size(self):
        with pytest.raises(ArchError):
            ArchitectureModel("weird", "little", 3, make_types())

    def test_rejects_missing_required_types(self):
        types = make_types()
        del types["double"]
        with pytest.raises(ArchError):
            ArchitectureModel("weird", "little", 4, types)


class TestTypeLookup:
    def test_basic_sizes_x86_32(self):
        assert X86_32.sizeof("char") == 1
        assert X86_32.sizeof("short") == 2
        assert X86_32.sizeof("int") == 4
        assert X86_32.sizeof("long") == 4
        assert X86_32.sizeof("long long") == 8
        assert X86_32.sizeof("float") == 4
        assert X86_32.sizeof("double") == 8

    def test_lp64_long_is_eight_bytes(self):
        for model in (X86_64, SPARC_64, ALPHA):
            assert model.sizeof("long") == 8
            assert model.pointer_size == 8

    def test_ilp32_long_is_four_bytes(self):
        assert SPARC_32.sizeof("long") == 4
        assert SPARC_32.pointer_size == 4

    def test_unsigned_prefix_resolves(self):
        t = X86_32.ctype("unsigned long")
        assert t.kind == TypeKind.UNSIGNED_INT
        assert t.size == 4

    def test_signed_prefix_resolves(self):
        t = X86_64.ctype("signed int")
        assert t.kind == TypeKind.SIGNED_INT
        assert t.size == 4

    def test_pointer_spelling_resolves(self):
        t = X86_32.ctype("char*")
        assert t.kind == TypeKind.POINTER
        assert t.size == 4
        t64 = X86_64.ctype("char*")
        assert t64.size == 8

    def test_unknown_type_raises(self):
        with pytest.raises(ArchError):
            X86_32.ctype("quaternion")

    def test_i386_double_alignment_is_four(self):
        assert X86_32.alignof("double") == 4
        assert X86_32.alignof("long long") == 4

    def test_sparc_double_alignment_is_eight(self):
        assert SPARC_32.alignof("double") == 8


class TestScalarPacking:
    def test_little_endian_int(self):
        assert X86_32.pack_scalar(TypeKind.SIGNED_INT, 4, 1) == b"\x01\x00\x00\x00"

    def test_big_endian_int(self):
        assert SPARC_32.pack_scalar(TypeKind.SIGNED_INT, 4, 1) == b"\x00\x00\x00\x01"

    def test_roundtrip_all_kinds(self):
        cases = [
            (TypeKind.SIGNED_INT, 4, -12345),
            (TypeKind.SIGNED_INT, 8, -(2**40)),
            (TypeKind.UNSIGNED_INT, 4, 4000000000),
            (TypeKind.FLOAT, 8, 3.140625),
            (TypeKind.FLOAT, 4, 0.5),
            (TypeKind.BOOLEAN, 1, True),
            (TypeKind.ENUMERATION, 4, 7),
        ]
        for model in (X86_32, SPARC_64):
            for kind, size, value in cases:
                packed = model.pack_scalar(kind, size, value)
                assert len(packed) == size
                assert model.unpack_scalar(kind, size, packed) == value

    def test_char_packs_from_str_and_int(self):
        assert X86_32.pack_scalar(TypeKind.CHAR, 1, "A") == b"A"
        assert X86_32.pack_scalar(TypeKind.CHAR, 1, 65) == b"A"

    def test_pointer_packs_as_unsigned_of_pointer_width(self):
        assert X86_32.pack_scalar(TypeKind.POINTER, 4, 0xDEAD) == struct.pack("<I", 0xDEAD)
        assert X86_64.pack_scalar(TypeKind.POINTER, 8, 0xDEAD) == struct.pack("<Q", 0xDEAD)

    def test_endianness_differs_between_models(self):
        le = X86_32.pack_scalar(TypeKind.SIGNED_INT, 4, 0x01020304)
        be = SPARC_32.pack_scalar(TypeKind.SIGNED_INT, 4, 0x01020304)
        assert le == bytes(reversed(be))

    def test_pack_out_of_range_raises(self):
        with pytest.raises(ArchError):
            X86_32.pack_scalar(TypeKind.UNSIGNED_INT, 4, -1)

    def test_unpack_truncated_raises(self):
        with pytest.raises(ArchError):
            X86_32.unpack_scalar(TypeKind.SIGNED_INT, 4, b"\x01\x02")

    def test_unsupported_scalar_shape_raises(self):
        with pytest.raises(ArchError):
            X86_32.struct_code(TypeKind.FLOAT, 2)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_architecture("sparc_32") is SPARC_32

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ArchError, match="x86_32"):
            get_architecture("vax")

    def test_all_architectures_unique_tags(self):
        tags = [m.tag() for m in all_architectures()]
        assert len(tags) == len(set(tags))

    def test_tag_contains_endianness_and_pointer_width(self):
        assert "be" in SPARC_32.tag()
        assert "le" in X86_64.tag()
        assert "p8" in X86_64.tag()

    def test_models_compare_by_value(self):
        clone = ArchitectureModel(
            name="sparc_32",
            byte_order="big",
            pointer_size=4,
            types=make_types(long=4),
        )
        assert clone == SPARC_32
        assert clone is not SPARC_32
