"""Unit tests for the C declaration parser (repro.arch.cdecl)."""

import pytest

from repro.arch import SPARC_32, X86_32
from repro.arch.cdecl import build_layouts, parse_structs
from repro.errors import ArchError

STRUCT_A = """
typedef struct asdOff_s {
    char* cntrId;
    char* arln;
    int fltNum;
    char* equip;
    char* org;
    char* dest;
    unsigned long off;
    unsigned long eta;
} asdOff;
"""

STRUCT_B = """
typedef struct asdOff_s {
    char* cntrId;
    char* arln;
    int fltNum;
    char* equip;
    char* org;
    char* dest;
    unsigned long off[5];
    unsigned long *eta;
    int eta_count;
} asdOff;
"""

STRUCTS_CD = STRUCT_B + """
typedef struct threeAsdOff_s {
    asdOff one;
    double bart;
    asdOff two;
    double lisa;
    asdOff three;
} threeAsdOffs;
"""


class TestParsing:
    def test_parses_structure_a(self):
        defs = parse_structs(STRUCT_A)
        assert list(defs) == ["asdOff"]
        fields = defs["asdOff"].fields
        assert [f.name for f in fields] == [
            "cntrId", "arln", "fltNum", "equip", "org", "dest", "off", "eta",
        ]
        assert fields[0].is_pointer
        assert not fields[2].is_pointer
        assert fields[6].type_name == "unsigned long"

    def test_parses_static_array(self):
        defs = parse_structs(STRUCT_B)
        off = next(f for f in defs["asdOff"].fields if f.name == "off")
        assert off.count == 5
        assert not off.is_pointer

    def test_parses_pointer_with_space_before_name(self):
        defs = parse_structs(STRUCT_B)
        eta = next(f for f in defs["asdOff"].fields if f.name == "eta")
        assert eta.is_pointer
        assert eta.count is None

    def test_parses_multiple_typedefs_in_order(self):
        defs = parse_structs(STRUCTS_CD)
        assert list(defs) == ["asdOff", "threeAsdOffs"]

    def test_strips_line_and_block_comments(self):
        src = """
        typedef struct s_ { // a line comment with int bogus;
            int x; /* block
                      comment */
            double y;
        } s;
        """
        defs = parse_structs(src)
        assert [f.name for f in defs["s"].fields] == ["x", "y"]

    def test_duplicate_typedef_rejected(self):
        with pytest.raises(ArchError, match="duplicate"):
            parse_structs(STRUCT_A + STRUCT_A)

    def test_empty_struct_rejected(self):
        with pytest.raises(ArchError, match="no members"):
            parse_structs("typedef struct e_ { } e;")

    def test_garbage_member_rejected(self):
        with pytest.raises(ArchError, match="cannot parse"):
            parse_structs("typedef struct s_ { int x[][2]; } s;")

    def test_non_struct_source_rejected(self):
        with pytest.raises(ArchError, match="no typedef"):
            parse_structs("int main(void) { return 0; }")


class TestBuildLayouts:
    def test_paper_sizes_on_sparc32(self):
        layouts = build_layouts(parse_structs(STRUCTS_CD), SPARC_32)
        assert layouts["asdOff"].size == 52
        outer = layouts["threeAsdOffs"]
        # The paper's 180 B figure excludes tail padding; see
        # tests/arch/test_layout.py for the full rationale.
        assert outer.size - outer.trailing_padding == 180

    def test_structure_a_size(self):
        layouts = build_layouts(parse_structs(STRUCT_A), X86_32)
        assert layouts["asdOff"].size == 32

    def test_nested_member_resolves_to_layout(self):
        layouts = build_layouts(parse_structs(STRUCTS_CD), SPARC_32)
        slot = layouts["threeAsdOffs"].slot("one")
        assert slot.is_nested
        assert slot.nested.name == "asdOff"

    def test_pointer_members_are_pointer_sized(self):
        layouts = build_layouts(parse_structs(STRUCT_B), X86_32)
        assert layouts["asdOff"].slot("eta").size == 4
        assert layouts["asdOff"].slot("eta").is_pointer
