"""Unit tests for the struct layout engine (repro.arch.layout).

The key external anchors are:

- the paper's Table 1 structure sizes (32 / 52 / 180 bytes) for the
  Appendix A structures on an ILP32 big-endian machine (SPARC); and
- CPython's :mod:`ctypes`, which exposes the *host* compiler's layout
  rules, letting us cross-check the engine against a real C ABI.
"""

import ctypes

import pytest

from repro.arch import (
    NATIVE,
    SPARC_32,
    X86_32,
    X86_64,
    FieldDecl,
    layout_struct,
)
from repro.arch.layout import naive_layout_size
from repro.errors import ArchError


def asdoff_a_decls():
    """Structure A of the paper's Appendix: no arrays, no nesting."""
    return [
        FieldDecl("cntrId", "char*"),
        FieldDecl("arln", "char*"),
        FieldDecl("fltNum", "int"),
        FieldDecl("equip", "char*"),
        FieldDecl("org", "char*"),
        FieldDecl("dest", "char*"),
        FieldDecl("off", "unsigned long"),
        FieldDecl("eta", "unsigned long"),
    ]


def asdoff_b_decls():
    """Structure B: static array plus dynamically-allocated array."""
    return [
        FieldDecl("cntrId", "char*"),
        FieldDecl("arln", "char*"),
        FieldDecl("fltNum", "int"),
        FieldDecl("equip", "char*"),
        FieldDecl("org", "char*"),
        FieldDecl("dest", "char*"),
        FieldDecl("off", "unsigned long", count=5),
        FieldDecl("eta", "unsigned long*"),
        FieldDecl("eta_count", "int"),
    ]


class TestPaperStructureSizes:
    """Table 1's Structure Size column, byte for byte."""

    def test_structure_a_is_32_bytes_on_ilp32(self):
        for arch in (X86_32, SPARC_32):
            assert layout_struct(arch, "asdOff", asdoff_a_decls()).size == 32

    def test_structure_b_is_52_bytes_on_ilp32(self):
        for arch in (X86_32, SPARC_32):
            assert layout_struct(arch, "asdOff", asdoff_b_decls()).size == 52

    def test_structure_d_is_180_bytes_on_sparc32(self):
        """The paper reports 180 B; a SysV SPARC compiler's ``sizeof`` is
        184 because the struct is tail-padded to 8-byte alignment.  The
        paper's figure is exactly the layout *without* tail padding (the
        offset past the last member), so that is what we anchor here —
        all three Table 1 sizes (32/52/180) match this interpretation."""
        inner = layout_struct(SPARC_32, "asdOff", asdoff_b_decls())
        outer = layout_struct(
            SPARC_32,
            "threeAsdOffs",
            [
                FieldDecl("one", inner),
                FieldDecl("bart", "double"),
                FieldDecl("two", inner),
                FieldDecl("lisa", "double"),
                FieldDecl("three", inner),
            ],
        )
        assert outer.size == 184
        assert outer.size - outer.trailing_padding == 180

    def test_structure_d_differs_on_i386_due_to_double_packing(self):
        """The same declaration is 172 bytes under the i386 SysV ABI —
        exactly the kind of cross-architecture divergence NDR must carry
        metadata for."""
        inner = layout_struct(X86_32, "asdOff", asdoff_b_decls())
        outer = layout_struct(
            X86_32,
            "threeAsdOffs",
            [
                FieldDecl("one", inner),
                FieldDecl("bart", "double"),
                FieldDecl("two", inner),
                FieldDecl("lisa", "double"),
                FieldDecl("three", inner),
            ],
        )
        assert outer.size == 172


class TestPaddingRules:
    def test_char_then_int_pads_to_alignment(self):
        lay = layout_struct(X86_64, "s", [FieldDecl("c", "char"), FieldDecl("i", "int")])
        assert lay.offsetof("c") == 0
        assert lay.offsetof("i") == 4
        assert lay.size == 8
        assert lay.total_padding == 3

    def test_tail_padding_rounds_struct_size(self):
        lay = layout_struct(X86_64, "s", [FieldDecl("d", "double"), FieldDecl("c", "char")])
        assert lay.size == 16
        assert lay.trailing_padding == 7

    def test_struct_alignment_is_max_member_alignment(self):
        lay = layout_struct(X86_64, "s", [FieldDecl("c", "char"), FieldDecl("d", "double")])
        assert lay.alignment == 8

    def test_array_member_size_and_alignment(self):
        lay = layout_struct(
            X86_64, "s", [FieldDecl("c", "char"), FieldDecl("a", "int", count=3)]
        )
        slot = lay.slot("a")
        assert slot.offset == 4
        assert slot.size == 12
        assert slot.element_size == 4
        assert slot.is_array

    def test_nested_struct_alignment_propagates(self):
        inner = layout_struct(X86_64, "inner", [FieldDecl("d", "double")])
        outer = layout_struct(
            X86_64, "outer", [FieldDecl("c", "char"), FieldDecl("in_", inner)]
        )
        assert outer.offsetof("in_") == 8
        assert outer.alignment == 8

    def test_empty_struct_has_zero_size(self):
        lay = layout_struct(X86_64, "empty", [])
        assert lay.size == 0
        assert len(lay) == 0

    def test_naive_layout_disagrees_where_padding_exists(self):
        decls = [FieldDecl("c", "char"), FieldDecl("i", "int")]
        lay = layout_struct(X86_64, "s", decls)
        assert naive_layout_size(X86_64, decls) == 5
        assert lay.size == 8


class TestAgainstHostCompiler:
    """Cross-check against the real C ABI via ctypes."""

    CASES = [
        ("mixed", [("a", ctypes.c_char, "char"), ("b", ctypes.c_double, "double"),
                   ("c", ctypes.c_int, "int")]),
        ("ints", [("a", ctypes.c_short, "short"), ("b", ctypes.c_longlong, "long long"),
                  ("c", ctypes.c_byte, "signed char")]),
        ("floats", [("a", ctypes.c_float, "float"), ("b", ctypes.c_char, "char"),
                    ("c", ctypes.c_double, "double"), ("d", ctypes.c_char, "char")]),
        ("pointers", [("a", ctypes.c_char_p, "char*"), ("b", ctypes.c_char, "char"),
                      ("c", ctypes.c_void_p, "void*")]),
    ]

    @pytest.mark.parametrize("name,members", CASES, ids=[c[0] for c in CASES])
    def test_layout_matches_ctypes(self, name, members):
        ctype_struct = type(
            "S", (ctypes.Structure,), {"_fields_": [(n, t) for n, t, _ in members]}
        )
        decls = [FieldDecl(n, spelled) for n, _, spelled in members]
        lay = layout_struct(NATIVE, name, decls)
        assert lay.size == ctypes.sizeof(ctype_struct)
        for member_name, _, __ in members:
            assert lay.offsetof(member_name) == getattr(ctype_struct, member_name).offset

    def test_array_layout_matches_ctypes(self):
        class S(ctypes.Structure):
            _fields_ = [("a", ctypes.c_char), ("b", ctypes.c_int * 5), ("c", ctypes.c_char)]

        lay = layout_struct(
            NATIVE,
            "S",
            [FieldDecl("a", "char"), FieldDecl("b", "int", count=5), FieldDecl("c", "char")],
        )
        assert lay.size == ctypes.sizeof(S)
        assert lay.offsetof("b") == S.b.offset


class TestLayoutErrors:
    def test_duplicate_field_rejected(self):
        with pytest.raises(ArchError, match="duplicate"):
            layout_struct(X86_32, "s", [FieldDecl("x", "int"), FieldDecl("x", "char")])

    def test_invalid_field_name_rejected(self):
        with pytest.raises(ArchError):
            FieldDecl("not a name!", "int")

    def test_nonpositive_array_count_rejected(self):
        with pytest.raises(ArchError):
            FieldDecl("a", "int", count=0)

    def test_nested_struct_from_other_arch_rejected(self):
        inner = layout_struct(X86_32, "inner", [FieldDecl("x", "int")])
        with pytest.raises(ArchError, match="laid.*out"):
            layout_struct(SPARC_32, "outer", [FieldDecl("in_", inner)])

    def test_unknown_field_lookup_raises(self):
        lay = layout_struct(X86_32, "s", [FieldDecl("x", "int")])
        with pytest.raises(ArchError):
            lay.offsetof("y")
