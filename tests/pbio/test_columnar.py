"""Unit tests for the columnar bulk codec (repro.pbio.columnar).

Round-trip coverage lives in tests/property and tests/wire; this file
pins the codec's edges — input validation, the numpy tri-state, the
count cross-checks, the zero-copy :class:`ColumnBatchView` — plus the
batch metrics counters.
"""

import pytest

from repro.core.xml2wire import XML2Wire
from repro.errors import DecodeError, EncodeError
from repro.pbio import (
    ColumnBatchView,
    IOContext,
    decode_batch_payload,
    encode_batch_payload,
    get_columnar_plan,
)
from repro.pbio.columnar import _numpy_or_none
from repro.workloads import (
    ASDOFF_B_SCHEMA,
    ASDOFF_CD_SCHEMA,
    AirlineWorkload,
    MiningWorkload,
    WeatherWorkload,
)

HAVE_NUMPY = _numpy_or_none() is not None

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def register(schema, name):
    context = IOContext()
    XML2Wire(context).register_schema(schema)
    return context, context.lookup_format(name)


@pytest.fixture
def asdoff_b():
    return register(ASDOFF_B_SCHEMA, "ASDOffEvent")


@pytest.fixture
def weather():
    workload = WeatherWorkload(seed=3)
    context, fmt = register(workload.schema, workload.format_name)
    return context, fmt, workload


class TestInputValidation:
    def test_empty_batch_rejected(self, asdoff_b):
        context, fmt = asdoff_b
        with pytest.raises(EncodeError) as excinfo:
            context.encode_batch(fmt, [])
        assert "at least one record" in str(excinfo.value)

    def test_nested_format_rejected(self):
        context, fmt = register(ASDOFF_CD_SCHEMA, "threeASDOffs")
        record = AirlineWorkload(seed=1).record_cd()
        with pytest.raises(EncodeError) as excinfo:
            context.encode_batch(fmt, [record])
        assert "nested" in str(excinfo.value)

    def test_missing_field_names_the_row(self, asdoff_b):
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=1).batch_b(3)
        del records[2]["org"]
        with pytest.raises(EncodeError) as excinfo:
            context.encode_batch(fmt, records)
        text = str(excinfo.value)
        assert "record 2" in text and "org" in text

    def test_count_cross_check_names_the_row(self, asdoff_b):
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=1).batch_b(3)
        records[1]["eta_count"] = 99  # contradicts len(records[1]["eta"])
        with pytest.raises(EncodeError) as excinfo:
            context.encode_batch(fmt, records)
        assert "record 1" in str(excinfo.value)

    def test_plan_is_cached_per_format(self, asdoff_b):
        _, fmt = asdoff_b
        assert get_columnar_plan(fmt) is get_columnar_plan(fmt)


class TestNumpyTriState:
    def test_auto_and_explicit_paths_agree(self, weather):
        context, fmt, workload = weather
        records = workload.batch(16)
        auto = context.encode_batch(fmt, records)
        pure = context.encode_batch(fmt, records, use_numpy=False)
        assert auto == pure
        if HAVE_NUMPY:
            assert context.encode_batch(fmt, records, use_numpy=True) == auto

    def test_require_numpy_raises_when_absent(self, weather, monkeypatch):
        context, fmt, workload = weather
        records = workload.batch(2)
        message = context.encode_batch(fmt, records)
        import repro.pbio.columnar as columnar

        monkeypatch.setattr(columnar, "_numpy_or_none", lambda: None)
        with pytest.raises(EncodeError):
            context.encode_batch(fmt, records, use_numpy=True)
        with pytest.raises(DecodeError):
            context.decode_batch(message, use_numpy=True)

    def test_pure_python_decode_without_numpy(self, weather, monkeypatch):
        """With numpy gone entirely, auto mode still round-trips."""
        context, fmt, workload = weather
        records = workload.batch(8)
        message = context.encode_batch(fmt, records)
        import repro.pbio.columnar as columnar

        monkeypatch.setattr(columnar, "_numpy_or_none", lambda: None)
        assert context.encode_batch(fmt, records) == message
        assert list(context.decode_batch(message)) == records


class TestPayloadHelpers:
    def test_payload_roundtrip_without_header(self, asdoff_b):
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=9).batch_b(6)
        payload = encode_batch_payload(fmt, records)
        assert decode_batch_payload(fmt, payload) == records

    def test_decoded_batch_sequence_protocol(self, asdoff_b):
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=9).batch_b(4)
        batch = context.decode_batch(context.encode_batch(fmt, records))
        assert len(batch) == 4
        assert batch[0] == records[0]
        assert batch[-1] == records[-1]
        assert list(batch) == records
        assert batch.format_name == "ASDOffEvent"

    def test_decode_accepts_bytearray(self, asdoff_b):
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=9).batch_b(2)
        message = bytearray(context.encode_batch(fmt, records))
        assert list(context.decode_batch(message)) == records


class TestColumnBatchView:
    @needs_numpy
    def test_scalar_column_is_zero_copy(self, asdoff_b):
        import numpy

        context, fmt = asdoff_b
        records = AirlineWorkload(seed=2).batch_b(32)
        view = context.decode_batch_view(context.encode_batch(fmt, records))
        flt = view.column("fltNum")
        assert flt.shape == (32,)
        assert flt.tolist() == [r["fltNum"] for r in records]
        # Aliases the payload: no copy was made.
        assert flt.base is not None

    @needs_numpy
    def test_static_array_column_shape(self, asdoff_b):
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=2).batch_b(8)
        view = context.decode_batch_view(context.encode_batch(fmt, records))
        off = view.column("off")
        assert off.shape == (8, 5)
        assert off.tolist() == [r["off"] for r in records]

    @needs_numpy
    def test_dynamic_column_flat_and_counts(self, asdoff_b):
        context, fmt = asdoff_b
        workload = AirlineWorkload(seed=2)
        records = [workload.record_b(eta_count=n) for n in (3, 0, 2, 5)]
        view = context.decode_batch_view(context.encode_batch(fmt, records))
        flat, counts = view.dynamic_column("eta")
        assert counts.tolist() == [3, 0, 2, 5]
        expected = [value for r in records for value in r["eta"]]
        assert flat.tolist() == expected

    def test_strings_column(self, asdoff_b):
        if not HAVE_NUMPY:
            pytest.skip("view requires numpy for offset access")
        context, fmt = asdoff_b
        records = AirlineWorkload(seed=2).batch_b(8)
        view = context.decode_batch_view(context.encode_batch(fmt, records))
        assert view.strings("dest") == [r["dest"] for r in records]
        with pytest.raises(DecodeError):
            view.strings("fltNum")

    def test_row_access_and_iteration(self, weather):
        context, fmt, workload = weather
        records = workload.batch(6)
        view = context.decode_batch_view(context.encode_batch(fmt, records))
        assert len(view) == 6
        assert view.row(0) == records[0]
        assert view.row(-1) == records[-1]
        with pytest.raises(IndexError):
            view.row(6)
        assert list(view) == records
        assert view.materialize() is view.materialize()  # cached

    @needs_numpy
    def test_char_column_rejected(self, weather):
        context, fmt, workload = weather
        view = context.decode_batch_view(
            context.encode_batch(fmt, workload.batch(2))
        )
        with pytest.raises(DecodeError) as excinfo:
            view.column("station")
        assert "station" in str(excinfo.value)


class TestBatchMetrics:
    def test_counters_track_messages_and_records(self, fresh_registry):
        workload = MiningWorkload(seed=4)
        context, fmt = register(workload.schema, workload.format_name)
        records = workload.batch(12)
        message = context.encode_batch(fmt, records)
        context.decode_batch(message)
        registry = fresh_registry
        text = registry.render()
        assert 'pbio_batch_total{op="encode"} 1' in text
        assert 'pbio_batch_records_total{op="encode"} 12' in text
        assert 'pbio_batch_total{op="decode"} 1' in text
        assert 'pbio_batch_records_total{op="decode"} 12' in text

    def test_disabled_registry_skips_counters(self, fresh_registry):
        workload = MiningWorkload(seed=4)
        context, fmt = register(workload.schema, workload.format_name)
        fresh_registry.disable()
        message = context.encode_batch(fmt, workload.batch(3))
        context.decode_batch(message)
        assert "pbio_batch_total" not in fresh_registry.render()
