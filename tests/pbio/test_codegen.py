"""Unit tests for the dynamic converter generator."""

import struct

import pytest

from repro.arch import SPARC_32, X86_64
from repro.pbio import IOContext, IOField
from repro.pbio.codegen import (
    generate_converter_source,
    make_generated_converter,
    make_interpreted_converter,
)
from repro.pbio.encode import encode_record

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


class TestGeneratedSource:
    def test_source_is_a_single_function(self):
        ctx = IOContext(SPARC_32)
        fmt = register_asdoff(ctx)
        source = generate_converter_source(fmt)
        assert source.startswith("def convert(")
        assert source.count("def ") == 1

    def test_source_contains_single_fixed_unpack(self):
        """The defining property of the generated routine: exactly one
        unpack call covers the whole fixed region (plus one per dynamic
        array, whose count is run-time data)."""
        ctx = IOContext(SPARC_32)
        fmt = register_asdoff(ctx)
        source = generate_converter_source(fmt)
        # one fixed unpack + one for the single dynamic array
        assert source.count("unpack_from(") == 2

    def test_offsets_are_baked_in_as_literals(self):
        ctx = IOContext(SPARC_32)
        fmt = ctx.register_format(
            "t", [IOField("a", "integer", 4, 0), IOField("b", "double", 8, 8)]
        )
        source = generate_converter_source(fmt)
        assert "'>i4xd'" in source

    def test_byte_order_matches_wire_architecture(self):
        little = IOContext(X86_64).register_format("t", [IOField("a", "integer", 4, 0)])
        big = IOContext(SPARC_32).register_format("t", [IOField("a", "integer", 4, 0)])
        assert "'<" in generate_converter_source(little)
        assert "'>" in generate_converter_source(big)

    def test_custom_function_name(self):
        ctx = IOContext(SPARC_32)
        fmt = ctx.register_format("t", [IOField("a", "integer", 4, 0)])
        assert generate_converter_source(fmt, "my_conv").startswith("def my_conv(")


class TestGeneratedVsInterpreted:
    """The two converter implementations must agree bit-for-bit."""

    def test_paper_structure_agreement(self, any_arch):
        ctx = IOContext(any_arch)
        fmt = register_asdoff(ctx)
        payload = encode_record(fmt, ASDOFF_RECORD)
        generated = make_generated_converter(fmt)
        interpreted = make_interpreted_converter(fmt)
        assert generated(payload) == interpreted(payload) == ASDOFF_RECORD

    def test_nested_with_arrays_agreement(self):
        ctx = IOContext(SPARC_32)
        inner = ctx.register_format(
            "inner",
            [
                IOField("tag", "char[4]", 1, 0),
                IOField("n", "integer", 4, 4),
                IOField("vals", "float[n]", 4, 8),
            ],
            record_length=12,
        )
        outer = ctx.register_format(
            "outer",
            [
                IOField("pair", "inner[2]", inner.record_length, 0),
                IOField("flag", "boolean", 1, 24),
            ],
            record_length=28,
        )
        record = {
            "pair": [
                {"tag": "one", "n": 2, "vals": [1.0, 2.0]},
                {"tag": "two", "n": 0, "vals": []},
            ],
            "flag": True,
        }
        payload = encode_record(outer, record)
        assert make_generated_converter(outer)(payload) == record
        assert make_interpreted_converter(outer)(payload) == record

    def test_multiple_dynamic_arrays(self):
        ctx = IOContext(X86_64)
        fmt = ctx.register_format(
            "t",
            [
                IOField("na", "integer", 4, 0),
                IOField("nb", "integer", 4, 4),
                IOField("a", "double[na]", 8, 8),
                IOField("b", "integer[nb]", 4, 16),
            ],
            record_length=24,
        )
        record = {"na": 2, "nb": 3, "a": [1.0, 2.0], "b": [7, 8, 9]}
        payload = encode_record(fmt, record)
        assert make_generated_converter(fmt)(payload) == record
        assert make_interpreted_converter(fmt)(payload) == record


class TestGeneratedConverterBehaviour:
    def test_converter_is_pure_and_reusable(self):
        ctx = IOContext(SPARC_32)
        fmt = register_asdoff(ctx)
        convert = make_generated_converter(fmt)
        payload = encode_record(fmt, ASDOFF_RECORD)
        assert convert(payload) == convert(payload) == ASDOFF_RECORD

    def test_converter_actually_byte_swaps(self):
        """A big-endian wire format decoded on this (little-endian) host
        must produce the logical value, not the raw bytes."""
        ctx = IOContext(SPARC_32)
        fmt = ctx.register_format("t", [IOField("v", "integer", 4, 0)])
        payload = struct.pack(">i", 0x01020304)
        assert make_generated_converter(fmt)(payload) == {"v": 0x01020304}

    def test_corrupt_string_offset_raises_cleanly(self, x86_context):
        fmt = x86_context.register_format(
            "t", [IOField("s", "string", 8, 0)], record_length=8
        )
        message = bytearray(x86_context.encode(fmt, {"s": "hello"}))
        # Point the string offset past the end of the payload.
        message[16:24] = struct.pack("<Q", 10_000)
        from repro.errors import DecodeError

        with pytest.raises(DecodeError, match="corrupt"):
            x86_context.decode(bytes(message))
