"""FormatServer registry semantics, including the resolve decode cache."""

import pytest

from repro.arch import SPARC_32
from repro.errors import DecodeError
from repro.pbio import IOContext, IOField
from repro.pbio.fmserver import FormatServer


def register_sample(server, name="sample"):
    context = IOContext(SPARC_32)
    fmt = context.register_format(
        name,
        [IOField("value", "integer", 4, 0)],
        record_length=4,
    )
    server.register(fmt)
    return fmt


class TestFormatServer:
    def test_resolve_round_trips(self):
        server = FormatServer()
        fmt = register_sample(server)
        resolved = server.resolve(fmt.format_id)
        assert resolved.format_id == fmt.format_id
        assert resolved.name == fmt.name

    def test_unknown_id_raises(self):
        server = FormatServer()
        with pytest.raises(DecodeError, match="no format"):
            server.resolve(b"\x00" * 8)

    def test_resolve_reuses_cached_decode(self):
        server = FormatServer()
        fmt = register_sample(server)
        first = server.resolve(fmt.format_id)
        second = server.resolve(fmt.format_id)
        assert first is second  # decoded once, served from the cache

    def test_reregistration_invalidates_the_cache(self):
        server = FormatServer()
        fmt = register_sample(server)
        cached = server.resolve(fmt.format_id)
        server.register(fmt)  # idempotent re-register of the same id
        fresh = server.resolve(fmt.format_id)
        assert fresh is not cached  # cache entry dropped on re-register
        assert fresh.format_id == cached.format_id

    def test_nested_formats_cache_independently(self):
        server = FormatServer()
        context = IOContext(SPARC_32)
        inner = context.register_format(
            "inner", [IOField("value", "integer", 4, 0)], record_length=4
        )
        outer = context.register_format(
            "outer", [IOField("one", "inner", 4, 0)], record_length=4
        )
        server.register(outer)
        assert server.resolve(inner.format_id) is server.resolve(inner.format_id)
        assert server.resolve(outer.format_id) is server.resolve(outer.format_id)
