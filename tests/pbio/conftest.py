"""Shared PBIO fixtures: the paper's Appendix A structures as formats.

``make_asdoff_fields(arch)`` mirrors Figure 8's IOField array for the
machine in question, with sizes and offsets computed by the layout
engine (as xml2wire would).
"""

from repro.arch import FieldDecl, layout_struct
from repro.pbio import IOField

from tests.conftest import ALL_ARCHES  # re-exported for test modules


def asdoff_layout(arch):
    """Structure B's layout (Figure 7) on ``arch``."""
    return layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrId", "char*"),
            FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"),
            FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"),
            FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long", count=5),
            FieldDecl("eta", "unsigned long*"),
            FieldDecl("eta_count", "int"),
        ],
    )


def make_asdoff_fields(arch):
    """Figure 8's IOField list, sizes/offsets per ``arch``."""
    lay = asdoff_layout(arch)
    pointer = arch.pointer_size
    u_long = arch.sizeof("unsigned long")
    c_int = arch.sizeof("int")
    return (
        [
            IOField("cntrId", "string", pointer, lay.offsetof("cntrId")),
            IOField("arln", "string", pointer, lay.offsetof("arln")),
            IOField("fltNum", "integer", c_int, lay.offsetof("fltNum")),
            IOField("equip", "string", pointer, lay.offsetof("equip")),
            IOField("org", "string", pointer, lay.offsetof("org")),
            IOField("dest", "string", pointer, lay.offsetof("dest")),
            IOField("off", "unsigned integer[5]", u_long, lay.offsetof("off")),
            IOField("eta", "unsigned integer[eta_count]", u_long, lay.offsetof("eta")),
            IOField("eta_count", "integer", c_int, lay.offsetof("eta_count")),
        ],
        lay.size,
    )


def register_asdoff(context):
    fields, size = make_asdoff_fields(context.arch)
    return context.register_format("asdOff", fields, record_length=size)


ASDOFF_RECORD = {
    "cntrId": "ZTL",
    "arln": "DL",
    "fltNum": 1204,
    "equip": "B757",
    "org": "ATL",
    "dest": "LAX",
    "off": [10, 20, 30, 40, 50],
    "eta": [1000, 2000, 3000],
    "eta_count": 3,
}

