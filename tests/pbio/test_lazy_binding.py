"""Instance-based lazy binding: LRU caches, compiled/fused projections.

Covers the PROTOCOL §16 machinery: the shared :class:`BoundedLRU`, the
bounded :class:`ConverterCache` with the fused decode+project path, the
bounded :class:`FormatServer` decode cache, the
:class:`Compatibility` lattice, and the :class:`FormatLineage`
registry.
"""

import struct
import threading

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import ConversionError, DecodeError, ReproError
from repro.obs import get_registry
from repro.pbio import FormatLineage, FormatServer, IOContext, IOField
from repro.pbio.codegen import (
    generate_fused_converter_source,
    make_fused_converter,
    make_generated_converter,
)
from repro.pbio.context import HEADER, HEADER_SIZE
from repro.pbio.decode import ConverterCache
from repro.pbio.evolution import (
    Compatibility,
    compare_formats,
    describe_projection,
    formats_compatible,
    generate_projection_source,
    make_interpreted_projection,
    make_projection,
)
from repro.pbio.format import IOFormat
from repro.pbio.lru import BoundedLRU


def v1_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


def v2_fields(arch):
    return v1_fields(arch) + [
        IOField("speed", "double", 8, arch.pointer_size + 8),
    ]


class TestBoundedLRU:
    def test_capacity_enforced_lru_order(self):
        lru = BoundedLRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh a: b becomes LRU
        lru.put("c", 3)
        assert "b" not in lru
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert lru.evictions == 1

    def test_counters(self):
        lru = BoundedLRU(4)
        lru.put("k", "v")
        lru.get("k")
        lru.get("absent")
        stats = lru.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["capacity"] == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            BoundedLRU(0)

    def test_pop_is_not_an_eviction(self):
        lru = BoundedLRU(2)
        lru.put("a", 1)
        lru.pop("a")
        lru.pop("never-there")
        assert len(lru) == 0 and lru.evictions == 0

    def test_metrics_series_exported(self, fresh_registry):
        lru = BoundedLRU(1, name="testcache")
        lru.put("a", 1)
        lru.get("a")
        lru.get("miss")
        lru.put("b", 2)  # evicts a
        text = get_registry().render()
        assert 'pbio_converter_cache_hits{cache="testcache"} 1' in text
        assert 'pbio_converter_cache_misses{cache="testcache"} 1' in text
        assert 'pbio_converter_cache_evictions{cache="testcache"} 1' in text
        assert 'pbio_converter_cache_size{cache="testcache"} 1' in text

    def test_thread_safety_under_churn(self):
        lru = BoundedLRU(16)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    lru.put((base, i % 32), i)
                    lru.get((base, (i + 1) % 32))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(lru) <= 16


class TestCompiledProjection:
    def wire_and_target(self):
        sender = IOContext(SPARC_32)
        wire = sender.register_format("track", v2_fields(SPARC_32))
        receiver = IOContext(X86_64)
        target = receiver.register_format("track", v1_fields(X86_64))
        return wire, target

    def test_compiled_matches_interpreted(self):
        wire, target = self.wire_and_target()
        record = {"flight": "DL1", "alt": 31000, "speed": 450.0}
        compiled = make_projection(wire, target, use_codegen=True)
        interpreted = make_interpreted_projection(wire, target)
        assert compiled(record) == interpreted(record) == {
            "flight": "DL1", "alt": 31000,
        }

    def test_source_is_inspectable(self):
        wire, target = self.wire_and_target()
        source = generate_projection_source(wire, target)
        assert source.startswith("def project(record):")
        assert "record['flight']" in source

    def test_defaults_never_alias(self):
        sender = IOContext(SPARC_32)
        wire = sender.register_format(
            "t", [IOField("a", "integer", 4, 0)]
        )
        receiver = IOContext(X86_64)
        target = receiver.register_format(
            "t",
            [IOField("a", "integer", 4, 0), IOField("xs", "integer[3]", 4, 4)],
        )
        for use_codegen in (True, False):
            project = make_projection(wire, target, use_codegen=use_codegen)
            first = project({"a": 1})
            second = project({"a": 2})
            first["xs"].append(99)
            assert second["xs"] == [0, 0, 0]

    def test_tri_state_false_is_interpreted(self):
        wire, target = self.wire_and_target()
        project = make_projection(wire, target, use_codegen=False)
        # The interpreted closure carries cell variables; the compiled
        # function does not.
        assert project.__closure__ is not None


class TestFusedConverter:
    def formats(self):
        sender = IOContext(SPARC_32)
        wire = sender.register_format("track", v2_fields(SPARC_32))
        receiver = IOContext(X86_64)
        target = receiver.register_format("track", v1_fields(X86_64))
        return sender, wire, receiver, target

    def test_fused_equals_decode_then_project(self):
        sender, wire, receiver, target = self.formats()
        record = {"flight": "DL1", "alt": 31000, "speed": 450.0}
        message = sender.encode(wire, record)
        payload = message[HEADER_SIZE:]
        fused = make_fused_converter(wire, target)
        two_step = make_projection(wire, target)
        base = make_generated_converter(wire)
        assert fused(payload) == two_step(base(payload)) == {
            "flight": "DL1", "alt": 31000,
        }

    def test_fused_skips_unused_dynamic_arrays(self):
        sender = IOContext(SPARC_32)
        wire = sender.register_format(
            "t",
            [
                IOField("n", "integer", 4, 0),
                IOField("xs", "double[n]", 4, 4),
                IOField("keep", "integer", 4, 8),
            ],
        )
        receiver = IOContext(X86_64)
        target = receiver.register_format("t", [IOField("keep", "integer", 4, 0)])
        source = generate_fused_converter_source(wire, target)
        # The dropped array's unpack prologue must not be emitted.
        assert "a0" not in source

    def test_context_fused_and_interpreted_agree(self):
        sender, wire, receiver, target = self.formats()
        message = sender.encode(wire, {"flight": "X", "alt": 7, "speed": 1.25})
        receiver.learn_format(wire.to_wire_metadata())
        fused = receiver.decode(message, expect="track").values
        interpreted = receiver.decode(
            message, expect="track", mode="interpreted"
        ).values
        assert fused == interpreted == {"flight": "X", "alt": 7}

    def test_use_fused_false_still_correct(self):
        sender = IOContext(SPARC_32)
        wire = sender.register_format("track", v2_fields(SPARC_32))
        receiver = IOContext(X86_64, use_fused=False)
        receiver.register_format("track", v1_fields(X86_64))
        receiver.learn_format(wire.to_wire_metadata())
        message = sender.encode(wire, {"flight": "Y", "alt": 5, "speed": 2.0})
        assert receiver.decode(message, expect="track").values == {
            "flight": "Y", "alt": 5,
        }


class TestConverterCacheBounds:
    def test_cache_is_bounded(self):
        cache = ConverterCache(4)
        context = IOContext(SPARC_32, converter_cache=cache)
        for i in range(10):
            fmt = IOFormat(
                f"f{i}", [IOField("v", "integer", 4, 0)], SPARC_32, catalog={}
            )
            cache.lookup(fmt, None, "interpreted")
        assert len(cache) == 4
        assert cache.stats()["evictions"] == 6
        assert context.converter_builds == 10

    def test_shared_cache_compiles_once(self):
        cache = ConverterCache()
        a = IOContext(X86_64, converter_cache=cache)
        b = IOContext(X86_64, converter_cache=cache)
        sender = IOContext(SPARC_32)
        wire = sender.register_format("track", v1_fields(SPARC_32))
        message = sender.encode(wire, {"flight": "A", "alt": 1})
        for receiver in (a, b):
            receiver.register_format("track", v1_fields(X86_64))
            receiver.learn_format(wire.to_wire_metadata())
            receiver.decode(message, expect="track")
        assert cache.builds == 1  # second context reused the converter

    def test_invalidate_by_format_id(self):
        cache = ConverterCache()
        sender = IOContext(SPARC_32)
        wire = sender.register_format("track", v1_fields(SPARC_32))
        cache.lookup(wire, None, "generated")
        assert len(cache) == 1
        cache.invalidate(wire.format_id)
        assert len(cache) == 0

    def test_reregistration_survives_without_invalidation(self):
        """Content-addressed ids: identical metadata -> same cache entry."""
        cache = ConverterCache()
        first = IOContext(SPARC_32, converter_cache=cache)
        wire = first.register_format("track", v1_fields(SPARC_32))
        cache.lookup(wire, None, "generated")
        again = IOContext(SPARC_32, converter_cache=cache)
        wire_again = again.register_format("track", v1_fields(SPARC_32))
        cache.lookup(wire_again, None, "generated")
        assert cache.builds == 1

    def test_unknown_mode_rejected(self):
        cache = ConverterCache()
        fmt = IOFormat("f", [IOField("v", "integer", 4, 0)], SPARC_32, catalog={})
        with pytest.raises(DecodeError):
            cache.lookup(fmt, None, "vectorized")

    def test_churn_10k_distinct_formats_holds_cap(self):
        """10k distinct wire formats cannot grow the cache past its cap.

        Every format has the same layout but a distinct name, so each
        has a distinct content-addressed id and the same payload bytes —
        the header's format id is swapped per message.
        """
        capacity = 64
        receiver = IOContext(
            X86_64, converter_capacity=capacity, format_server=FormatServer()
        )
        template = IOFormat(
            "fmt0", [IOField("v", "integer", 4, 0)], X86_64, catalog={}
        )
        base_message = bytearray(
            HEADER.pack(1, 1, 0, 4, template.format_id)
            + struct.pack("<i", 42)
        )
        for i in range(10_000):
            fmt = IOFormat(
                f"fmt{i}", [IOField("v", "integer", 4, 0)], X86_64, catalog={}
            )
            receiver._wire_formats[fmt.format_id] = fmt
            base_message[8:16] = fmt.format_id
            decoded = receiver.decode(bytes(base_message), mode="interpreted")
            assert decoded.values == {"v": 42}
        stats = receiver.converter_cache_stats()
        assert stats["size"] <= capacity
        assert stats["evictions"] >= 10_000 - capacity


class TestFormatServerBoundedCache:
    def test_decode_cache_bounded(self):
        server = FormatServer(decode_capacity=8)
        ids = []
        for i in range(20):
            fmt = IOFormat(
                f"f{i}", [IOField("v", "integer", 4, 0)], X86_64, catalog={}
            )
            server.register(fmt)
            ids.append(fmt.format_id)
        for format_id in ids:
            server.resolve(format_id)
        stats = server.decode_cache_stats()
        assert stats["size"] <= 8
        assert stats["evictions"] >= 12
        # Evicted entries still resolve (from the raw metadata).
        assert server.resolve(ids[0]).name == "f0"

    def test_hot_format_hits(self):
        server = FormatServer()
        fmt = IOFormat("f", [IOField("v", "integer", 4, 0)], X86_64, catalog={})
        server.register(fmt)
        for _ in range(5):
            server.resolve(fmt.format_id)
        assert server.decode_cache_stats()["hits"] == 4


class TestCompatibilityLattice:
    def test_identity_same_format(self):
        context = IOContext(SPARC_32)
        fmt = context.register_format("track", v1_fields(SPARC_32))
        assert compare_formats(fmt, fmt) is Compatibility.IDENTITY

    def test_equivalent_same_fields_other_arch(self):
        wire = IOContext(SPARC_32).register_format("track", v1_fields(SPARC_32))
        native = IOContext(X86_64).register_format("track", v1_fields(X86_64))
        relation = compare_formats(wire, native)
        assert relation is Compatibility.EQUIVALENT
        assert relation.compatible and not relation.projection_needed
        assert formats_compatible(wire, native)

    def test_reordered_fields_are_projection_not_identity(self):
        """The old set-equality predicate called these 'identity'."""
        a = IOContext(X86_64).register_format(
            "t", [IOField("x", "integer", 4, 0), IOField("y", "double", 8, 8)]
        )
        b = IOContext(X86_64).register_format(
            "t", [IOField("y", "double", 8, 0), IOField("x", "integer", 4, 8)]
        )
        assert compare_formats(a, b) is Compatibility.PROJECTION
        assert not formats_compatible(a, b)

    def test_retyped_field_is_projection(self):
        a = IOContext(X86_64).register_format(
            "t", [IOField("x", "integer", 4, 0)]
        )
        b = IOContext(X86_64).register_format(
            "t", [IOField("x", "double", 8, 0)]
        )
        assert compare_formats(a, b) is Compatibility.PROJECTION

    def test_added_field_is_projection(self):
        wire = IOContext(SPARC_32).register_format("track", v2_fields(SPARC_32))
        native = IOContext(X86_64).register_format("track", v1_fields(X86_64))
        relation = compare_formats(wire, native)
        assert relation is Compatibility.PROJECTION
        assert relation.compatible  # projection cannot fail
        assert relation.projection_needed

    def test_nested_relation_bounds_whole(self):
        def make(arch, with_z):
            context = IOContext(arch)
            fields = [IOField("x", "integer", 4, 0), IOField("y", "integer", 4, 4)]
            if with_z:
                fields.append(IOField("z", "integer", 4, 8))
            context.register_format("pt", fields)
            return context.register_format(
                "shape", [IOField("p", "pt", 12, 0), IOField("k", "integer", 4, 12)]
            )

        same = compare_formats(make(X86_64, False), make(X86_64, False))
        assert same is Compatibility.IDENTITY
        evolved = compare_formats(make(X86_64, False), make(X86_64, True))
        assert evolved is Compatibility.PROJECTION

    def test_describe_projection_lines(self):
        wire = IOContext(SPARC_32).register_format("track", v2_fields(SPARC_32))
        native = IOContext(X86_64).register_format("track", v1_fields(X86_64))
        lines = describe_projection(wire, native)
        assert any(line.startswith("copy") and "flight" in line for line in lines)
        assert any(line.startswith("drop") and "speed" in line for line in lines)
        back = describe_projection(native, wire)
        assert any(line.startswith("default") and "speed" in line for line in back)


class TestFormatLineage:
    def test_versions_chain_by_name(self):
        lineage = FormatLineage()
        v1 = IOContext(SPARC_32).register_format("track", v1_fields(SPARC_32))
        v2 = IOContext(X86_64).register_format("track", v2_fields(X86_64))
        assert lineage.register(v1) == 1
        assert lineage.register(v2) == 2
        assert lineage.ancestry(v2.format_id) == [v2.format_id, v1.format_id]
        assert lineage.latest("track").format_id == v2.format_id

    def test_registration_idempotent(self):
        lineage = FormatLineage()
        fmt = IOContext(SPARC_32).register_format("track", v1_fields(SPARC_32))
        assert lineage.register(fmt) == 1
        assert lineage.register(fmt) == 1
        assert len(lineage) == 1

    def test_explicit_parent(self):
        lineage = FormatLineage()
        a = IOContext(SPARC_32).register_format("a", v1_fields(SPARC_32))
        b = IOContext(SPARC_32).register_format("b", v2_fields(SPARC_32))
        lineage.register(a)
        assert lineage.register(b, parent=a) == 2
        assert lineage.ancestry(b.format_id) == [b.format_id, a.format_id]

    def test_describe_document(self):
        lineage = FormatLineage()
        v1 = IOContext(SPARC_32).register_format("track", v1_fields(SPARC_32))
        v2 = IOContext(X86_64).register_format("track", v2_fields(X86_64))
        lineage.register(v1)
        lineage.register(v2)
        document = lineage.describe(v2.format_id)
        assert document["name"] == "track" and document["version"] == 2
        assert document["parent"] == v1.format_id.hex()
        assert document["ancestors"] == [
            {"format": v1.format_id.hex(), "name": "track", "version": 1}
        ]

    def test_compatibility_document(self):
        lineage = FormatLineage()
        v1 = IOContext(X86_64).register_format("track", v1_fields(X86_64))
        v2 = IOContext(X86_64).register_format("track", v2_fields(X86_64))
        lineage.register(v1)
        lineage.register(v2)
        answer = lineage.compatibility(v2.format_id, v1.format_id)
        assert answer["relation"] == "projection"
        assert answer["compatible"] and answer["projection_needed"]
        assert not answer["identity"]
        same = lineage.compatibility(v1.format_id, v1.format_id)
        assert same["relation"] == "identity" and same["identity"]

    def test_unknown_id_raises(self):
        lineage = FormatLineage()
        with pytest.raises(DecodeError):
            lineage.describe(b"\x00" * 8)

    def test_documents_for_replication(self):
        lineage = FormatLineage()
        fmt = IOContext(SPARC_32).register_format("track", v1_fields(SPARC_32))
        lineage.register(fmt)
        documents = lineage.documents()
        assert f"/lineage/{fmt.format_id.hex()}" in documents

    def test_context_populates_lineage(self):
        lineage = FormatLineage()
        sender = IOContext(SPARC_32, lineage=lineage)
        v1 = sender.register_format("track", v1_fields(SPARC_32))
        receiver = IOContext(X86_64, lineage=lineage)
        receiver.learn_format(v1.to_wire_metadata())
        v2 = receiver.register_format("track", v2_fields(X86_64))
        assert lineage.ancestry(v2.format_id) == [v2.format_id, v1.format_id]
