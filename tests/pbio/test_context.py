"""Unit tests for IOContext framing, format learning and the format server."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import DecodeError, FormatRegistrationError
from repro.pbio import FormatServer, IOContext, IOField, IOFormat
from repro.pbio.context import (
    HEADER_SIZE,
    KIND_DATA,
    KIND_FORMAT,
    KIND_REQUEST,
)


def point_fields():
    return [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)]


class TestFraming:
    def test_data_message_header(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        message = x86_context.encode(fmt, {"x": 1.0, "y": 2.0})
        kind, version, _, length, format_id = IOContext.parse_header(message)
        assert kind == KIND_DATA
        assert version == 1
        assert length == len(message) - HEADER_SIZE
        assert format_id == fmt.format_id

    def test_format_message_header(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        message = x86_context.format_message(fmt)
        kind, _, _, length, format_id = IOContext.parse_header(message)
        assert kind == KIND_FORMAT
        assert format_id == b"\x00" * 8
        assert length == len(message) - HEADER_SIZE

    def test_request_message_header(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        message = x86_context.request_message(fmt.format_id)
        kind, _, _, length, format_id = IOContext.parse_header(message)
        assert kind == KIND_REQUEST
        assert length == 0
        assert format_id == fmt.format_id

    def test_encode_accepts_format_name(self, x86_context):
        x86_context.register_format("point", point_fields())
        message = x86_context.encode("point", {"x": 0.0, "y": 0.0})
        assert x86_context.decode(message).values == {"x": 0.0, "y": 0.0}

    def test_encoded_size_matches_message_length(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        record = {"x": 1.0, "y": 2.0}
        assert x86_context.encoded_size(fmt, record) == len(
            x86_context.encode(fmt, record)
        )


class TestFormatLearning:
    def test_learn_format_enables_decode(self, sparc_context, x86_context):
        fmt = sparc_context.register_format("point", point_fields())
        message = sparc_context.encode(fmt, {"x": 1.5, "y": -2.5})
        assert not x86_context.knows_format_id(fmt.format_id)
        learned = x86_context.learn_format(fmt.to_wire_metadata())
        assert learned.format_id == fmt.format_id
        assert x86_context.decode(message).values == {"x": 1.5, "y": -2.5}

    def test_learning_via_format_message_body(self, sparc_context, x86_context):
        fmt = sparc_context.register_format("point", point_fields())
        format_message = sparc_context.format_message(fmt)
        x86_context.learn_format(format_message[HEADER_SIZE:])
        assert x86_context.knows_format_id(fmt.format_id)

    def test_own_formats_decodable_without_learning(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        message = x86_context.encode(fmt, {"x": 0.0, "y": 1.0})
        assert x86_context.decode(message).values["y"] == 1.0

    def test_lookup_unknown_format_name(self, x86_context):
        with pytest.raises(FormatRegistrationError, match="no format named"):
            x86_context.lookup_format("nope")


class TestFormatServer:
    def test_server_resolves_unknown_ids(self):
        server = FormatServer()
        sender = IOContext(SPARC_32, format_server=server)
        fmt = sender.register_format("point", point_fields())
        message = sender.encode(fmt, {"x": 3.0, "y": 4.0})

        receiver = IOContext(X86_64, format_server=server)
        decoded = receiver.decode(message)  # no handshake needed
        assert decoded.values == {"x": 3.0, "y": 4.0}

    def test_server_registers_nested_dependencies(self):
        server = FormatServer()
        sender = IOContext(SPARC_32, format_server=server)
        inner = sender.register_format("inner", [IOField("v", "integer", 4, 0)])
        sender.register_format("outer", [IOField("a", "inner", 4, 0)])
        assert inner.format_id in server.known_ids()

    def test_unknown_id_without_server_raises(self, x86_context, sparc_context):
        fmt = sparc_context.register_format("point", point_fields())
        with pytest.raises(DecodeError, match="no format server attached"):
            x86_context.decode(sparc_context.encode(fmt, {"x": 0.0, "y": 0.0}))

    def test_unknown_id_on_server_raises(self):
        server = FormatServer()
        with pytest.raises(DecodeError, match="no format"):
            server.resolve(b"\xde\xad\xbe\xef\x00\x00\x00\x00")

    def test_registration_idempotent(self):
        server = FormatServer()
        fmt = IOFormat("point", point_fields(), X86_64)
        assert server.register(fmt) == server.register(fmt)
        assert len(server) == 1

    def test_resolve_metadata_raw_bytes(self):
        server = FormatServer()
        fmt = IOFormat("point", point_fields(), X86_64)
        server.register(fmt)
        assert server.resolve_metadata(fmt.format_id) == fmt.to_wire_metadata()


class TestAdoptFormat:
    def test_adopt_external_format(self, x86_context):
        fmt = IOFormat("point", point_fields(), X86_64)
        adopted = x86_context.adopt_format(fmt)
        assert x86_context.lookup_format("point") is adopted

    def test_adopt_wrong_arch_rejected(self, x86_context):
        fmt = IOFormat("point", point_fields(), SPARC_32)
        with pytest.raises(FormatRegistrationError, match="built for"):
            x86_context.adopt_format(fmt)

    def test_adopt_conflicting_metadata_rejected(self, x86_context):
        x86_context.register_format("point", point_fields())
        other = IOFormat(
            "point", [IOField("x", "integer", 4, 0)], X86_64
        )
        with pytest.raises(FormatRegistrationError, match="different metadata"):
            x86_context.adopt_format(other)

    def test_adopt_same_metadata_is_noop(self, x86_context):
        first = x86_context.register_format("point", point_fields())
        clone = IOFormat("point", point_fields(), X86_64)
        assert x86_context.adopt_format(clone) is first

    def test_adopt_pulls_in_nested(self):
        builder = IOContext(X86_64)
        inner = builder.register_format("inner", [IOField("v", "integer", 4, 0)])
        outer = builder.register_format("outer", [IOField("a", "inner", 4, 0)])
        fresh = IOContext(X86_64)
        fresh.adopt_format(outer)
        assert fresh.lookup_format("inner").format_id == inner.format_id


class TestConverterCaching:
    def test_converter_built_once_per_wire_format(self, sparc_context, x86_context):
        fmt = sparc_context.register_format("point", point_fields())
        x86_context.learn_format(fmt.to_wire_metadata())
        messages = [
            sparc_context.encode(fmt, {"x": float(i), "y": 0.0}) for i in range(10)
        ]
        for message in messages:
            x86_context.decode(message)
        assert x86_context.converter_builds == 1

    def test_modes_cached_separately(self, sparc_context, x86_context):
        fmt = sparc_context.register_format("point", point_fields())
        x86_context.learn_format(fmt.to_wire_metadata())
        message = sparc_context.encode(fmt, {"x": 1.0, "y": 2.0})
        x86_context.decode(message, mode="generated")
        x86_context.decode(message, mode="interpreted")
        assert x86_context.converter_builds == 2

    def test_unknown_mode_rejected(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        message = x86_context.encode(fmt, {"x": 0.0, "y": 0.0})
        with pytest.raises(DecodeError, match="unknown conversion mode"):
            x86_context.decode(message, mode="quantum")


class TestDecodedRecord:
    def test_mapping_conveniences(self, x86_context):
        fmt = x86_context.register_format("point", point_fields())
        decoded = x86_context.decode(x86_context.encode(fmt, {"x": 1.0, "y": 2.0}))
        assert decoded["x"] == 1.0
        assert "y" in decoded
        assert "z" not in decoded
        assert decoded.format_name == "point"
